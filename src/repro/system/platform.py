"""Elaborate a :class:`~repro.system.spec.SystemSpec` into any engine.

One description, four targets:

========== ==================================================== ==========
level      engine                                               result
========== ==================================================== ==========
tlm        method-based AHB+ TLM (:class:`AhbPlusBusTlm`)       TlmPlatform
tlm-threaded thread-based AHB+ TLM (:class:`ThreadedAhbPlusBus`) TlmPlatform
plain      unextended AMBA 2.0 baseline (:class:`PlainAhbBus`)  PlainPlatform
rtl        pin-accurate 2-step cycle model                      RtlPlatform
========== ==================================================== ==========

Every product satisfies the :class:`Platform` protocol — ``run()``
returning a :class:`~repro.ahb.bus.BusRunResult` (or richer subclass)
and ``attach(observer)`` for profiling/assertion hooks — so analysis
code is engine-agnostic: elaborating the same spec at a different level
is a one-argument change, which is the paper's portability claim turned
into an API.

For the classic paper topology (one DDR slave at address zero) the
elaboration is *structurally identical* to the legacy hard-coded
builders — same construction order, same address map, same component
arguments — so golden traces and Table-1 numbers reproduce bit-for-bit
through either entry point.  Multi-slave specs additionally instantiate
static slaves (SRAM scratchpads, APB bridge stubs), the multi-region
address decode and, at RTL level, per-slave response channels combined
by the :class:`~repro.rtl.mux.ResponseMux`.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Protocol, Union, runtime_checkable

from repro.ahb.bus import BusRunResult, PlainAhbBus, TransactionObserver
from repro.ahb.slave import ApbBridgeSlave, SramSlave, TlmSlave
from repro.core.bus import AhbPlusBusTlm
from repro.core.config import AhbPlusConfig
from repro.core.platform import PlainPlatform, TlmPlatform
from repro.core.qos import QosRegisterFile
from repro.core.threaded import ThreadedAhbPlusBus
from repro.core.write_buffer import WriteBuffer
from repro.ddr.controller import DdrControllerTlm
from repro.errors import ConfigError
from repro.kernel.cycle import CycleEngine
from repro.kernel.tracing import VcdTracer
from repro.rtl.arbiter import ArbiterRtl
from repro.rtl.ddrc import DdrcRtl
from repro.rtl.master import MasterRtl
from repro.rtl.mux import BusMux, ResponseMux
from repro.rtl.platform import RtlPlatform
from repro.rtl.signals import (
    BiSignals,
    MasterSignals,
    SharedBusSignals,
    SlaveResponseSignals,
    all_signals,
)
from repro.rtl.slave import StaticSlaveRtl
from repro.rtl.write_buffer import BufferMasterRtl
from repro.system.spec import LEVELS, SlaveSpec, SystemSpec


@runtime_checkable
class Platform(Protocol):
    """What every elaborated system exposes, regardless of engine."""

    def run(self, max_cycles: Optional[int] = None) -> BusRunResult:
        """Run the bound workload to completion."""
        ...

    def attach(self, observer: TransactionObserver) -> None:
        """Register a ``(txn, grant, start, finish)`` observer."""
        ...


AnyPlatform = Union[TlmPlatform, PlainPlatform, RtlPlatform]


def platform_agents(platform) -> List:
    """The traffic agents of any engine's platform.

    The TLM/plain platforms expose them as ``masters``; the RTL
    platform's ``masters`` are FSMs, its traffic agents live on
    ``agents``.  Analysis collectors use this to stay engine-agnostic.
    """
    return getattr(platform, "agents", None) or platform.masters


def _build_tlm_slave(spec: SlaveSpec, cfg: AhbPlusConfig) -> TlmSlave:
    """Instantiate the transaction-level model a slave spec names."""
    if spec.kind == "ddr":
        return DdrControllerTlm(
            timing=cfg.ddr_timing,
            bus_bytes=cfg.bus_width_bytes,
            refresh_enabled=cfg.refresh_enabled,
        )
    if spec.kind == "sram":
        return SramSlave(
            name=spec.name,
            size=spec.size,
            wait_states=spec.wait_states,
            burst_wait_states=spec.burst_wait_states,
            base_addr=spec.base,
        )
    if spec.kind == "apb":
        return ApbBridgeSlave(
            name=spec.name,
            size=spec.size,
            setup_cycles=spec.setup_cycles,
            base_addr=spec.base,
        )
    raise ConfigError(f"unknown slave kind {spec.kind!r}")  # unreachable


class PlatformBuilder:
    """Elaborates one :class:`SystemSpec` into any abstraction level."""

    def __init__(self, spec: SystemSpec) -> None:
        self.spec = spec

    def build(
        self,
        level: str = "tlm",
        *,
        trace: bool = False,
        full_sweep: bool = False,
    ) -> AnyPlatform:
        """Elaborate at *level* (one of :data:`~repro.system.spec.LEVELS`).

        ``trace``/``full_sweep`` are RTL-only knobs (VCD tracing and the
        reference sweep-everything evaluate phase).
        """
        if level not in LEVELS:
            raise ConfigError(
                f"unknown platform level {level!r}; choose from {LEVELS}"
            )
        if level != "rtl" and (trace or full_sweep):
            raise ConfigError("trace/full_sweep only apply to the rtl level")
        cfg = self.spec.config()
        if level == "rtl":
            return self._build_rtl(cfg, trace=trace, full_sweep=full_sweep)
        if level == "plain":
            return self._build_plain(cfg)
        return self._build_tlm(cfg, threaded=(level == "tlm-threaded"))

    # -- transaction level -------------------------------------------------------

    def _tlm_slaves(self, cfg: AhbPlusConfig) -> List[TlmSlave]:
        return [
            _build_tlm_slave(sspec, cfg)
            for sspec in self.spec.resolved_slaves(cfg)
        ]

    def _ddr_index(self, cfg: AhbPlusConfig) -> int:
        for index, sspec in enumerate(self.spec.resolved_slaves(cfg)):
            if sspec.kind == "ddr":
                return index
        raise ConfigError(f"system {self.spec.name}: no DDR slave")

    def _slave_faults(self, cfg: AhbPlusConfig):
        """Fault specs declared on slaves, windowed to their regions.

        Fault plans are stamped on transactions at traffic-build time
        (identically at every engine level), so slave-side fault models
        are folded into the masters' injector chain here rather than
        into the slave models themselves.
        """
        return tuple(
            sspec.fault.windowed(sspec.base, sspec.size)
            for sspec in self.spec.resolved_slaves(cfg)
            if sspec.fault is not None
        )

    def _build_tlm(self, cfg: AhbPlusConfig, threaded: bool) -> TlmPlatform:
        workload = self.spec.workload
        masters = workload.build_masters(extra_faults=self._slave_faults(cfg))
        slaves = self._tlm_slaves(cfg)
        ddrc = slaves[self._ddr_index(cfg)]
        assert isinstance(ddrc, DdrControllerTlm)
        address_map = self.spec.address_map(cfg)
        bus_cls = ThreadedAhbPlusBus if threaded else AhbPlusBusTlm
        bus = bus_cls(masters, slaves, config=cfg, address_map=address_map)
        return TlmPlatform(
            workload=workload,
            config=cfg,
            masters=masters,
            ddrc=ddrc,
            bus=bus,
            slaves=slaves,
        )

    def _build_plain(self, cfg: AhbPlusConfig) -> PlainPlatform:
        workload = self.spec.workload
        masters = workload.build_masters(extra_faults=self._slave_faults(cfg))
        slaves = self._tlm_slaves(cfg)
        ddrc = slaves[self._ddr_index(cfg)]
        assert isinstance(ddrc, DdrControllerTlm)
        bus = PlainAhbBus(
            masters,
            slaves,
            self.spec.address_map(cfg),
            arbitration_cycles=max(cfg.arbitration_cycles, 1),
        )
        return PlainPlatform(
            workload=workload,
            masters=masters,
            ddrc=ddrc,
            bus=bus,
            config=cfg,
            slaves=slaves,
        )

    # -- register-transfer level ----------------------------------------------------

    def _build_rtl(
        self, cfg: AhbPlusConfig, trace: bool, full_sweep: bool
    ) -> RtlPlatform:
        workload = self.spec.workload
        slave_specs = self.spec.resolved_slaves(cfg)
        single_ddr = len(slave_specs) == 1 and slave_specs[0].kind == "ddr"

        engine = CycleEngine(
            name=f"rtl:{workload.name}", sensitivity=not full_sweep
        )
        agents = workload.build_masters(extra_faults=self._slave_faults(cfg))

        bus = SharedBusSignals(bus_width_bits=cfg.bus_width_bytes * 8)
        bi = BiSignals()
        master_sigs = [MasterSignals(i) for i in range(cfg.num_masters)]
        buffer_sig = MasterSignals(cfg.num_masters)  # the buffer's bus identity

        qos = QosRegisterFile(cfg.num_masters)
        for master, setting in cfg.qos.items():
            qos.configure(master, setting)
        write_buffer = WriteBuffer(
            depth=cfg.write_buffer_depth, enabled=cfg.write_buffer_enabled
        )

        static_slaves: List[StaticSlaveRtl] = []
        responses: List[SlaveResponseSignals] = []
        if single_ddr:
            # Paper topology: the DDRC answers on the shared bus itself —
            # structurally identical to the legacy hard-coded builder.
            ddrc = DdrcRtl(
                bus=bus,
                bi=bi,
                engine=engine,
                timing=cfg.ddr_timing,
                bus_bytes=cfg.bus_width_bytes,
                refresh_enabled=cfg.refresh_enabled,
                streaming=not full_sweep,
            )
            score: Callable[[int], int] = ddrc.access_score
        else:
            ddrc, score = self._build_rtl_slaves(
                cfg,
                slave_specs,
                bus,
                bi,
                engine,
                static_slaves,
                responses,
                streaming=not full_sweep,
            )
            ResponseMux(responses, bus, engine)

        masters = [
            MasterRtl(agent, master_sigs[agent.index], bus, engine)
            for agent in agents
        ]
        buffer_master = BufferMasterRtl(
            write_buffer, cfg.num_masters, buffer_sig, bus, engine
        )
        arbiter = ArbiterRtl(
            masters=masters,
            buffer_master=buffer_master,
            write_buffer=write_buffer,
            qos=qos,
            config=cfg,
            bus=bus,
            bi=bi,
            engine=engine,
            ddrc_score=score,
        )
        BusMux([*master_sigs, buffer_sig], bus, engine)

        # Register every signal and the sequential processes.  Order matters
        # only where components call each other directly: the arbiter's
        # write-buffer absorption (and buffer-drain wake) must run before
        # the buffer's and the masters' own updates.  Each component gets
        # its SeqHandle back so it can declare per-component quiescence;
        # wake-on lists re-arm sleepers on the input edges that make
        # their update observable again (full_sweep platforms build the
        # engine with quiescence off, so the handles become inert).
        engine.add_signal(
            *all_signals([*master_sigs, buffer_sig], bus, bi, extra=responses)
        )
        # Filtered wakes (see ``add_sequential``): each predicate masks
        # edges the sleeping FSM provably ignores in its current state,
        # and is conservative — a stale read across a same-commit race
        # can only produce a spurious no-op wake, never a missed one,
        # because the edge that makes the masked signal relevant again
        # is itself on the wake list unfiltered.
        bus_idle = lambda busy=bus.ddr_busy: not busy.value  # noqa: E731
        bi_pulse = lambda valid=bi.next_valid: bool(valid.value)  # noqa: E731
        arbiter.seq = engine.add_sequential(
            arbiter.update,
            wake_on=(
                # Requests matter to a sleeping arbiter only on an idle
                # bus — mid-transfer decisions happen at the scheduled
                # pipelined-lock wake or on the transfer-boundary edges
                # below, where the candidates are re-sampled anyway.
                *((sig.hbusreq, bus_idle) for sig in master_sigs),
                (buffer_sig.hbusreq, bus_idle),
                bus.htrans,
                bus.ddr_busy,
                # Its own BI pulse: the 0->1 commit wakes the arbiter so
                # the next cycle's update clears the one-cycle pulse
                # (the 1->0 clear edge needs no action).
                (bi.next_valid, bi_pulse),
            ),
        )
        ddrc.seq = engine.add_sequential(
            ddrc.update, wake_on=(bus.htrans, (bi.next_valid, bi_pulse))
        )
        for slave in static_slaves:
            slave.seq = engine.add_sequential(
                slave.update, wake_on=(bus.htrans,)
            )

        def requesting(m) -> Callable[[], bool]:
            return lambda: m.state is m.REQUEST_STATE

        def streaming_beats(m) -> Callable[[], bool]:
            return lambda: m.state is m.DATA_STATE

        buffer_master.seq = engine.add_sequential(
            buffer_master.update,
            wake_on=(
                (buffer_sig.hgrant, requesting(buffer_master)),
                (bus.bus_available, requesting(buffer_master)),
                (bus.hready, streaming_beats(buffer_master)),
                (bus.stream_owner, streaming_beats(buffer_master)),
            ),
        )
        for master in masters:
            master.seq = engine.add_sequential(
                master.update,
                wake_on=(
                    (master_sigs[master.index].hgrant, requesting(master)),
                    (bus.bus_available, requesting(master)),
                    (bus.hready, streaming_beats(master)),
                    (bus.stream_owner, streaming_beats(master)),
                ),
            )

        tracer: Optional[VcdTracer] = None
        if trace:
            tracer = VcdTracer()
            tracer.add_signals(
                all_signals([*master_sigs, buffer_sig], bus, bi, extra=responses)
            )
            engine.add_cycle_hook(tracer.sample)

        return RtlPlatform(
            workload=workload,
            config=cfg,
            engine=engine,
            agents=agents,
            masters=masters,
            buffer_master=buffer_master,
            write_buffer=write_buffer,
            arbiter=arbiter,
            ddrc=ddrc,
            qos=qos,
            bus=bus,
            bi=bi,
            tracer=tracer,
            static_slaves=static_slaves,
        )

    def _build_rtl_slaves(
        self,
        cfg: AhbPlusConfig,
        slave_specs,
        bus: SharedBusSignals,
        bi: BiSignals,
        engine: CycleEngine,
        static_slaves: List[StaticSlaveRtl],
        responses: List[SlaveResponseSignals],
        streaming: bool = True,
    ):
        """Instantiate the multi-slave fabric; returns (ddrc, score_fn)."""
        ddrc: Optional[DdrcRtl] = None
        ddr_spec: Optional[SlaveSpec] = None
        width_bits = cfg.bus_width_bytes * 8
        # Route address phases through the *map*, not raw region bounds:
        # that honours the default-slave fallback at RTL exactly as the
        # TLM buses do, and an unmapped address on a strict map raises
        # (MemoryError_) instead of hanging the bus with no responder.
        # All slaves (and the score oracle) probe the same address in the
        # same cycle, so one memoized decode serves every probe.
        amap = self.spec.address_map(cfg)
        last_decode: List[int] = [-1, -1]  # [addr, slave index]

        def route(addr: int) -> int:
            if addr != last_decode[0]:
                last_decode[0] = addr
                last_decode[1] = amap.slave_for(addr)
            return last_decode[1]

        def claims(index: int) -> Callable[[int], bool]:
            def accepts(addr: int, _index: int = index) -> bool:
                return route(addr) == _index

            return accepts

        ddr_index = -1
        for index, sspec in enumerate(slave_specs):
            resp = SlaveResponseSignals(sspec.name, bus_width_bits=width_bits)
            responses.append(resp)
            if sspec.kind == "ddr":
                ddr_spec = sspec
                ddr_index = index
                ddrc = DdrcRtl(
                    bus=bus,
                    bi=bi,
                    engine=engine,
                    timing=cfg.ddr_timing,
                    bus_bytes=cfg.bus_width_bytes,
                    refresh_enabled=cfg.refresh_enabled,
                    out=resp,
                    accepts=claims(index),
                    streaming=streaming,
                )
            else:
                wait, burst_wait = (
                    (sspec.setup_cycles, sspec.setup_cycles)
                    if sspec.kind == "apb"
                    else (sspec.wait_states, sspec.burst_wait_states)
                )
                static_slaves.append(
                    StaticSlaveRtl(
                        name=sspec.name,
                        bus=bus,
                        out=resp,
                        engine=engine,
                        accepts=claims(index),
                        wait_states=wait,
                        burst_wait_states=burst_wait,
                        base=sspec.base,
                        size=sspec.size,
                    )
                )
        assert ddrc is not None and ddr_spec is not None  # spec validated

        ddr_score = ddrc.access_score

        def score(addr: int) -> int:
            # Route through the map (not raw DDR bounds) so an address
            # the default slave catches scores exactly as at TLM, where
            # make_routed_score uses AddressMap.slave_for.  Static
            # slaves have no bank structure: constant best score, so
            # the bank filter only differentiates DDR candidates.
            return ddr_score(addr) if route(addr) == ddr_index else 0

        return ddrc, score


def build_platform(
    spec: SystemSpec,
    level: str = "tlm",
    *,
    trace: bool = False,
    full_sweep: bool = False,
) -> AnyPlatform:
    """One-call elaboration: ``build_platform(spec, "rtl")``."""
    return PlatformBuilder(spec).build(
        level, trace=trace, full_sweep=full_sweep
    )
