"""Named system scenarios: the paper topology and its extensions.

Every entry is a factory returning a :class:`~repro.system.SystemSpec`;
``scenario(name, **kwargs)`` looks one up by name.  The registry covers

* the paper's four-master / single-DDR platform under each Table-1
  traffic suite plus the ablation workloads (these elaborate to the
  exact systems the legacy builders hard-coded), and
* multi-slave variants — DDR main memory, an SRAM scratchpad and an
  AHB→APB bridge stub — that exercise the decoder's multi-region
  routing at every abstraction level.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional, Tuple

from repro.core.config import AhbPlusConfig
from repro.errors import ConfigError
from repro.system.spec import BusSpec, SlaveSpec, SystemSpec
from repro.core.qos import QosSetting
from repro.traffic.patterns import CPU, DMA, MPEG, WRITER, TrafficPattern
from repro.traffic.workloads import (
    MasterSpec,
    Workload,
    bank_striped_workload,
    saturating_workload,
    single_master_workload,
    table1_pattern_a,
    table1_pattern_b,
    table1_pattern_c,
    write_heavy_workload,
)

# -- the paper topology ---------------------------------------------------------


def paper_topology(
    transactions: int = 250,
    workload: Optional[Workload] = None,
    config: Optional[AhbPlusConfig] = None,
) -> SystemSpec:
    """The paper's system: four masters, one DDR controller at zero.

    With no arguments this is the Table-1 pattern-A platform; pass any
    :class:`Workload` to re-target the same topology (that is all the
    legacy ``build_*_platform`` helpers ever did).
    """
    bound = workload if workload is not None else table1_pattern_a(transactions)
    return SystemSpec(
        name=f"paper:{bound.name}", workload=bound, bus=BusSpec(config=config)
    )


# -- bursty MPEG-like arrivals ----------------------------------------------------


def mpeg_bursty(
    transactions: int = 180,
    seed: int = 59,
    config: Optional[AhbPlusConfig] = None,
) -> SystemSpec:
    """Bursty MPEG-like arrivals on the paper topology.

    Two decoder streams issue frame-sized clumps of long bursts
    separated by inter-frame gaps (the :data:`~repro.traffic.patterns.
    MPEG` pattern's ``burst_gap``) while a CPU and a writer interfere —
    the bursty arrival process from the scenario backlog.  The workload
    generates in ``stream`` mode, so the think-time draws (including
    the gap draws) batch through the new stream generator; both
    abstraction levels replay the identical stream, so the scenario is
    runnable at TLM and RTL alike.
    """
    window = 1 << 20
    specs = (
        MasterSpec(
            "mpeg0",
            replace(MPEG, base_addr=0, addr_span=window),
            transactions,
            QosSetting(real_time=True, objective_cycles=220),
        ),
        MasterSpec(
            "mpeg1",
            replace(MPEG, base_addr=window, addr_span=window),
            transactions,
            QosSetting(real_time=True, objective_cycles=220),
        ),
        MasterSpec(
            "cpu0",
            replace(CPU, base_addr=2 * window, addr_span=window),
            transactions,
        ),
        MasterSpec(
            "writer0",
            replace(WRITER, base_addr=3 * window, addr_span=window),
            transactions,
        ),
    )
    workload = Workload("mpeg_bursty", specs, seed, gen_mode="stream")
    return SystemSpec(
        name="mpeg_bursty", workload=workload, bus=BusSpec(config=config)
    )


# -- trace-driven playback -------------------------------------------------------


def trace_replay(
    transactions: Optional[int] = None,
    source: object = None,
    config: Optional[AhbPlusConfig] = None,
    capture_engine: Optional[str] = None,
    preserve_issue_times: Optional[bool] = None,
    qos: Optional[Dict[int, QosSetting]] = None,
    num_masters: Optional[int] = None,
    master_names: Optional[Tuple[str, ...]] = None,
) -> SystemSpec:
    """Table-1 playback: one captured run, replayed on any engine.

    With no *source* this captures the canonical Table-1 pattern-A run
    once — elaborate the paper topology at *capture_engine*, record
    every transaction with a :class:`~repro.traffic.trace.
    TraceRecorder` — and binds the records as a trace-backed
    :class:`~repro.traffic.Workload`.  The resulting spec is plain
    data (the records travel inline), so it JSON-round-trips and
    pickles into process-backend sweep workers like any other spec;
    elaborating it at ``tlm``, ``plain`` or ``rtl`` replays the
    *identical* per-master transaction sequence, which is the paper's
    Table-1 methodology made literal.

    *source* short-circuits the capture: a trace file path, a record
    sequence, or a prepared :class:`~repro.traffic.trace.TraceSource`.
    ``preserve_issue_times=None`` (the default) anchors replay on the
    captured issue cycles for fresh captures and defers to a prepared
    source's own setting; pass a bool to force either mode.  A trace
    does not archive the bus's QoS register programming (per-transaction
    deadlines it does), so *qos* re-attaches RT settings when replaying
    an archived real-time capture; *num_masters* / *master_names* shape
    the synthesized master specs the same way.
    """
    from repro.system.platform import PlatformBuilder
    from repro.traffic.trace import TraceRecorder
    from repro.traffic.workloads import Workload

    if source is not None and (
        transactions is not None or capture_engine is not None
    ):
        raise ConfigError(
            "transactions/capture_engine only shape a fresh capture; "
            "a source= trace already fixes the record set"
        )
    if source is None and (
        qos is not None or num_masters is not None or master_names is not None
    ):
        raise ConfigError(
            "qos/num_masters/master_names re-shape an archived source= "
            "trace; a fresh capture inherits them from the captured "
            "workload"
        )
    if source is None:
        base = paper_topology(
            transactions=60 if transactions is None else transactions,
            config=config,
        )
        platform = PlatformBuilder(base).build(capture_engine or "tlm")
        recorder = TraceRecorder()
        platform.attach(recorder)
        platform.run()
        workload = Workload.from_trace(
            recorder.records,
            name="trace_replay",
            qos=base.workload.qos_map(),
            num_masters=base.workload.num_masters,
            preserve_issue_times=preserve_issue_times,
            master_names=[spec.name for spec in base.workload.masters],
        )
    else:
        workload = Workload.from_trace(
            source,
            name="trace_replay",
            qos=qos,
            num_masters=num_masters,
            preserve_issue_times=preserve_issue_times,
            master_names=master_names,
        )
    return SystemSpec(
        name="trace_replay", workload=workload, bus=BusSpec(config=config)
    )


# -- multi-slave variants --------------------------------------------------------

#: Memory map of the multi-slave SoC scenarios.
DDR_BASE, DDR_SIZE = 0x0000_0000, 1 << 26
SRAM_BASE, SRAM_SIZE = 0x0800_0000, 1 << 20
APB_BASE, APB_SIZE = 0x0900_0000, 1 << 16

#: Peripheral-register traffic: short single-beat accesses, long think
#: time — a CPU poking control registers through the bridge.
APB_CTRL = TrafficPattern(
    name="apb-ctrl",
    read_fraction=0.5,
    burst_mix=((1, 1.0),),
    think_range=(8, 40),
    sequential_fraction=0.2,
)


def _multi_slave_workload(transactions: int, seed: int) -> Workload:
    """Four masters spread across DDR, SRAM and APB regions.

    Windows are disjoint (and region-aligned) so the final memory image
    is order-independent — the same property the Table-1 suites rely on
    for strict functional equivalence between abstraction levels.
    """
    window = 1 << 20
    specs = (
        MasterSpec(
            "cpu0",
            replace(CPU, base_addr=DDR_BASE, addr_span=window),
            transactions,
        ),
        MasterSpec(
            "dma0",
            replace(DMA, base_addr=DDR_BASE + window, addr_span=window),
            transactions,
        ),
        MasterSpec(
            "io0",
            replace(
                WRITER,
                base_addr=SRAM_BASE,
                addr_span=SRAM_SIZE // 4,
            ),
            transactions,
        ),
        MasterSpec(
            "ctrl0",
            replace(APB_CTRL, base_addr=APB_BASE, addr_span=APB_SIZE),
            transactions,
        ),
    )
    return Workload("multi_slave_soc", specs, seed)


def multi_slave_soc(
    transactions: int = 150,
    seed: int = 41,
    config: Optional[AhbPlusConfig] = None,
) -> SystemSpec:
    """DDR + SRAM scratchpad + APB bridge behind one AHB+ bus.

    The scenario the ROADMAP's multi-slave backlog asks for: three
    mapped regions, four masters whose windows cover all of them, so
    every transfer exercises the decoder's multi-region routing.
    """
    return SystemSpec(
        name="multi_slave_soc",
        workload=_multi_slave_workload(transactions, seed),
        bus=BusSpec(config=config),
        slaves=(
            SlaveSpec(name="ddr", kind="ddr", base=DDR_BASE, size=DDR_SIZE),
            SlaveSpec(
                name="sram",
                kind="sram",
                base=SRAM_BASE,
                size=SRAM_SIZE,
                wait_states=1,
                burst_wait_states=0,
            ),
            SlaveSpec(
                name="apb",
                kind="apb",
                base=APB_BASE,
                size=APB_SIZE,
                setup_cycles=4,
            ),
        ),
    )


def scratchpad_offload(
    transactions: int = 200,
    seed: int = 47,
    config: Optional[AhbPlusConfig] = None,
) -> SystemSpec:
    """DDR + SRAM only: DMA streams DDR while the CPU works scratchpad.

    A smaller multi-slave variant where the scratchpad's one-wait-state
    accesses overlap the DDRC's row management — useful for measuring
    how much bus idle time a second slave can absorb.
    """
    window = 1 << 20
    specs = (
        MasterSpec(
            "cpu0",
            replace(CPU, base_addr=SRAM_BASE, addr_span=SRAM_SIZE // 4),
            transactions,
        ),
        MasterSpec(
            "dma0",
            replace(DMA, base_addr=DDR_BASE, addr_span=window),
            transactions,
        ),
        MasterSpec(
            "dma1",
            replace(DMA, base_addr=DDR_BASE + window, addr_span=window),
            transactions,
        ),
    )
    return SystemSpec(
        name="scratchpad_offload",
        workload=Workload("scratchpad_offload", specs, seed),
        bus=BusSpec(config=config),
        slaves=(
            SlaveSpec(name="ddr", kind="ddr", base=DDR_BASE, size=DDR_SIZE),
            SlaveSpec(
                name="sram", kind="sram", base=SRAM_BASE, size=SRAM_SIZE
            ),
        ),
    )


# -- the registry ----------------------------------------------------------------

SCENARIOS: Dict[str, Callable[..., SystemSpec]] = {
    "paper": paper_topology,
    "paper-pattern-a": lambda transactions=250, **kw: paper_topology(
        workload=table1_pattern_a(transactions), **kw
    ),
    "paper-pattern-b": lambda transactions=250, **kw: paper_topology(
        workload=table1_pattern_b(transactions), **kw
    ),
    "paper-pattern-c": lambda transactions=250, **kw: paper_topology(
        workload=table1_pattern_c(transactions), **kw
    ),
    "single-master": lambda transactions=500, **kw: paper_topology(
        workload=single_master_workload(transactions), **kw
    ),
    "saturating": lambda transactions=300, **kw: paper_topology(
        workload=saturating_workload(transactions), **kw
    ),
    "write-heavy": lambda transactions=300, **kw: paper_topology(
        workload=write_heavy_workload(transactions), **kw
    ),
    "bank-striped": lambda transactions=300, **kw: paper_topology(
        workload=bank_striped_workload(transactions), **kw
    ),
    "mpeg-bursty": mpeg_bursty,
    "trace-replay": trace_replay,
    "multi-slave-soc": multi_slave_soc,
    "scratchpad-offload": scratchpad_offload,
}


def scenario_names() -> Tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(SCENARIOS))


def scenario(name: str, **kwargs: object) -> SystemSpec:
    """Instantiate a registered scenario by name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise ConfigError(
            f"unknown scenario {name!r}; choose from {scenario_names()}"
        ) from None
    return factory(**kwargs)
