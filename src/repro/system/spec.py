"""Declarative system descriptions: one topology, every engine.

A :class:`SystemSpec` is the single source of truth for a platform: the
workload binding (which masters, which traffic), the bus parameter set
(:class:`BusSpec` wrapping :class:`~repro.core.config.AhbPlusConfig`)
and the slave-side memory map (:class:`SlaveSpec` address regions).  It
is *pure data* — frozen dataclasses with JSON round-trip and pickle
support — so the same spec can elaborate into the method-based TLM, the
thread-based TLM, the plain-AHB baseline or the pin-accurate RTL model
(see :mod:`repro.system.platform`), and sweep grids can ship specs to
worker processes unchanged.

The experiment ablations build their grids with :func:`sweep`, which
replaces exactly one axis (a config field, the workload seed, or the
engine level) per point instead of hand-cloning ``replace(config, ...)``
logic per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ahb.decoder import AddressMap
from repro.canonical import register_content_schema
from repro.core.config import AhbPlusConfig
from repro.errors import ConfigError
from repro.traffic.faults import FaultSpec
from repro.traffic.workloads import Workload

#: Slave model kinds a :class:`SlaveSpec` may name.
SLAVE_KINDS = ("ddr", "sram", "apb")

#: Elaboration targets (see :class:`repro.system.platform.PlatformBuilder`).
LEVELS = ("tlm", "tlm-threaded", "plain", "rtl")


@dataclass(frozen=True)
class SlaveSpec:
    """One slave's identity, model kind and address window.

    ``kind`` selects the model pair used at elaboration:

    * ``"ddr"`` — the DDR controller (analytic TLM / FSM RTL).  Must be
      based at address zero: the controller's bank/row decode arithmetic
      operates on absolute addresses.
    * ``"sram"`` — fixed-latency scratchpad with a real backing store
      (``wait_states`` first beat, ``burst_wait_states`` later beats).
    * ``"apb"`` — AHB→APB bridge stub: every beat pays the full
      ``setup_cycles`` bridge penalty (APB has no bursts).
    """

    name: str
    kind: str
    base: int
    size: int
    # Static-slave timing (ignored for "ddr"; the DDR timing lives in
    # the bus config so one knob drives both abstraction levels).
    wait_states: int = 1
    burst_wait_states: int = 0
    setup_cycles: int = 4
    #: Seeded fault model for this slave: transfers into its region may
    #: be answered with ERROR/RETRY (window defaults to the region).
    fault: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if self.kind not in SLAVE_KINDS:
            raise ConfigError(
                f"slave {self.name}: unknown kind {self.kind!r}; "
                f"choose from {SLAVE_KINDS}"
            )
        if self.base < 0 or self.size <= 0:
            raise ConfigError(f"slave {self.name}: bad base/size")
        if self.kind == "ddr" and self.base != 0:
            raise ConfigError(
                f"slave {self.name}: the DDR controller must be based at "
                f"address zero (bank decode is absolute)"
            )
        if self.wait_states < 0 or self.burst_wait_states < 0:
            raise ConfigError(f"slave {self.name}: negative wait states")
        if self.setup_cycles < 1:
            raise ConfigError(f"slave {self.name}: setup must be >= 1 cycle")

    @property
    def end(self) -> int:
        """First address after the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def to_dict(self) -> Dict[str, object]:
        payload = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name != "fault"
        }
        payload["fault"] = None if self.fault is None else self.fault.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SlaveSpec":
        data = dict(data)
        raw_fault = data.pop("fault", None)
        return cls(
            fault=None if raw_fault is None else FaultSpec.from_dict(raw_fault),
            **data,  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class BusSpec:
    """Bus-side parameters of a system.

    Wraps an :class:`AhbPlusConfig`; ``config=None`` means "derive a
    default config from the workload" (master count and QoS map), which
    is what the paper-topology scenarios do.
    """

    config: Optional[AhbPlusConfig] = None

    def resolve(self, workload: Workload) -> AhbPlusConfig:
        """The concrete config for *workload* (validated, QoS-merged)."""
        from repro.core.platform import config_for_workload

        return config_for_workload(workload, self.config)

    def to_dict(self) -> Dict[str, object]:
        return {
            "config": None if self.config is None else self.config.to_dict()
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BusSpec":
        raw = data.get("config")
        return cls(
            config=None if raw is None else AhbPlusConfig.from_dict(raw)  # type: ignore[arg-type]
        )


#: Schema tag of :meth:`SystemSpec.content_key` payloads; bump on
#: incompatible ``to_dict`` change to invalidate every cached key.
SYSTEM_KEY_SCHEMA = register_content_schema(
    "ahbplus-system-v1", "repro.system.spec.SystemSpec"
)


@dataclass(frozen=True)
class SystemSpec:
    """A complete platform description.

    ``slaves=()`` (the default) means the classic paper topology: one
    DDR controller mapped at address zero, sized by the bus config's
    ``memory_size`` — exactly what the legacy builders hard-coded.
    Explicit slave tuples describe multi-slave maps; region indices
    follow tuple order.
    """

    name: str
    workload: Workload
    bus: BusSpec = field(default_factory=BusSpec)
    slaves: Tuple[SlaveSpec, ...] = ()
    #: Slave index that catches unmapped addresses (AHB default slave);
    #: ``None`` keeps strict decoding (unmapped access raises).
    default_slave: Optional[int] = None

    def __post_init__(self) -> None:
        ddr_count = sum(1 for s in self.slaves if s.kind == "ddr")
        if self.slaves and ddr_count == 0:
            raise ConfigError(
                f"system {self.name}: need a DDR slave (the write buffer "
                f"and BI semantics assume one memory controller)"
            )
        if ddr_count > 1:
            raise ConfigError(
                f"system {self.name}: at most one DDR slave is supported"
            )
        if self.default_slave is not None and not (
            0 <= self.default_slave < max(len(self.slaves), 1)
        ):
            raise ConfigError(
                f"system {self.name}: default slave index out of range"
            )

    # -- resolution -----------------------------------------------------------

    def config(self) -> AhbPlusConfig:
        """The concrete bus configuration for this system."""
        return self.bus.resolve(self.workload)

    def resolved_slaves(
        self, config: Optional[AhbPlusConfig] = None
    ) -> Tuple[SlaveSpec, ...]:
        """Explicit slaves, or the synthesized paper-topology DDR."""
        if self.slaves:
            return self.slaves
        cfg = config if config is not None else self.config()
        return (SlaveSpec(name="ddr", kind="ddr", base=0, size=cfg.memory_size),)

    def ddr_slave(self, config: Optional[AhbPlusConfig] = None) -> SlaveSpec:
        """The (single) DDR slave of the system."""
        for spec in self.resolved_slaves(config):
            if spec.kind == "ddr":
                return spec
        raise ConfigError(f"system {self.name}: no DDR slave")  # unreachable

    def address_map(
        self, config: Optional[AhbPlusConfig] = None
    ) -> AddressMap:
        """Build the (overlap-checked) address map for this system."""
        amap = AddressMap(default_slave=self.default_slave)
        for index, spec in enumerate(self.resolved_slaves(config)):
            amap.add(spec.name, spec.base, spec.size, index)
        return amap

    # -- derivation -----------------------------------------------------------

    def with_config(self, **overrides: object) -> "SystemSpec":
        """A copy with bus-config fields replaced.

        The base config is resolved first (so a spec that derives its
        config from the workload can still be overridden), then the
        replacement re-validates through ``AhbPlusConfig.__post_init__``.
        """
        resolved = self.config()
        return replace(
            self, bus=BusSpec(config=replace(resolved, **overrides))  # type: ignore[arg-type]
        )

    def with_workload(self, workload: Workload) -> "SystemSpec":
        """A copy bound to a different workload."""
        return replace(self, workload=workload)

    def with_seed(self, seed: int) -> "SystemSpec":
        """A copy with the workload re-seeded (sweep repetition axis)."""
        return replace(self, workload=self.workload.with_seed(seed))

    def scaled(self, factor: float) -> "SystemSpec":
        """A copy with the workload's transaction counts scaled."""
        return replace(self, workload=self.workload.scaled(factor))

    def content_key(self) -> str:
        """Canonical content address of this system description.

        Hashed over the sorted-key JSON form, so the key survives dict
        reordering, ``to_dict`` → JSON → ``from_dict`` round-trips and
        process boundaries — the property the serving layer's result
        cache builds on (see :func:`repro.exec.records.point_key`,
        which combines this description with engine and cycle ceiling).
        """
        from repro.canonical import stable_hash

        return stable_hash(self.to_dict(), SYSTEM_KEY_SCHEMA)

    # -- serialisation --------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping of the whole system description."""
        return {
            "name": self.name,
            "workload": self.workload.to_dict(),
            "bus": self.bus.to_dict(),
            "slaves": [spec.to_dict() for spec in self.slaves],
            "default_slave": self.default_slave,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SystemSpec":
        """Rebuild a system spec; every layer re-validates itself."""
        return cls(
            name=data["name"],  # type: ignore[arg-type]
            workload=Workload.from_dict(data["workload"]),  # type: ignore[arg-type]
            bus=BusSpec.from_dict(data.get("bus", {})),  # type: ignore[arg-type]
            slaves=tuple(
                SlaveSpec.from_dict(spec) for spec in data.get("slaves", ())  # type: ignore[union-attr]
            ),
            default_slave=data.get("default_slave"),  # type: ignore[arg-type]
        )


# -- sweep grids ---------------------------------------------------------------

#: Axes handled specially by :func:`sweep`; anything else must name an
#: :class:`AhbPlusConfig` field.
SPECIAL_AXES = ("engine", "seed")

_CONFIG_FIELDS = {f.name for f in fields(AhbPlusConfig)}


@dataclass(frozen=True)
class SweepPoint:
    """One grid point of an experiment sweep."""

    label: str
    axis: str
    value: object
    spec: SystemSpec
    engine: str = "tlm"

    def build(self, **kwargs: object):
        """Elaborate this point's spec at its engine level."""
        from repro.system.platform import PlatformBuilder

        return PlatformBuilder(self.spec).build(self.engine, **kwargs)  # type: ignore[arg-type]


def sweep(
    spec: SystemSpec,
    axis: str,
    values: Iterable[object],
    labels: Optional[Sequence[str]] = None,
    engine: str = "tlm",
) -> List[SweepPoint]:
    """Expand *spec* along one axis into a list of :class:`SweepPoint`.

    ``axis`` is an :class:`AhbPlusConfig` field name (the common case:
    ``"write_buffer_depth"``, ``"bus_interface_enabled"``,
    ``"disabled_filters"``, ...), ``"seed"`` (re-seed the workload) or
    ``"engine"`` (same spec elaborated at different abstraction levels
    — the paper's whole premise).  Every point re-validates through the
    config/spec constructors, so an illegal grid value fails at grid
    construction, not mid-experiment.
    """
    if axis not in SPECIAL_AXES and axis not in _CONFIG_FIELDS:
        raise ConfigError(
            f"unknown sweep axis {axis!r}; use an AhbPlusConfig field, "
            f"'seed' or 'engine'"
        )
    values = list(values)
    if labels is not None and len(labels) != len(values):
        raise ConfigError("sweep labels must match values one-to-one")
    points: List[SweepPoint] = []
    for index, value in enumerate(values):
        label = labels[index] if labels is not None else f"{axis}={value}"
        if axis == "engine":
            if value not in LEVELS:
                raise ConfigError(
                    f"unknown engine {value!r}; choose from {LEVELS}"
                )
            point = SweepPoint(
                label=label, axis=axis, value=value, spec=spec, engine=str(value)
            )
        elif axis == "seed":
            point = SweepPoint(
                label=label,
                axis=axis,
                value=value,
                spec=spec.with_seed(int(value)),  # type: ignore[arg-type]
                engine=engine,
            )
        else:
            point = SweepPoint(
                label=label,
                axis=axis,
                value=value,
                spec=spec.with_config(**{axis: value}),
                engine=engine,
            )
        points.append(point)
    return points
