"""Declarative platform API: describe a system once, run it anywhere.

* :class:`SystemSpec` (+ :class:`BusSpec`, :class:`SlaveSpec`) — the
  topology description: workload binding, bus parameters, slave
  address regions.  Plain frozen data: picklable, JSON round-trip.
* :class:`PlatformBuilder` / :func:`build_platform` — elaborate a spec
  into any engine (``tlm``, ``tlm-threaded``, ``plain``, ``rtl``)
  behind the common :class:`Platform` protocol (``run()`` +
  ``attach(observer)``).
* :mod:`repro.system.scenarios` — the named-scenario registry: the
  paper topology and the multi-slave DDR+SRAM+APB variants.
* :func:`sweep` — expand one spec along one axis (config field, seed
  or engine level) into an experiment grid.
"""

from repro.system.platform import (
    AnyPlatform,
    Platform,
    PlatformBuilder,
    build_platform,
    platform_agents,
)
from repro.system.scenarios import (
    SCENARIOS,
    mpeg_bursty,
    multi_slave_soc,
    paper_topology,
    scenario,
    scenario_names,
    scratchpad_offload,
    trace_replay,
)
from repro.system.spec import (
    LEVELS,
    SLAVE_KINDS,
    BusSpec,
    SlaveSpec,
    SweepPoint,
    SystemSpec,
    sweep,
)

__all__ = [
    "AnyPlatform",
    "BusSpec",
    "LEVELS",
    "Platform",
    "PlatformBuilder",
    "SCENARIOS",
    "SLAVE_KINDS",
    "SlaveSpec",
    "SweepPoint",
    "SystemSpec",
    "build_platform",
    "mpeg_bursty",
    "multi_slave_soc",
    "paper_topology",
    "platform_agents",
    "scenario",
    "scenario_names",
    "scratchpad_offload",
    "trace_replay",
    "sweep",
]
