"""Read-tracking lint elaboration: traced signals + registration capture.

The netlist analyzer needs two things the normal kernel never exposes:

* **which process reads which signal** — captured by
  :class:`TracedSignal`, a :class:`~repro.kernel.signal.Signal`
  subclass whose ``value`` attribute is a recording property.  It is
  swapped in through :func:`repro.kernel.signal.make_signal` for the
  duration of a lint elaboration, so normal runs keep the plain slot
  attribute (the descriptor-free hot path the kernel docstring insists
  on); and
* **which process was registered with which contract** — captured by
  the :data:`repro.kernel.cycle._lint_observer` hook, which also wraps
  each registered ``handle.fn`` so reads and drives executed while the
  process runs are attributed to it (with the engine phase in hand for
  the NET-PHASE rule).

Both hooks are installed only inside :func:`lint_elaboration`; they are
consulted at construction/registration time, never per cycle, which is
what lets ``make bench`` stay at baseline with lint support compiled in.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import SimulationError
from repro.kernel import cycle as _cycle_mod
from repro.kernel import signal as _signal_mod
from repro.kernel.signal import Signal


@dataclass
class ProcInfo:
    """One registered process with its declared contract and trace."""

    kind: str  #: ``"comb"`` or ``"seq"``
    fn: object  #: the original (unwrapped) process callable
    engine_name: str
    #: Declared contract entries as ``(signal, has_predicate)`` pairs —
    #: ``sensitive_to`` for comb processes, ``wake_on`` for seq ones.
    entries: Tuple[Tuple[Signal, bool], ...] = ()
    static: bool = False  #: comb process registered without a list
    #: Signals read while this process executed (dynamic evidence).
    dyn_reads: Set[Signal] = field(default_factory=set)
    #: ``(signal, kind)`` drives executed by this process, where kind is
    #: ``drive`` / ``drive_next`` / ``drive_next_lazy``.
    dyn_drives: Set[Tuple[Signal, str]] = field(default_factory=set)
    #: Drives that violated the phase discipline at runtime.
    phase_events: Set[Tuple[Signal, str]] = field(default_factory=set)

    @property
    def component(self) -> Optional[object]:
        return getattr(self.fn, "__self__", None)

    @property
    def name(self) -> str:
        comp = self.component
        fn_name = getattr(self.fn, "__name__", repr(self.fn))
        if comp is not None:
            return f"{type(comp).__name__}.{fn_name}"
        return getattr(self.fn, "__qualname__", fn_name)

    @property
    def declared(self) -> Set[Signal]:
        """The declared contract signals (predicate entries included)."""
        return {sig for sig, _pred in self.entries}


@dataclass
class Netlist:
    """Everything one lint elaboration captured."""

    signals: List[Signal] = field(default_factory=list)
    procs: List[ProcInfo] = field(default_factory=list)
    #: Reads observed outside any process (monitors, hooks, harnesses) —
    #: genuine consumers as far as the dead-signal rule is concerned.
    external_reads: Set[Signal] = field(default_factory=set)

    @property
    def comb_procs(self) -> List[ProcInfo]:
        return [p for p in self.procs if p.kind == "comb"]

    @property
    def seq_procs(self) -> List[ProcInfo]:
        return [p for p in self.procs if p.kind == "seq"]


class _Tracker:
    """Mutable read/drive recording state shared with TracedSignal."""

    __slots__ = ("netlist", "suppress", "current", "phase")

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        #: Non-zero while inside a Signal method (drive/commit and the
        #: watcher cascade they trigger): the internal ``value`` compares
        #: and watcher-predicate reads are kernel mechanics, not process
        #: reads, and recording them would fabricate dependencies.
        self.suppress = 0
        self.current: Optional[ProcInfo] = None
        self.phase: Optional[str] = None

    def record_read(self, sig: Signal) -> None:
        proc = self.current
        if proc is not None:
            proc.dyn_reads.add(sig)
        else:
            self.netlist.external_reads.add(sig)

    def record_drive(self, sig: Signal, kind: str) -> None:
        proc = self.current
        if proc is None:
            return
        proc.dyn_drives.add((sig, kind))
        phase = self.phase
        if phase == "update" and kind == "drive":
            proc.phase_events.add((sig, kind))
        elif phase == "evaluate" and kind != "drive":
            proc.phase_events.add((sig, kind))


#: The active tracker; ``None`` outside a lint elaboration.
_ACTIVE: Optional[_Tracker] = None


def active_tracker() -> Optional[_Tracker]:
    return _ACTIVE


#: Storage descriptor of the base class's ``value`` slot: the traced
#: property shadows the name, so the slot is reached through the
#: descriptor directly.
_VALUE_SLOT = Signal.value  # type: ignore[valid-type]


class TracedSignal(Signal):
    """A signal whose value reads are attributed to the running process.

    ``__slots__`` stays empty so instances keep the base layout; the
    ``value`` class attribute shadows the inherited slot descriptor with
    a recording property (lint elaborations are not performance-bound).
    Drive/commit entry points bump the tracker's suppression counter so
    their internal compares — and the watcher/predicate cascade they
    trigger — never register as process reads.
    """

    __slots__ = ()

    def __init__(self, name: str, width: int = 1, reset: int = 0) -> None:
        tracker = _ACTIVE
        if tracker is not None:
            tracker.suppress += 1
            try:
                Signal.__init__(self, name, width=width, reset=reset)
            finally:
                tracker.suppress -= 1
            tracker.netlist.signals.append(self)
        else:  # pragma: no cover - constructed outside an elaboration
            Signal.__init__(self, name, width=width, reset=reset)

    @property  # type: ignore[override]
    def value(self) -> int:
        tracker = _ACTIVE
        if tracker is not None and tracker.suppress == 0:
            tracker.record_read(self)
        return _VALUE_SLOT.__get__(self, TracedSignal)

    @value.setter
    def value(self, new: int) -> None:
        _VALUE_SLOT.__set__(self, new)

    def __bool__(self) -> bool:
        return bool(self.value)

    def _recorded(self, kind: str, value: object, base) -> bool:
        tracker = _ACTIVE
        if tracker is None:  # pragma: no cover - outside an elaboration
            return base(self, value)
        tracker.record_drive(self, kind)
        tracker.suppress += 1
        try:
            return base(self, value)
        finally:
            tracker.suppress -= 1

    def drive(self, value: object) -> bool:
        return self._recorded("drive", value, Signal.drive)

    def drive_next(self, value: object) -> None:
        self._recorded("drive_next", value, Signal.drive_next)

    def drive_next_lazy(self, value: object) -> None:
        self._recorded("drive_next_lazy", value, Signal.drive_next_lazy)

    def commit(self) -> bool:
        tracker = _ACTIVE
        if tracker is None:  # pragma: no cover - outside an elaboration
            return Signal.commit(self)
        tracker.suppress += 1
        try:
            return Signal.commit(self)
        finally:
            tracker.suppress -= 1


def _normalize_entries(
    entries: Optional[Sequence[object]],
) -> Tuple[Tuple[Signal, bool], ...]:
    if entries is None:
        return ()
    out: List[Tuple[Signal, bool]] = []
    for entry in entries:
        if type(entry) is tuple:
            out.append((entry[0], True))
        else:
            out.append((entry, False))  # type: ignore[arg-type]
    return tuple(out)


class _Observer:
    """Registration hook body for :data:`repro.kernel.cycle._lint_observer`."""

    def __init__(self, tracker: _Tracker) -> None:
        self.tracker = tracker
        self.netlist = tracker.netlist

    def _wrap(self, proc: ProcInfo, fn, phase: str):
        tracker = self.tracker

        def traced() -> None:
            prev_proc, prev_phase = tracker.current, tracker.phase
            tracker.current, tracker.phase = proc, phase
            try:
                fn()
            finally:
                tracker.current, tracker.phase = prev_proc, prev_phase

        return traced

    def combinational(self, engine, handle, fn, sensitive_to) -> None:
        proc = ProcInfo(
            kind="comb",
            fn=fn,
            engine_name=engine.name,
            entries=_normalize_entries(sensitive_to),
            static=sensitive_to is None,
        )
        self.netlist.procs.append(proc)
        handle.fn = self._wrap(proc, fn, "evaluate")

    def sequential(self, engine, handle, fn, wake_on) -> None:
        proc = ProcInfo(
            kind="seq",
            fn=fn,
            engine_name=engine.name,
            entries=_normalize_entries(wake_on),
        )
        self.netlist.procs.append(proc)
        handle.fn = self._wrap(proc, fn, "update")


@contextmanager
def lint_elaboration() -> Iterator[Netlist]:
    """Install the lint hooks for the duration of one elaboration.

    Everything constructed inside the ``with`` block — signals through
    :func:`~repro.kernel.signal.make_signal` (which every
    :class:`~repro.kernel.signal.SignalBundle` uses) and processes
    through the engine registration methods — lands in the yielded
    :class:`Netlist`.  Running cycles inside the block is optional:
    the contract rules are static, dynamic traces only add evidence.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise SimulationError("lint elaborations cannot nest")
    netlist = Netlist()
    tracker = _Tracker(netlist)
    _ACTIVE = tracker
    _signal_mod._signal_class = TracedSignal
    _cycle_mod._lint_observer = _Observer(tracker)
    try:
        yield netlist
    finally:
        _ACTIVE = None
        _signal_mod._signal_class = None
        _cycle_mod._lint_observer = None


@contextmanager
def suppressed_tracking() -> Iterator[None]:
    """Mute read/drive recording (static analysis resolves live objects,
    and resolving an attribute chain must not register as a read)."""
    tracker = _ACTIVE
    if tracker is None:
        yield None
        return
    tracker.suppress += 1
    try:
        yield None
    finally:
        tracker.suppress -= 1
