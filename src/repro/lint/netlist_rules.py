"""The six NET-* contract rules over an elaborated netlist.

Inputs are the :class:`~repro.lint.trace.Netlist` captured by a lint
elaboration (declared contracts + optional dynamic traces) and the
per-process :class:`~repro.lint.astread.StaticTrace`s.  Static evidence
catches branches no workload executed; dynamic evidence catches reads
the resolver could not see (exotic indirection).  Both feed the same
rules.

Waivers: a component class may carry a ``LINT_WAIVERS`` dict mapping
rule ID to ``{signal-name: reason}``.  Signal names match either the
full elaborated name (``bus.hwdata``) or the final dotted component
(``hwdata``).  Waived findings stay in the report with their reason but
do not fail the run — the waiver is part of the documented contract.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.kernel.signal import Signal
from repro.lint.astread import StaticTrace, analyze_process
from repro.lint.findings import LintFinding
from repro.lint.trace import Netlist, ProcInfo


@dataclass
class _ProcFacts:
    """One process with static + dynamic evidence merged."""

    proc: ProcInfo
    static: StaticTrace
    location: str

    #: Every signal this process reads (static ∪ dynamic).
    all_reads: Set[Signal] = field(default_factory=set)
    #: Every ``(signal, kind)`` drive (static ∪ dynamic).
    all_drives: Set[Tuple[Signal, str]] = field(default_factory=set)

    @property
    def driven_signals(self) -> Set[Signal]:
        return {sig for sig, _kind in self.all_drives}

    def comb_driven(self) -> Set[Signal]:
        return {sig for sig, kind in self.all_drives if kind == "drive"}


def _waiver_reason(
    proc: ProcInfo, rule: str, sig: Signal
) -> Optional[str]:
    component = proc.component
    if component is None:
        return None
    waivers = getattr(type(component), "LINT_WAIVERS", None)
    if not waivers:
        return None
    by_signal = waivers.get(rule)
    if not by_signal:
        return None
    short = sig.name.rsplit(".", 1)[-1]
    return by_signal.get(sig.name) or by_signal.get(short)


def _finding(
    rule: str, facts_or_proc, sig: Optional[Signal], message: str, location: str
) -> LintFinding:
    finding = LintFinding(rule=rule, location=location, message=message)
    if sig is not None and facts_or_proc is not None:
        reason = _waiver_reason(facts_or_proc, rule, sig)
        if reason is not None:
            finding = finding.waive(reason)
    return finding


def _collect_facts(netlist: Netlist, context: str) -> List[_ProcFacts]:
    out: List[_ProcFacts] = []
    for proc in netlist.procs:
        static = analyze_process(proc.fn)
        facts = _ProcFacts(
            proc=proc,
            static=static,
            location=f"{context}:{proc.name}",
        )
        facts.all_reads = static.read_signals | proc.dyn_reads
        facts.all_drives = set(static.drives) | proc.dyn_drives
        out.append(facts)
    return out


# -- NET-SENS ----------------------------------------------------------------


def _rule_sens(facts: List[_ProcFacts]) -> List[LintFinding]:
    """A dynamic-sensitivity comb process must declare every read."""
    findings: List[LintFinding] = []
    for f in facts:
        if f.proc.kind != "comb" or f.proc.static:
            continue
        declared = f.proc.declared
        for sig in sorted(f.all_reads - declared, key=lambda s: s.name):
            findings.append(
                _finding(
                    "NET-SENS",
                    f.proc,
                    sig,
                    f"reads {sig.name} but sensitive_to does not list it; "
                    "event-driven evaluation will miss its changes",
                    f.location,
                )
            )
    return findings


# -- NET-WAKE ----------------------------------------------------------------


def _wake_covered(
    sig: Signal,
    guards: FrozenSet[Signal],
    declared: Set[Signal],
    self_driven: Set[Signal],
) -> bool:
    """Is a static read site acceptable under the quiescence contract?

    Covered when the signal is in the wake list, when the read can only
    execute while a declared wake signal holds the enabling value (the
    guard reads a declared signal), or when the process itself drives
    the signal (its own registered outputs cannot require waking it —
    the hand-inlined ``if out.x.value != x`` lazy-compare idiom).
    """
    if sig in declared or sig in self_driven:
        return True
    return bool(guards & declared)


def _rule_wake(facts: List[_ProcFacts]) -> List[LintFinding]:
    """A sequential update() may only read wake-covered signals.

    Purely static: guard sets are not observable dynamically, and an
    unguarded-looking dynamic read may in fact sit under a state guard.
    """
    findings: List[LintFinding] = []
    for f in facts:
        if f.proc.kind != "seq":
            continue
        declared = f.proc.declared
        self_driven = f.driven_signals
        flagged: Set[Signal] = set()
        for sig, guards in f.static.reads:
            if sig in flagged:
                continue
            if _wake_covered(sig, guards, declared, self_driven):
                continue
            flagged.add(sig)
            findings.append(
                _finding(
                    "NET-WAKE",
                    f.proc,
                    sig,
                    f"update() reads {sig.name} without wake_on coverage: "
                    "not declared, not guarded by a declared signal, not "
                    "self-driven — the process can sleep through its edges",
                    f.location,
                )
            )
    return findings


# -- NET-MULTI ---------------------------------------------------------------


def _rule_multi(facts: List[_ProcFacts], context: str) -> List[LintFinding]:
    """At most one combinational process may drive() a signal."""
    drivers: Dict[Signal, List[_ProcFacts]] = {}
    for f in facts:
        if f.proc.kind != "comb":
            continue
        for sig in f.comb_driven():
            drivers.setdefault(sig, []).append(f)
    findings: List[LintFinding] = []
    for sig, procs in sorted(drivers.items(), key=lambda kv: kv[0].name):
        if len(procs) <= 1:
            continue
        names = ", ".join(sorted(p.proc.name for p in procs))
        findings.append(
            _finding(
                "NET-MULTI",
                procs[0].proc,
                sig,
                f"{sig.name} has {len(procs)} combinational drivers "
                f"({names}); last-writer-wins order is elaboration luck",
                f"{context}:{sig.name}",
            )
        )
    return findings


# -- NET-PHASE ---------------------------------------------------------------


def _rule_phase(facts: List[_ProcFacts]) -> List[LintFinding]:
    """Comb processes drive(); seq processes drive_next()."""
    findings: List[LintFinding] = []
    for f in facts:
        if f.proc.kind == "comb":
            bad = {(s, k) for s, k in f.all_drives if k != "drive"}
            hint = "registered drives from evaluate skew the clock edge"
        else:
            bad = {(s, k) for s, k in f.all_drives if k == "drive"}
            hint = (
                "combinational drives from update bypass the two-phase "
                "discipline and race the settle loop"
            )
        bad |= f.proc.phase_events
        for sig, kind in sorted(bad, key=lambda sk: (sk[0].name, sk[1])):
            findings.append(
                _finding(
                    "NET-PHASE",
                    f.proc,
                    sig,
                    f"{f.proc.kind} process calls {sig.name}.{kind}(); {hint}",
                    f.location,
                )
            )
    return findings


# -- NET-LOOP ----------------------------------------------------------------


def _rule_loop(facts: List[_ProcFacts], context: str) -> List[LintFinding]:
    """Static combinational feedback detection.

    Edge ``P1 -> P2`` when P1 combinationally drives a signal P2 is
    sensitive to.  A cycle means the settle loop can oscillate — the
    runtime bound (:data:`~repro.kernel.cycle.MAX_SETTLE_ITERATIONS`)
    would catch it only on a workload that excites the loop.
    """
    comb = [f for f in facts if f.proc.kind == "comb"]
    index = {id(f): i for i, f in enumerate(comb)}
    edges: Dict[int, Set[int]] = {i: set() for i in range(len(comb))}
    for i, f in enumerate(comb):
        driven = f.comb_driven()
        if not driven:
            continue
        for j, g in enumerate(comb):
            if i == j:
                continue
            if driven & g.proc.declared:
                edges[i].add(j)

    findings: List[LintFinding] = []
    color = [0] * len(comb)  # 0 white, 1 on-stack, 2 done
    stack: List[int] = []
    reported: Set[FrozenSet[int]] = set()

    def visit(i: int) -> None:
        color[i] = 1
        stack.append(i)
        for j in sorted(edges[i]):
            if color[j] == 0:
                visit(j)
            elif color[j] == 1:
                cycle = stack[stack.index(j):]
                key = frozenset(cycle)
                if key not in reported:
                    reported.add(key)
                    names = " -> ".join(comb[k].proc.name for k in cycle)
                    findings.append(
                        _finding(
                            "NET-LOOP",
                            None,
                            None,
                            f"combinational feedback cycle: {names} -> "
                            f"{comb[cycle[0]].proc.name}",
                            f"{context}:{comb[cycle[0]].proc.name}",
                        )
                    )
        stack.pop()
        color[i] = 2

    for i in range(len(comb)):
        if color[i] == 0:
            visit(i)
    return findings


# -- NET-DEAD ----------------------------------------------------------------


def _rule_dead(
    facts: List[_ProcFacts], netlist: Netlist, context: str
) -> List[LintFinding]:
    """A driven signal nobody consumes is a modelling leftover.

    Consumers: any process read (static or dynamic) by someone other
    than the sole driver, membership in any sensitive_to/wake_on list,
    or a read from outside the processes (monitors, collectors, VCD).
    """
    drivers: Dict[Signal, Set[int]] = {}
    readers: Dict[Signal, Set[int]] = {}
    for i, f in enumerate(facts):
        for sig in f.driven_signals:
            drivers.setdefault(sig, set()).add(i)
        for sig in f.all_reads:
            readers.setdefault(sig, set()).add(i)
    declared_anywhere: Set[Signal] = set()
    for f in facts:
        declared_anywhere |= f.proc.declared

    findings: List[LintFinding] = []
    for sig in netlist.signals:
        who = drivers.get(sig)
        if not who:
            continue
        if sig in declared_anywhere or sig in netlist.external_reads:
            continue
        consumer_procs = readers.get(sig, set()) - (
            who if len(who) == 1 else set()
        )
        if consumer_procs:
            continue
        driver = facts[min(who)]
        findings.append(
            _finding(
                "NET-DEAD",
                driver.proc,
                sig,
                f"{sig.name} is driven by {driver.proc.name} but nothing "
                "reads it, wakes on it, or observes it externally",
                f"{context}:{sig.name}",
            )
        )
    return findings


# -- entry -------------------------------------------------------------------


def run_netlist_rules(netlist: Netlist, context: str) -> List[LintFinding]:
    """Run all NET-* rules over one captured netlist."""
    facts = _collect_facts(netlist, context)
    findings: List[LintFinding] = []
    findings.extend(_rule_sens(facts))
    findings.extend(_rule_wake(facts))
    findings.extend(_rule_multi(facts, context))
    findings.extend(_rule_phase(facts))
    findings.extend(_rule_loop(facts, context))
    findings.extend(_rule_dead(facts, netlist, context))
    return findings
