"""The five DET-* determinism rules over the source tree.

These are plain AST rules (no elaboration): they scan ``src/repro`` and
flag constructs that would make a simulation, a sweep key, or a cached
result depend on something other than its inputs.

* **DET-RAND** — calls on the module-global :mod:`random` state
  (``random.randint(...)`` etc.) and unseeded ``random.Random()``.
  Every RNG in the simulator must be derived from an explicit seed or
  the same spec hashes to different behaviour.  ``repro/serve`` is
  exempt: its retry jitter is wall-clock-adjacent by design and
  injectable for tests.
* **DET-TIME** — wall-clock reads (``time.time``/``time_ns``,
  ``datetime.now``/``utcnow``/``today``).  ``perf_counter`` stays legal:
  it only ever feeds duration metrics that are excluded from content
  keys.
* **DET-MUTDEF** — mutable default arguments (the classic shared-state
  leak between calls).
* **DET-PICKLE** — ``collect=`` callables that cannot be pickled by
  reference (lambdas, functions nested inside another function): the
  process-pool sweep path would crash on them at dispatch time.
* **DET-SCHEMA** — content-key hygiene: every ``ahbplus-*`` schema tag
  must be claimed through
  :func:`repro.canonical.register_content_schema` (bare module-level
  string constants and literal tags passed to ``stable_hash`` are
  findings), and a class that defines ``content_key`` must carry the
  ``to_dict``/``from_dict`` pair its key round-trips through.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.lint.findings import LintFinding

#: Modules allowed to touch the shared :mod:`random` state, with the
#: documented reason (rendered when ``--list-rules`` explains scope).
RAND_EXEMPT = {
    "repro/serve": "retry/backoff jitter; injectable and outside sim state",
}

_TIME_CALLS = {"time", "time_ns"}
_DATETIME_CALLS = {"now", "utcnow", "today"}
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set)
_MUTABLE_CALLS = {"list", "dict", "set"}


def _rel(path: Path, root: Path) -> str:
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


def _exempt_reason(rel_path: str) -> Optional[str]:
    normalized = rel_path.replace("\\", "/")
    for prefix, reason in RAND_EXEMPT.items():
        if normalized.startswith(prefix + "/") or normalized == prefix:
            return reason
    return None


class _FileScan(ast.NodeVisitor):
    """All DET rules in one AST walk of a single file."""

    def __init__(self, rel_path: str, rand_exempt: Optional[str]) -> None:
        self.rel_path = rel_path
        self.rand_exempt = rand_exempt
        self.findings: List[LintFinding] = []
        #: Names bound to the stdlib random / time / datetime modules.
        self.random_aliases: Set[str] = set()
        self.time_aliases: Set[str] = set()
        self.datetime_aliases: Set[str] = set()
        #: Stack of function scopes; each holds its nested-def names.
        self.func_stack: List[Set[str]] = []

    # -- helpers -------------------------------------------------------------

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        finding = LintFinding(
            rule=rule,
            location=f"{self.rel_path}:{line}",
            message=message,
        )
        if rule == "DET-RAND" and self.rand_exempt is not None:
            finding = finding.waive(self.rand_exempt)
        self.findings.append(finding)

    # -- imports -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            bound = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(bound)
            elif alias.name == "time":
                self.time_aliases.add(bound)
            elif alias.name == "datetime":
                self.datetime_aliases.add(bound)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    self._emit(
                        "DET-RAND",
                        node,
                        f"from random import {alias.name} binds the "
                        "module-global RNG state; derive a seeded "
                        "random.Random instead",
                    )
        elif node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_CALLS:
                    self._emit(
                        "DET-TIME",
                        node,
                        f"from time import {alias.name} is a wall-clock "
                        "read; use perf_counter for durations",
                    )
        elif node.module == "datetime":
            for alias in node.names:
                self.datetime_aliases.add(alias.asname or alias.name)
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------------

    def _attr_on(self, node: ast.expr, aliases: Set[str]) -> Optional[str]:
        """``alias.attr`` where alias names a tracked module -> attr."""
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            if node.value.id in aliases:
                return node.attr
        return None

    def visit_Call(self, node: ast.Call) -> None:
        attr = self._attr_on(node.func, self.random_aliases)
        if attr is not None:
            if attr == "Random":
                if not node.args and not node.keywords:
                    self._emit(
                        "DET-RAND",
                        node,
                        "random.Random() without a seed draws entropy from "
                        "the OS; pass an explicit seed",
                    )
            elif attr != "SystemRandom":
                self._emit(
                    "DET-RAND",
                    node,
                    f"random.{attr}() uses the shared module-global RNG; "
                    "derive values from a seeded random.Random",
                )
        attr = self._attr_on(node.func, self.time_aliases)
        if attr in _TIME_CALLS:
            self._emit(
                "DET-TIME",
                node,
                f"time.{attr}() reads the wall clock; simulation state and "
                "content keys must not depend on it",
            )
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in _DATETIME_CALLS:
                base = node.func.value
                base_name = None
                if isinstance(base, ast.Name):
                    base_name = base.id
                elif isinstance(base, ast.Attribute):
                    base_name = base.attr
                if base_name in ("datetime", "date") or (
                    isinstance(base, ast.Name)
                    and base.id in self.datetime_aliases
                ):
                    self._emit(
                        "DET-TIME",
                        node,
                        f"datetime {node.func.attr}() reads the wall clock",
                    )
        # stable_hash(value, "literal-tag")
        func_name = None
        if isinstance(node.func, ast.Name):
            func_name = node.func.id
        elif isinstance(node.func, ast.Attribute):
            func_name = node.func.attr
        if func_name == "stable_hash":
            schema_arg: Optional[ast.expr] = None
            if len(node.args) >= 2:
                schema_arg = node.args[1]
            else:
                for kw in node.keywords:
                    if kw.arg == "schema":
                        schema_arg = kw.value
            if isinstance(schema_arg, ast.Constant) and isinstance(
                schema_arg.value, str
            ):
                self._emit(
                    "DET-SCHEMA",
                    schema_arg,
                    f"stable_hash called with literal tag "
                    f"{schema_arg.value!r}; use a constant claimed via "
                    "register_content_schema so the tag is unique",
                )
        # collect=<non-picklable>
        for kw in node.keywords:
            if kw.arg != "collect":
                continue
            if isinstance(kw.value, ast.Lambda):
                self._emit(
                    "DET-PICKLE",
                    kw.value,
                    "collect=lambda cannot be pickled by reference; the "
                    "process-pool sweep path will fail to dispatch it — "
                    "use a module-level function",
                )
            elif isinstance(kw.value, ast.Name) and any(
                kw.value.id in scope for scope in self.func_stack
            ):
                self._emit(
                    "DET-PICKLE",
                    kw.value,
                    f"collect={kw.value.id} is a function nested inside "
                    "another function; it cannot be pickled by reference — "
                    "move it to module level",
                )
        self.generic_visit(node)

    # -- defs ----------------------------------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            mutable = isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            )
            if mutable:
                self._emit(
                    "DET-MUTDEF",
                    default,
                    f"function {node.name} has a mutable default argument; "
                    "it is shared across calls — default to None",
                )

    def _visit_function(self, node) -> None:
        self._check_defaults(node)
        if self.func_stack:
            self.func_stack[-1].add(node.name)
        self.func_stack.append(set())
        self.generic_visit(node)
        self.func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "content_key" in methods:
            missing = {"to_dict", "from_dict"} - methods
            if missing:
                self._emit(
                    "DET-SCHEMA",
                    node,
                    f"class {node.name} defines content_key but not "
                    f"{'/'.join(sorted(missing))}; content keys must "
                    "round-trip through to_dict/from_dict",
                )
        self.generic_visit(node)

    # -- module-level schema constants --------------------------------------

    def scan_module_assigns(self, tree: ast.Module) -> None:
        for stmt in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if (
                value is not None
                and isinstance(value, ast.Constant)
                and isinstance(value.value, str)
                and value.value.startswith("ahbplus-")
            ):
                names = ", ".join(
                    t.id for t in targets if isinstance(t, ast.Name)
                )
                self._emit(
                    "DET-SCHEMA",
                    stmt,
                    f"schema tag constant {names or '<target>'} = "
                    f"{value.value!r} is not claimed; wrap the literal in "
                    "register_content_schema(tag, owner)",
                )


def _iter_sources(root: Path) -> Iterable[Path]:
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        yield path


def run_source_rules(
    paths: Union[Path, str, Sequence[Union[Path, str]]],
    root: Optional[Path] = None,
) -> List[LintFinding]:
    """Run every DET-* rule over *paths* (a tree, file, or list).

    Locations are reported relative to *root* (default: the single
    path's parent tree), which is also what the ``repro/serve``
    exemption matches against.
    """
    if isinstance(paths, (str, Path)):
        paths = [paths]
    findings: List[LintFinding] = []
    for entry in paths:
        entry = Path(entry)
        base = root if root is not None else (
            entry if entry.is_dir() else entry.parent
        )
        for path in _iter_sources(entry):
            rel_path = _rel(path, base)
            try:
                tree = ast.parse(path.read_text(encoding="utf-8"))
            except (OSError, SyntaxError) as exc:
                findings.append(
                    LintFinding(
                        rule="DET-SCHEMA",
                        location=rel_path,
                        message=f"unparseable source: {exc}",
                    )
                )
                continue
            scan = _FileScan(rel_path, _exempt_reason(rel_path))
            scan.scan_module_assigns(tree)
            scan.visit(tree)
            findings.extend(scan.findings)
    return findings
