"""Structured lint findings and the report that aggregates them.

Every rule reports :class:`LintFinding` rows — rule ID, severity,
location and a human message — so the CLI can render one uniform text
or JSON report regardless of which layer (netlist or source AST)
produced the finding.  Waived findings stay in the report (the waiver
and its documented reason are part of the contract) but never affect
the exit code.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Tuple

#: Every rule the subsystem implements: ``id -> (layer, summary)``.
#: The README's contract table references these IDs; keep in sync.
RULES: Dict[str, Tuple[str, str]] = {
    "NET-SENS": (
        "netlist",
        "combinational process reads a signal absent from sensitive_to",
    ),
    "NET-WAKE": (
        "netlist",
        "sequential update() reads a signal not covered by the wake contract",
    ),
    "NET-MULTI": (
        "netlist",
        "signal has more than one combinational driver",
    ),
    "NET-PHASE": (
        "netlist",
        "drive() from the update phase / drive_next() from the evaluate phase",
    ),
    "NET-LOOP": (
        "netlist",
        "combinational feedback cycle in the sensitivity graph",
    ),
    "NET-DEAD": (
        "netlist",
        "signal is driven but never read by anything else",
    ),
    "DET-RAND": (
        "source",
        "unseeded random-number generator in deterministic scope",
    ),
    "DET-TIME": (
        "source",
        "wall-clock read in deterministic scope",
    ),
    "DET-MUTDEF": (
        "source",
        "mutable default argument",
    ),
    "DET-PICKLE": (
        "source",
        "sweep collector that cannot be pickled by reference",
    ),
    "DET-SCHEMA": (
        "source",
        "content-key schema tag not registered, duplicated, or on a class "
        "without to_dict/from_dict",
    ),
}


@dataclass(frozen=True)
class LintFinding:
    """One rule violation (or documented waiver) at one location."""

    rule: str  #: rule ID, a key of :data:`RULES`
    location: str  #: ``scenario:Component.process`` or ``path:line``
    message: str  #: what exactly is wrong, naming the signal/construct
    severity: str = "error"
    waived: bool = False  #: documented exception — reported, exit-neutral
    waive_reason: str = ""

    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "rule": self.rule,
            "severity": self.severity,
            "location": self.location,
            "message": self.message,
        }
        if self.waived:
            data["waived"] = True
            data["waive_reason"] = self.waive_reason
        return data

    def waive(self, reason: str) -> "LintFinding":
        return replace(self, waived=True, waive_reason=reason)


@dataclass
class LintReport:
    """All findings of one lint run, with the exit-code policy."""

    findings: List[LintFinding] = field(default_factory=list)

    def extend(self, findings: List[LintFinding]) -> None:
        self.findings.extend(findings)

    @property
    def errors(self) -> List[LintFinding]:
        """Findings that fail the run (everything not waived)."""
        return [f for f in self.findings if not f.waived]

    @property
    def waived(self) -> List[LintFinding]:
        return [f for f in self.findings if f.waived]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "findings": [f.to_dict() for f in self.findings],
            "errors": len(self.errors),
            "waived": len(self.waived),
            "ok": not self.errors,
        }

    def render_text(self) -> str:
        """Human-readable report, one line per finding."""
        lines: List[str] = []
        for finding in self.errors:
            lines.append(
                f"{finding.rule} {finding.location}: {finding.message}"
            )
        for finding in self.waived:
            lines.append(
                f"{finding.rule} {finding.location}: {finding.message} "
                f"[waived: {finding.waive_reason}]"
            )
        if self.errors:
            lines.append(
                f"{len(self.errors)} finding(s), "
                f"{len(self.waived)} waived"
            )
        else:
            lines.append(f"clean ({len(self.waived)} waived finding(s))")
        return "\n".join(lines)
