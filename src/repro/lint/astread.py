"""Static read/drive analysis of registered process closures.

The dynamic trace (:mod:`repro.lint.trace`) only sees the branches a
particular workload happens to execute.  This module closes the gap: it
parses the source of each registered process with :mod:`ast` and
resolves attribute chains against the *live elaborated objects* bound
into the closure (``self``, free variables, module globals), so a read
like ``self.bus.htrans.value`` is attributed to the concrete
:class:`~repro.kernel.signal.Signal` instance of the netlist under
analysis — without running a single cycle.

What the walk records:

* ``<signal>.value`` attribute loads and bare signals forced to bool
  (``if sig:``, ``bool(sig)``, ``not sig``) are **reads**;
* ``<signal>.drive(...)`` / ``.drive_next(...)`` / ``.drive_next_lazy(...)``
  calls are **drives** with their kind;
* each read carries the **guard set**: the signals whose values the
  enclosing ``if``/``while`` tests depend on, tracked transitively
  through local-variable taint (``busy = self.bus.ddr_busy.value`` …
  ``if not busy:`` guards the branch on ``ddr_busy``), and including
  *early-return guards* — after ``if cond: return``, the remainder of
  the block is guarded by the signals ``cond`` reads.  The NET-WAKE
  rule uses guard sets to accept reads that can only fire when a
  declared wake signal already holds the enabling value.

Calls into other methods of ``repro`` components are followed
interprocedurally (bounded depth, memoised per ``(instance, code,
args)``), so ``update()`` helpers like ``_accept_address_phase`` are
analysed in context.  Kernel classes and builtins are never entered.

Resolution is best-effort by design: an attribute that cannot be
resolved simply contributes nothing.  The rules treat static evidence
as a *lower bound* on reads, exactly like the dynamic trace.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
import types
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.kernel.signal import Signal
from repro.lint.trace import suppressed_tracking

#: Most candidate objects a single expression may resolve to.  Dynamic
#: subscripts (``self.master_signals[owner]``) fan out to every element;
#: the cap keeps pathological containers from exploding the analysis.
MAX_CANDIDATES = 32

#: Interprocedural recursion bound.  The deepest shipped chain is
#: ``update -> _pipeline_round -> _candidates``; six levels is plenty
#: while still terminating on accidental recursion.
MAX_DEPTH = 6

_DRIVE_KINDS = ("drive", "drive_next", "drive_next_lazy")

_EMPTY: Tuple[object, ...] = ()
_NO_TAINT: FrozenSet[Signal] = frozenset()


@dataclass
class StaticTrace:
    """Everything the static walk proved about one process."""

    #: ``(signal, guard-signals)`` pairs, one per read site.
    reads: List[Tuple[Signal, FrozenSet[Signal]]] = field(default_factory=list)
    #: ``(signal, kind)`` drive sites.
    drives: Set[Tuple[Signal, str]] = field(default_factory=set)

    @property
    def read_signals(self) -> Set[Signal]:
        return {sig for sig, _guards in self.reads}

    @property
    def driven_signals(self) -> Set[Signal]:
        return {sig for sig, _kind in self.drives}


@dataclass
class _Summary:
    """Per-callable analysis result, reusable across call sites."""

    reads: List[Tuple[Signal, FrozenSet[Signal]]] = field(default_factory=list)
    drives: Set[Tuple[Signal, str]] = field(default_factory=set)
    #: Signals the return value (may) depend on — callers fold this
    #: into the taint of the call expression.
    ret_taint: Set[Signal] = field(default_factory=set)


def _dedup(objs: Sequence[object]) -> Tuple[object, ...]:
    seen: List[object] = []
    ids: Set[int] = set()
    for obj in objs:
        if obj is None:
            continue
        key = id(obj)
        if key in ids:
            continue
        ids.add(key)
        seen.append(obj)
        if len(seen) >= MAX_CANDIDATES:
            break
    return tuple(seen)


def _flatten(objs: Sequence[object]) -> Tuple[object, ...]:
    """Expand containers into their elements (for iteration/subscripts)."""
    out: List[object] = []
    for obj in objs:
        if isinstance(obj, dict):
            out.extend(list(obj.values())[:MAX_CANDIDATES])
        elif isinstance(obj, (list, tuple, set, frozenset)):
            out.extend(list(obj)[:MAX_CANDIDATES])
        else:
            out.append(obj)
    return _dedup(out)


def _callable_module(fn: object) -> Optional[str]:
    """Defining module of a pure-python callable, else None."""
    if isinstance(fn, types.MethodType):
        if not isinstance(fn.__func__, types.FunctionType):
            return None
        return type(fn.__self__).__module__
    if isinstance(fn, types.FunctionType):
        return fn.__module__ or ""
    return None


def _should_enter(fn: object, extra_modules: Set[str]) -> bool:
    """Follow a call into *fn*?  Pure-python repro code outside the
    kernel (kernel semantics are the lint rules' own model), plus the
    modules the analysed process itself lives in (test fixtures)."""
    module = _callable_module(fn)
    if module is None:
        return False
    if module in extra_modules:
        return True
    return (
        module.startswith("repro.")
        and not module.startswith("repro.kernel")
        and not module.startswith("repro.lint")
    )


def _get_tree(fn) -> Optional[ast.FunctionDef]:
    func = fn.__func__ if isinstance(fn, types.MethodType) else fn
    try:
        source = textwrap.dedent(inspect.getsource(func))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError, IndentationError):
        return None
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return node  # type: ignore[return-value]
    return None


class _Env:
    """Name bindings of one analysed callable: ``(candidates, taint)``."""

    __slots__ = ("names",)

    def __init__(self) -> None:
        self.names: Dict[str, Tuple[Tuple[object, ...], FrozenSet[Signal]]] = {}

    def bind(
        self,
        name: str,
        objs: Tuple[object, ...],
        taint: FrozenSet[Signal],
    ) -> None:
        self.names[name] = (objs, taint)

    def lookup(
        self, name: str
    ) -> Optional[Tuple[Tuple[object, ...], FrozenSet[Signal]]]:
        return self.names.get(name)


class _Analyzer:
    """One top-level analysis run (shared memo + recursion bookkeeping)."""

    def __init__(self) -> None:
        #: ``key -> _Summary`` where key pins the instance, the code
        #: object and the resolved argument candidates.  The instance
        #: reference is kept in the value to keep ``id()`` keys stable.
        self._memo: Dict[object, Tuple[object, _Summary]] = {}
        self._in_progress: Set[object] = set()
        #: Modules descent is additionally allowed into — seeded with
        #: the entry process's own module so fixtures analyse fully.
        self.extra_modules: Set[str] = set()

    # -- entry ---------------------------------------------------------------

    def analyze(self, fn) -> StaticTrace:
        module = _callable_module(fn)
        if module is not None:
            self.extra_modules.add(module)
        summary = self._analyze_callable(fn, _EMPTY, 0, entry=True)
        trace = StaticTrace()
        if summary is not None:
            trace.reads = list(summary.reads)
            trace.drives = set(summary.drives)
        return trace

    # -- per-callable --------------------------------------------------------

    def _memo_key(self, fn, argsets) -> Optional[object]:
        func = fn.__func__ if isinstance(fn, types.MethodType) else fn
        code = getattr(func, "__code__", None)
        if code is None:
            return None
        bound = fn.__self__ if isinstance(fn, types.MethodType) else None
        args_key = tuple(
            tuple(sorted(id(obj) for obj in objs)) for objs, _taint in argsets
        )
        return (id(bound), code, args_key)

    def _analyze_callable(
        self, fn, argsets, depth: int, entry: bool = False
    ) -> Optional[_Summary]:
        if depth > MAX_DEPTH:
            return None
        if entry:
            if _callable_module(fn) is None:
                return None
        elif not _should_enter(fn, self.extra_modules):
            return None
        key = self._memo_key(fn, argsets)
        if key is not None:
            cached = self._memo.get(key)
            if cached is not None:
                return cached[1]
            if key in self._in_progress:  # recursion — cut the cycle
                return None
            self._in_progress.add(key)
        try:
            summary = self._run_function(fn, argsets, depth)
        finally:
            if key is not None:
                self._in_progress.discard(key)
        if key is not None and summary is not None:
            anchor = fn.__self__ if isinstance(fn, types.MethodType) else fn
            self._memo[key] = (anchor, summary)
        return summary

    def _run_function(self, fn, argsets, depth: int) -> Optional[_Summary]:
        tree = _get_tree(fn)
        if tree is None:
            return None
        func = fn.__func__ if isinstance(fn, types.MethodType) else fn
        env = _Env()
        # Positional parameters: ``self`` first for bound methods.
        params = [a.arg for a in tree.args.args]
        bound_objs: List[Tuple[Tuple[object, ...], FrozenSet[Signal]]] = []
        if isinstance(fn, types.MethodType):
            bound_objs.append(((fn.__self__,), _NO_TAINT))
        bound_objs.extend(argsets)
        for name, binding in zip(params, bound_objs):
            env.bind(name, binding[0], binding[1])
        # Free variables resolved from the live closure cells.
        closure = getattr(func, "__closure__", None) or ()
        for name, cell in zip(func.__code__.co_freevars, closure):
            try:
                env.bind(name, _dedup((cell.cell_contents,)), _NO_TAINT)
            except ValueError:  # empty cell
                pass
        walker = _FunctionWalk(self, env, func.__globals__, depth)
        walker.exec_block(tree.body, _NO_TAINT)
        return walker.summary


class _FunctionWalk:
    """AST walk of one function body against a live environment."""

    def __init__(
        self,
        analyzer: _Analyzer,
        env: _Env,
        globals_: Dict[str, object],
        depth: int,
    ) -> None:
        self.analyzer = analyzer
        self.env = env
        self.globals = globals_
        self.depth = depth
        self.summary = _Summary()

    # -- recording -----------------------------------------------------------

    def _read(self, sig: Signal, guards: FrozenSet[Signal]) -> None:
        self.summary.reads.append((sig, guards))
        self.summary.ret_taint.add(sig)

    def _drive(self, sig: Signal, kind: str) -> None:
        self.summary.drives.add((sig, kind))

    # -- statements ----------------------------------------------------------

    def exec_block(self, stmts: List[ast.stmt], guards: FrozenSet[Signal]) -> bool:
        """Walk a statement list; returns True when every path through
        the block terminates (return/raise/break/continue)."""
        ambient: Set[Signal] = set()
        for stmt in stmts:
            here = guards | ambient if ambient else guards
            if self._exec_stmt(stmt, here, ambient):
                return True
        return False

    def _exec_stmt(
        self,
        stmt: ast.stmt,
        guards: FrozenSet[Signal],
        ambient: Set[Signal],
    ) -> bool:
        if isinstance(stmt, ast.If):
            test_taint = self._eval_bool(stmt.test, guards)
            inner = guards | test_taint
            body_term = self.exec_block(stmt.body, inner)
            else_term = (
                self.exec_block(stmt.orelse, inner) if stmt.orelse else False
            )
            if body_term and not stmt.orelse:
                # ``if cond: return`` — the rest of the enclosing block
                # only runs when cond is false, i.e. guarded by its reads.
                ambient.update(test_taint)
            return body_term and bool(stmt.orelse) and else_term
        if isinstance(stmt, (ast.Return, ast.Raise)):
            value = getattr(stmt, "value", None) or getattr(stmt, "exc", None)
            if value is not None:
                self._eval(value, guards)
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, guards)
            return False
        if isinstance(stmt, ast.Assign):
            objs, taint = self._eval(stmt.value, guards)
            for target in stmt.targets:
                self._bind_target(target, objs, taint, guards)
            return False
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                objs, taint = self._eval(stmt.value, guards)
                self._bind_target(stmt.target, objs, taint, guards)
            return False
        if isinstance(stmt, ast.AugAssign):
            _objs, taint = self._eval(stmt.value, guards)
            if isinstance(stmt.target, ast.Name):
                prev = self.env.lookup(stmt.target.id)
                prev_taint = prev[1] if prev else _NO_TAINT
                self.env.bind(stmt.target.id, _EMPTY, taint | prev_taint)
            else:
                self._eval(stmt.target, guards)
            return False
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_objs, iter_taint = self._eval(stmt.iter, guards)
            self._bind_target(
                stmt.target, _flatten(iter_objs), iter_taint, guards
            )
            self.exec_block(stmt.body, guards)
            if stmt.orelse:
                self.exec_block(stmt.orelse, guards)
            return False
        if isinstance(stmt, ast.While):
            test_taint = self._eval_bool(stmt.test, guards)
            self.exec_block(stmt.body, guards | test_taint)
            if stmt.orelse:
                self.exec_block(stmt.orelse, guards)
            return False
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                objs, taint = self._eval(item.context_expr, guards)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, objs, taint, guards)
            return self.exec_block(stmt.body, guards)
        if isinstance(stmt, ast.Try):
            self.exec_block(stmt.body, guards)
            for handler in stmt.handlers:
                self.exec_block(handler.body, guards)
            if stmt.orelse:
                self.exec_block(stmt.orelse, guards)
            if stmt.finalbody:
                self.exec_block(stmt.finalbody, guards)
            return False
        if isinstance(stmt, ast.Assert):
            self._eval_bool(stmt.test, guards)
            return False
        # FunctionDef/ClassDef/Import/Pass/Delete/Global/Nonlocal: inert.
        return False

    def _bind_target(
        self,
        target: ast.expr,
        objs: Tuple[object, ...],
        taint: FrozenSet[Signal],
        guards: FrozenSet[Signal],
    ) -> None:
        if isinstance(target, ast.Name):
            self.env.bind(target.id, objs, taint)
        elif isinstance(target, (ast.Tuple, ast.List)):
            spread = _flatten(objs)
            for elt in target.elts:
                self._bind_target(elt, spread, taint, guards)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, objs, taint, guards)
        else:
            # Attribute/subscript targets: evaluate for reads, no binding.
            self._eval(target, guards)

    # -- expressions ---------------------------------------------------------

    def _eval(
        self, node: ast.expr, guards: FrozenSet[Signal]
    ) -> Tuple[Tuple[object, ...], FrozenSet[Signal]]:
        """Resolve *node* to candidate live objects + value taint."""
        if isinstance(node, ast.Name):
            binding = self.env.lookup(node.id)
            if binding is not None:
                return binding
            if node.id in self.globals:
                return _dedup((self.globals[node.id],)), _NO_TAINT
            return _EMPTY, _NO_TAINT
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, guards)
        if isinstance(node, ast.Subscript):
            base_objs, base_taint = self._eval(node.value, guards)
            _idx, idx_taint = self._eval(node.slice, guards)
            return _flatten(base_objs), base_taint | idx_taint
        if isinstance(node, ast.Call):
            return self._eval_call(node, guards)
        if isinstance(node, ast.BoolOp):
            taint: FrozenSet[Signal] = _NO_TAINT
            for value in node.values:
                taint = taint | self._eval_bool(value, guards)
            return _EMPTY, taint
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Not):
                return _EMPTY, self._eval_bool(node.operand, guards)
            return _EMPTY, self._eval(node.operand, guards)[1]
        if isinstance(node, ast.Compare):
            taint = self._eval(node.left, guards)[1]
            for comp in node.comparators:
                taint = taint | self._eval(comp, guards)[1]
            return _EMPTY, taint
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, guards)[1]
            right = self._eval(node.right, guards)[1]
            return _EMPTY, left | right
        if isinstance(node, ast.IfExp):
            test_taint = self._eval_bool(node.test, guards)
            body_objs, body_taint = self._eval(node.body, guards | test_taint)
            else_objs, else_taint = self._eval(
                node.orelse, guards | test_taint
            )
            return (
                _dedup(body_objs + else_objs),
                test_taint | body_taint | else_taint,
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            objs: List[object] = []
            taint = _NO_TAINT
            for elt in node.elts:
                elt_objs, elt_taint = self._eval(elt, guards)
                objs.extend(elt_objs)
                taint = taint | elt_taint
            return _dedup(objs), taint
        if isinstance(node, ast.Dict):
            objs = []
            taint = _NO_TAINT
            for key_node, value_node in zip(node.keys, node.values):
                if key_node is not None:
                    taint = taint | self._eval(key_node, guards)[1]
                value_objs, value_taint = self._eval(value_node, guards)
                objs.extend(value_objs)
                taint = taint | value_taint
            return _dedup(objs), taint
        if isinstance(node, ast.Starred):
            return self._eval(node.value, guards)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            return self._eval_comprehension(node, guards)
        if isinstance(node, ast.JoinedStr):
            taint = _NO_TAINT
            for value in node.values:
                taint = taint | self._eval(value, guards)[1]
            return _EMPTY, taint
        if isinstance(node, ast.FormattedValue):
            return _EMPTY, self._eval(node.value, guards)[1]
        if isinstance(node, ast.NamedExpr):
            objs, taint = self._eval(node.value, guards)
            self._bind_target(node.target, objs, taint, guards)
            return objs, taint
        # Constants, lambdas, yields, slices of unknown shape, ...
        return _EMPTY, _NO_TAINT

    def _eval_bool(
        self, node: ast.expr, guards: FrozenSet[Signal]
    ) -> FrozenSet[Signal]:
        """Evaluate *node* in boolean context: a bare Signal candidate is
        an implicit ``.value`` read.  Returns the test's signal taint."""
        objs, taint = self._eval(node, guards)
        extra: Set[Signal] = set()
        for obj in objs:
            if isinstance(obj, Signal):
                self._read(obj, guards)
                extra.add(obj)
        if extra:
            return taint | frozenset(extra)
        return taint

    def _eval_attribute(
        self, node: ast.Attribute, guards: FrozenSet[Signal]
    ) -> Tuple[Tuple[object, ...], FrozenSet[Signal]]:
        base_objs, taint = self._eval(node.value, guards)
        if node.attr == "value":
            sigs = [obj for obj in base_objs if isinstance(obj, Signal)]
            for sig in sigs:
                self._read(sig, guards)
            if sigs:
                return _EMPTY, taint | frozenset(sigs)
            # fall through: ``.value`` on non-signals resolves normally
        out: List[object] = []
        for obj in base_objs:
            if isinstance(obj, Signal) and node.attr == "value":
                continue
            try:
                out.append(getattr(obj, node.attr))
            except Exception:
                pass
        return _dedup(out), taint

    def _eval_call(
        self, node: ast.Call, guards: FrozenSet[Signal]
    ) -> Tuple[Tuple[object, ...], FrozenSet[Signal]]:
        taint: FrozenSet[Signal] = _NO_TAINT

        # ``sig.drive(...)`` family: record the drive, don't resolve.
        if isinstance(node.func, ast.Attribute) and node.func.attr in _DRIVE_KINDS:
            base_objs, base_taint = self._eval(node.func.value, guards)
            taint = base_taint
            for obj in base_objs:
                if isinstance(obj, Signal):
                    self._drive(obj, node.func.attr)
            for arg in node.args:
                taint = taint | self._eval(arg, guards)[1]
            for kw in node.keywords:
                taint = taint | self._eval(kw.value, guards)[1]
            return _EMPTY, taint

        # ``bool(sig)`` / ``int(sig)``: implicit value read.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id in ("bool", "int")
            and len(node.args) == 1
            and not node.keywords
        ):
            return _EMPTY, self._eval_bool(node.args[0], guards)

        func_objs, func_taint = self._eval(node.func, guards)
        taint = func_taint
        argsets: List[Tuple[Tuple[object, ...], FrozenSet[Signal]]] = []
        for arg in node.args:
            if isinstance(arg, ast.Starred):
                objs, arg_taint = self._eval(arg.value, guards)
                argsets.append((_flatten(objs), arg_taint))
            else:
                argsets.append(self._eval(arg, guards))
        for kw in node.keywords:
            taint = taint | self._eval(kw.value, guards)[1]
        for _objs, arg_taint in argsets:
            taint = taint | arg_taint

        entered = 0
        for fn in func_objs:
            if entered >= 4 or not _should_enter(
                fn, self.analyzer.extra_modules
            ):
                continue
            entered += 1
            summary = self.analyzer._analyze_callable(
                fn, tuple(argsets), self.depth + 1
            )
            if summary is None:
                continue
            for sig, callee_guards in summary.reads:
                self._read(sig, guards | callee_guards)
            self.summary.drives.update(summary.drives)
            if summary.ret_taint:
                taint = taint | frozenset(summary.ret_taint)
        return _EMPTY, taint

    def _eval_comprehension(
        self, node: ast.expr, guards: FrozenSet[Signal]
    ) -> Tuple[Tuple[object, ...], FrozenSet[Signal]]:
        taint: FrozenSet[Signal] = _NO_TAINT
        for gen in node.generators:  # type: ignore[attr-defined]
            iter_objs, iter_taint = self._eval(gen.iter, guards)
            taint = taint | iter_taint
            self._bind_target(gen.target, _flatten(iter_objs), iter_taint, guards)
            for cond in gen.ifs:
                taint = taint | self._eval_bool(cond, guards)
        if isinstance(node, ast.DictComp):
            taint = taint | self._eval(node.key, guards)[1]
            objs, value_taint = self._eval(node.value, guards)
            return objs, taint | value_taint
        objs, elt_taint = self._eval(node.elt, guards)  # type: ignore[attr-defined]
        return objs, taint | elt_taint


def analyze_process(fn) -> StaticTrace:
    """Statically analyse one registered process callable.

    Returns an empty trace when the source is unavailable (builtins,
    C-level callables, interactively defined functions).  Tracking is
    suppressed for the duration: resolving live attribute chains must
    not register as dynamic reads.
    """
    with suppressed_tracking():
        return _Analyzer().analyze(fn)
