"""Orchestration: which netlists and sources one lint run covers.

A full run (``make lint`` / ``python -m repro.lint``) elaborates every
registered scenario at RTL under the instrumented mode, briefly drives
each platform for dynamic evidence, elaborates a handful of fuzz-matrix
scenarios the same way, and finishes with the DET-* source rules over
``src/repro``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint.ast_rules import run_source_rules
from repro.lint.findings import LintFinding, LintReport
from repro.lint.netlist_rules import run_netlist_rules
from repro.lint.trace import lint_elaboration

#: Scenarios a full netlist run elaborates.  Between them they cover
#: every RTL component: the paper system (arbiter/DDRC/write buffer),
#: the multi-slave fabrics (BusMux/ResponseMux routing), the bursty
#: MPEG traffic shapes, and the trace-replay capture path.
NETLIST_SCENARIOS = (
    "paper",
    "multi-slave-soc",
    "mpeg-bursty",
    "scratchpad-offload",
    "trace-replay",
)

#: Workload size used for lint elaborations.  The rules are static;
#: transactions only exist so a short dynamic run has traffic to chew.
LINT_TRANSACTIONS = 4

#: Default dynamic-evidence run length (cycles).  Zero is legal — all
#: contract rules work from the static analysis alone.
LINT_CYCLES = 128


def lint_netlist(
    spec,
    context: str,
    cycles: int = LINT_CYCLES,
) -> List[LintFinding]:
    """Elaborate *spec* at RTL under lint mode and run the NET rules."""
    from repro.errors import CombinationalLoopError, SimulationError
    from repro.system.platform import build_platform

    crash: List[LintFinding] = []
    with lint_elaboration() as netlist:
        platform = build_platform(spec, "rtl")
        if cycles:
            try:
                platform.run(max_cycles=cycles)
            except CombinationalLoopError as exc:
                crash.append(
                    LintFinding(
                        rule="NET-LOOP",
                        location=context,
                        message=(
                            "settle loop diverged during the dynamic lint "
                            f"run: {exc}"
                        ),
                    )
                )
            except SimulationError as exc:
                # The workload outliving the cycle budget is the normal
                # outcome of a truncated evidence run; anything else is
                # a genuine crash worth surfacing.
                if "not satisfied" not in str(exc):
                    crash.append(
                        LintFinding(
                            rule="NET-LOOP",
                            location=context,
                            message=(
                                "dynamic lint run crashed after "
                                f"elaboration: {type(exc).__name__}: {exc}"
                            ),
                        )
                    )
    return crash + run_netlist_rules(netlist, context)


def lint_scenario(name: str, cycles: int = LINT_CYCLES) -> List[LintFinding]:
    """Lint one registered scenario by name."""
    from repro.system.scenarios import scenario

    spec = scenario(name, transactions=LINT_TRANSACTIONS)
    return lint_netlist(spec, name, cycles=cycles)


def lint_fuzz_matrix(
    seeds: Sequence[int], cycles: int = LINT_CYCLES
) -> List[LintFinding]:
    """Lint randomly generated fuzz scenarios (seeded, reproducible)."""
    from repro.fuzz.fuzzer import Fuzzer

    findings: List[LintFinding] = []
    fuzzer = Fuzzer()
    for seed in seeds:
        spec = fuzzer.scenario(seed)
        findings.extend(lint_netlist(spec, f"fuzz[{seed}]", cycles=cycles))
    return findings


def source_root() -> Path:
    """The ``src`` directory this installation runs from."""
    # .../src/repro/lint/runner.py -> .../src
    return Path(__file__).resolve().parents[2]


def lint_sources(root: Optional[Path] = None) -> List[LintFinding]:
    """Run the DET rules over ``src/repro``."""
    base = root if root is not None else source_root()
    return run_source_rules(base / "repro", root=base)


def run_lint(
    scenarios: Optional[Iterable[str]] = None,
    fuzz_seeds: Sequence[int] = (0, 1),
    include_sources: bool = True,
    cycles: int = LINT_CYCLES,
) -> LintReport:
    """One full lint run; the CLI and tier-1 both call this."""
    report = LintReport()
    names = NETLIST_SCENARIOS if scenarios is None else tuple(scenarios)
    for name in names:
        report.extend(lint_scenario(name, cycles=cycles))
    if fuzz_seeds:
        report.extend(lint_fuzz_matrix(fuzz_seeds, cycles=cycles))
    if include_sources:
        report.extend(lint_sources())
    return report
