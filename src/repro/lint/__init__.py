"""repro.lint: static contract analysis for the simulator.

Two layers (see :mod:`repro.lint.findings` for the rule registry):

* **netlist rules** (``NET-*``) prove the sensitivity/quiescence
  contracts of :mod:`repro.kernel.cycle` on an elaborated RTL system —
  instead of trusting each component to have declared every read; and
* **source rules** (``DET-*``) keep the repo deterministic and
  content-addressable: no wall clocks or global RNG in sim scope, no
  unpicklable sweep collectors, registered content-key schemas.

Entry points: ``python -m repro.lint`` (or ``make lint``), and
:func:`run_lint` for programmatic use (tier-1's ``tests/test_lint.py``).
"""

from repro.lint.ast_rules import run_source_rules
from repro.lint.findings import RULES, LintFinding, LintReport
from repro.lint.netlist_rules import run_netlist_rules
from repro.lint.runner import (
    LINT_CYCLES,
    NETLIST_SCENARIOS,
    lint_fuzz_matrix,
    lint_netlist,
    lint_scenario,
    lint_sources,
    run_lint,
)
from repro.lint.trace import Netlist, ProcInfo, lint_elaboration

__all__ = [
    "RULES",
    "LintFinding",
    "LintReport",
    "Netlist",
    "ProcInfo",
    "LINT_CYCLES",
    "NETLIST_SCENARIOS",
    "lint_elaboration",
    "lint_fuzz_matrix",
    "lint_netlist",
    "lint_scenario",
    "lint_sources",
    "run_lint",
    "run_netlist_rules",
    "run_source_rules",
]
