"""CLI: ``python -m repro.lint`` — see ``--help``.

Exit code 0 when every finding is waived or absent, 1 otherwise, so
``make lint`` and CI gate directly on the process status.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.lint.findings import RULES
from repro.lint.runner import LINT_CYCLES, NETLIST_SCENARIOS, run_lint


def _parse_args(argv: Optional[Sequence[str]]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Static contract analysis: netlist sensitivity/wake rules "
            "over elaborated RTL scenarios plus determinism rules over "
            "the source tree."
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "scenario to elaborate and lint (repeatable); 'all' for the "
            f"registered set ({', '.join(NETLIST_SCENARIOS)}), 'none' to "
            "skip netlist rules entirely"
        ),
    )
    parser.add_argument(
        "--fuzz-seeds",
        type=int,
        default=2,
        metavar="N",
        help="lint N seeded fuzz-matrix scenarios as well (default: 2)",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=LINT_CYCLES,
        metavar="N",
        help=(
            "dynamic-evidence cycles per scenario (0 = purely static; "
            f"default: {LINT_CYCLES})"
        ),
    )
    parser.add_argument(
        "--no-src",
        action="store_true",
        help="skip the DET-* source rules",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule registry and exit",
    )
    return parser.parse_args(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = _parse_args(argv)

    if args.list_rules:
        for rule, (layer, summary) in RULES.items():
            print(f"{rule:12s} [{layer}] {summary}")
        return 0

    scenarios: Optional[List[str]]
    if args.scenario is None or "all" in args.scenario:
        scenarios = None
    elif "none" in args.scenario:
        scenarios = []
    else:
        scenarios = list(args.scenario)

    report = run_lint(
        scenarios=scenarios,
        fuzz_seeds=tuple(range(args.fuzz_seeds)),
        include_sources=not args.no_src,
        cycles=args.cycles,
    )

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    sys.exit(main())
