"""Canonical JSON hashing: one stable content address per value.

The serving layer (:mod:`repro.serve`) keys its result cache on a hash
of *what was simulated* — spec, workload, seed, engine, cycle ceiling —
and the whole scheme only works if that hash is insensitive to every
representation detail that does not change the simulation:

* **dict ordering** — ``to_dict()`` output hashed directly must equal
  the same mapping with its keys inserted in any other order, so
  :func:`canonical_json` sorts keys recursively;
* **JSON round-trips** — tuples lower to lists on the wire, so both
  serialise identically here; and
* **process boundaries** — the digest is computed from the canonical
  *text*, never from ``hash()`` (which is salted per interpreter).

Only JSON-expressible values are accepted: hashing an object whose
identity silently fell back to ``repr`` would make equal-looking keys
diverge across processes, so anything else raises :class:`ConfigError`.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Sequence

from repro.errors import ConfigError

#: Digest length (hex chars) of :func:`stable_hash`.  128 bits of a
#: sha256 is far beyond collision concerns for cache-sized key spaces
#: while keeping keys readable in logs and JSON-lines stores.
KEY_HEX_CHARS = 32


def canonical_value(value: object) -> object:
    """*value* reduced to plain JSON types with deterministic ordering.

    Mappings become dicts sorted by key (keys must be strings — JSON
    would silently coerce anything else and ``sort_keys`` would compare
    mixed types), sequences become lists, and scalars pass through.
    """
    if isinstance(value, Mapping):
        for key in value:
            if not isinstance(key, str):
                raise ConfigError(
                    f"canonical hashing needs string keys, got {key!r}"
                )
        return {
            key: canonical_value(item)
            for key, item in sorted(value.items())
        }
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        return [canonical_value(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(
        f"value {value!r} of type {type(value).__name__} is not "
        f"JSON-expressible; canonical hashing would not be stable"
    )


def canonical_json(value: object) -> str:
    """The one canonical text form of *value* (sorted keys, no spaces)."""
    return json.dumps(
        canonical_value(value),
        sort_keys=True,
        separators=(",", ":"),
        ensure_ascii=True,
    )


def stable_hash(value: object, schema: str) -> str:
    """Content address of *value*: hex sha256 over its canonical JSON.

    *schema* names the payload layout (e.g. ``"ahbplus-point-v1"``) and
    is mixed into the digest, so two different key kinds can never
    collide even when their payloads happen to serialise identically —
    and bumping a schema version invalidates every old key at once
    (the cache's invalidation-by-hash story).
    """
    text = f"{schema}\n{canonical_json(value)}"
    digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
    return digest[:KEY_HEX_CHARS]


#: Every schema tag ever passed to :func:`register_content_schema`,
#: mapped to the dotted name that owns it.  One tag, one owner: two
#: modules claiming the same tag would silently share a key namespace
#: and cache hits could cross payload kinds.
_SCHEMA_REGISTRY: Dict[str, str] = {}


def register_content_schema(tag: str, owner: str) -> str:
    """Claim *tag* (an ``ahbplus-*`` schema name) for *owner*.

    Returns the tag so registration doubles as the constant definition::

        POINT_KEY_SCHEMA = register_content_schema(
            "ahbplus-point-v1", "repro.exec.records.point_key"
        )

    Registering the same tag twice from the same owner is idempotent
    (module reloads); a second owner raises :class:`ConfigError` at
    import time.  The lint subsystem (rule ``DET-SCHEMA``) additionally
    checks statically that every ``ahbplus-*`` literal in ``src/`` goes
    through this function.
    """
    if not tag.startswith("ahbplus-"):
        raise ConfigError(
            f"content schema tag {tag!r} must carry the ahbplus- prefix"
        )
    existing = _SCHEMA_REGISTRY.get(tag)
    if existing is not None and existing != owner:
        raise ConfigError(
            f"content schema tag {tag!r} already registered by "
            f"{existing}; {owner} cannot reuse it"
        )
    _SCHEMA_REGISTRY[tag] = owner
    return tag


def content_schemas() -> Dict[str, str]:
    """A copy of the tag -> owner registry (for reports and lint)."""
    return dict(_SCHEMA_REGISTRY)
