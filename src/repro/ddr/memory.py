"""Backing store shared by every memory model.

A sparse store: only written locations consume memory, so gigabyte
address spaces cost nothing until touched.  Both the RTL and TLM DDR
controllers write through to a :class:`MemoryModel`, and the accuracy
harness compares final images with :meth:`equal_contents` to prove
functional equivalence of the two abstraction levels.

The hot path is word-granular: a 32-bit bus moves aligned 4-byte beats,
so those hit a word-keyed dict (one dict operation per beat instead of
four).  Unaligned, sub-word and wide accesses fall back to a
byte-granular dict; the two stores never overlap — a byte write spills
any covering word into bytes first, a word write evicts any covered
bytes — so reads merge them without ambiguity and observable semantics
(little-endian values, zero-for-unwritten, touched-byte accounting)
match the original byte-only store exactly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.errors import MemoryError_

#: Fast-path access width in bytes (one 32-bit bus beat).
_WORD = 4


class MemoryModel:
    """Sparse little-endian store with a word-granular fast path."""

    def __init__(self, name: str = "mem") -> None:
        self.name = name
        #: Aligned 4-byte values keyed by ``addr // 4``.
        self._words: Dict[int, int] = {}
        #: Byte fallback for unaligned/sub-word/wide residue.
        self._bytes: Dict[int, int] = {}
        self.read_ops = 0
        self.write_ops = 0

    def write(self, addr: int, size_bytes: int, value: int) -> None:
        """Store *value* (little-endian) at *addr*."""
        if addr < 0:
            raise MemoryError_(f"{self.name}: negative address {addr:#x}")
        if value < 0:
            raise MemoryError_(f"{self.name}: negative data {value}")
        if value >> (8 * size_bytes):
            raise MemoryError_(
                f"{self.name}: value {value:#x} wider than {size_bytes} bytes"
            )
        if size_bytes == _WORD and addr & 3 == 0:
            self._words[addr >> 2] = value
            if self._bytes:  # evict any byte residue this word covers
                pop = self._bytes.pop
                for i in range(_WORD):
                    pop(addr + i, None)
        else:
            self._spill_words(addr, size_bytes)
            store = self._bytes
            for i in range(size_bytes):
                store[addr + i] = (value >> (8 * i)) & 0xFF
        self.write_ops += 1

    def read(self, addr: int, size_bytes: int) -> int:
        """Load a little-endian value; unwritten bytes read as zero."""
        if addr < 0:
            raise MemoryError_(f"{self.name}: negative address {addr:#x}")
        self.read_ops += 1
        words = self._words
        store = self._bytes
        if (addr + size_bytes - 1) >> 2 == addr >> 2:
            # Access contained in one word: the spill/evict discipline
            # keeps the stores disjoint per word, so exactly one of the
            # two holds this range — one word probe, byte fallback.
            word = words.get(addr >> 2)
            if word is not None:
                return (word >> (8 * (addr & 3))) & ((1 << (8 * size_bytes)) - 1)
            if not store:
                return 0
            value = 0
            for i in range(size_bytes):
                value |= store.get(addr + i, 0) << (8 * i)
            return value
        # Unaligned or wide access spanning words: merge both stores.
        value = 0
        for i in range(size_bytes):
            byte_addr = addr + i
            word = words.get(byte_addr >> 2)
            if word is not None:
                value |= ((word >> (8 * (byte_addr & 3))) & 0xFF) << (8 * i)
            else:
                value |= store.get(byte_addr, 0) << (8 * i)
        return value

    def _spill_words(self, addr: int, size_bytes: int) -> None:
        """Explode words overlapping ``[addr, addr+size)`` into bytes."""
        words = self._words
        if not words:
            return
        store = self._bytes
        for word_index in range(addr >> 2, ((addr + size_bytes - 1) >> 2) + 1):
            word = words.pop(word_index, None)
            if word is not None:
                base = word_index << 2
                for i in range(_WORD):
                    store[base + i] = (word >> (8 * i)) & 0xFF

    # -- burst-segment fast paths ----------------------------------------------

    def read_beats(self, addrs: Sequence[int], size_bytes: int) -> List[int]:
        """Load one value per beat address — a burst segment in one call.

        Semantics (values, zero-for-unwritten, ``read_ops`` accounting)
        are identical to calling :meth:`read` per beat; the aligned-word
        burst with no byte-store residue runs as a single dict-probe
        loop, which is how the RTL DDRC prefetches a read segment.
        """
        if size_bytes == _WORD and not self._bytes:
            words = self._words
            values: List[int] = []
            append = values.append
            for addr in addrs:
                if addr < 0 or addr & 3:
                    break
                append(words.get(addr >> 2, 0))
            else:
                self.read_ops += len(values)
                return values
        return [self.read(addr, size_bytes) for addr in addrs]

    def write_beats(
        self, addrs: Sequence[int], size_bytes: int, values: Sequence[int]
    ) -> None:
        """Store one value per beat address — a burst segment in one call.

        Mirrors per-beat :meth:`write` exactly (validation, byte-residue
        eviction, ``write_ops``); aligned-word bursts against a clean
        byte store take the single-loop fast path the RTL DDRC uses to
        flush a captured write segment.
        """
        if size_bytes == _WORD and not self._bytes:
            words = self._words
            done = 0
            for addr, value in zip(addrs, values):
                if addr < 0 or addr & 3 or value < 0 or value >> 32:
                    break
                words[addr >> 2] = value
                done += 1
            self.write_ops += done
            if done == len(addrs):
                return
            addrs = addrs[done:]
            values = values[done:]
        for addr, value in zip(addrs, values):
            self.write(addr, size_bytes, value)

    # -- whole-image views ------------------------------------------------------

    def _byte_image(self) -> Dict[int, int]:
        """Every stored byte as one flat ``{addr: byte}`` mapping."""
        image = dict(self._bytes)
        for word_index, word in self._words.items():
            base = word_index << 2
            for i in range(_WORD):
                image[base + i] = (word >> (8 * i)) & 0xFF
        return image

    def touched_bytes(self) -> int:
        """Number of distinct bytes ever written."""
        return len(self._bytes) + _WORD * len(self._words)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(address, byte)`` pairs in address order."""
        return iter(sorted(self._byte_image().items()))

    def equal_contents(self, other: "MemoryModel") -> bool:
        """True when both stores hold identical non-zero images.

        Zero bytes equal unwritten bytes, matching read semantics — and
        making the comparison independent of how each store shards its
        content between words and bytes.
        """
        mine, theirs = self._byte_image(), other._byte_image()
        keys = set(mine) | set(theirs)
        return all(mine.get(k, 0) == theirs.get(k, 0) for k in keys)

    def first_difference(self, other: "MemoryModel") -> Tuple[int, int, int]:
        """First (addr, mine, theirs) mismatch; raises if images match."""
        mine, theirs = self._byte_image(), other._byte_image()
        for k in sorted(set(mine) | set(theirs)):
            a, b = mine.get(k, 0), theirs.get(k, 0)
            if a != b:
                return k, a, b
        raise MemoryError_("memory images are identical")
