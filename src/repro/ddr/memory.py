"""Backing store shared by every memory model.

A sparse byte-granular store: only written locations consume memory, so
gigabyte address spaces cost nothing until touched.  Both the RTL and
TLM DDR controllers write through to a :class:`MemoryModel`, and the
accuracy harness compares final images with :meth:`equal_contents` to
prove functional equivalence of the two abstraction levels.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

from repro.errors import MemoryError_


class MemoryModel:
    """Sparse little-endian byte store."""

    def __init__(self, name: str = "mem") -> None:
        self.name = name
        self._bytes: Dict[int, int] = {}
        self.read_ops = 0
        self.write_ops = 0

    def write(self, addr: int, size_bytes: int, value: int) -> None:
        """Store *value* (little-endian) at *addr*."""
        if addr < 0:
            raise MemoryError_(f"{self.name}: negative address {addr:#x}")
        if value < 0:
            raise MemoryError_(f"{self.name}: negative data {value}")
        if value >> (8 * size_bytes):
            raise MemoryError_(
                f"{self.name}: value {value:#x} wider than {size_bytes} bytes"
            )
        store = self._bytes
        for i in range(size_bytes):
            store[addr + i] = (value >> (8 * i)) & 0xFF
        self.write_ops += 1

    def read(self, addr: int, size_bytes: int) -> int:
        """Load a little-endian value; unwritten bytes read as zero."""
        if addr < 0:
            raise MemoryError_(f"{self.name}: negative address {addr:#x}")
        store = self._bytes
        value = 0
        for i in range(size_bytes):
            value |= store.get(addr + i, 0) << (8 * i)
        self.read_ops += 1
        return value

    def touched_bytes(self) -> int:
        """Number of distinct bytes ever written."""
        return len(self._bytes)

    def items(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(address, byte)`` pairs in address order."""
        return iter(sorted(self._bytes.items()))

    def equal_contents(self, other: "MemoryModel") -> bool:
        """True when both stores hold identical non-zero images.

        Zero bytes equal unwritten bytes, matching read semantics.
        """
        keys = set(self._bytes) | set(other._bytes)
        return all(
            self._bytes.get(k, 0) == other._bytes.get(k, 0) for k in keys
        )

    def first_difference(self, other: "MemoryModel") -> Tuple[int, int, int]:
        """First (addr, mine, theirs) mismatch; raises if images match."""
        keys = sorted(set(self._bytes) | set(other._bytes))
        for k in keys:
            mine = self._bytes.get(k, 0)
            theirs = other._bytes.get(k, 0)
            if mine != theirs:
                return k, mine, theirs
        raise MemoryError_("memory images are identical")
