"""DDR command set and address decoding.

The DDR controller (both abstraction levels) thinks in terms of the
JEDEC command set; the scheduler's priority order between column (READ/
WRITE), row (ACTIVATE) and PRECHARGE commands is the paper's §3.3
"column, row, and pre-charge accesses have different priorities".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.ddr.timing import DdrTiming
from repro.errors import MemoryError_


class DdrCommand(enum.Enum):
    """JEDEC-style DDR commands the controller issues."""

    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    PRECHARGE = "PRE"
    REFRESH = "REF"
    NOP = "NOP"


#: Scheduler priority: lower number = served first.  Column accesses
#: (data-producing) outrank row opens, which outrank precharges — the
#: ordering the paper describes for maximising data-bus occupancy.
COMMAND_PRIORITY = {
    DdrCommand.READ: 0,
    DdrCommand.WRITE: 0,
    DdrCommand.ACTIVATE: 1,
    DdrCommand.PRECHARGE: 2,
    DdrCommand.REFRESH: 3,
    DdrCommand.NOP: 4,
}


@dataclass(frozen=True, slots=True)
class BankAddress:
    """A device address decomposed into bank / row / column."""

    bank: int
    row: int
    col: int


def decode_address(
    addr: int, timing: DdrTiming, bus_bytes: int = 4
) -> BankAddress:
    """Map a byte address to (bank, row, column).

    Layout is row : bank : column (column in the low bits), the common
    choice that keeps sequential bursts inside one row while letting
    bank-striped traffic interleave.  The masks and shifts come from the
    tables :class:`~repro.ddr.timing.DdrTiming` precomputes at
    construction, so a decode is four integer operations.
    """
    if addr < 0:
        raise MemoryError_(f"negative address {addr:#x}")
    word = addr // bus_bytes
    row = word >> timing._row_shift
    if row >= timing._row_limit:
        raise MemoryError_(
            f"address {addr:#x} beyond device capacity "
            f"({timing.total_words * bus_bytes} bytes)"
        )
    return BankAddress(
        bank=(word >> timing._bank_shift) & timing._bank_mask,
        row=row,
        col=word & timing._col_mask,
    )


def encode_address(
    bank_addr: BankAddress, timing: DdrTiming, bus_bytes: int = 4
) -> int:
    """Inverse of :func:`decode_address` (tests and trace tooling)."""
    word = (
        (bank_addr.row << (timing.col_bits + timing.bank_bits))
        | (bank_addr.bank << timing.col_bits)
        | bank_addr.col
    )
    return word * bus_bytes


def same_row(a: BankAddress, b: BankAddress) -> bool:
    """True when two accesses hit the same open row of the same bank."""
    return a.bank == b.bank and a.row == b.row


def bank_span(addr: int, nbytes: int, timing: DdrTiming, bus_bytes: int = 4) -> Tuple[int, ...]:
    """Banks touched by an access of *nbytes* starting at *addr*."""
    banks = []
    for offset in range(0, max(nbytes, 1), bus_bytes):
        bank = decode_address(addr + offset, timing, bus_bytes).bank
        if bank not in banks:
            banks.append(bank)
    return tuple(banks)
