"""Analytic bank timing for the transaction-level DDRC.

Instead of ticking a state machine every cycle, the TLM computes, per
transaction, the earliest cycle each DDR command could issue and jumps
straight to the answer.  Per bank it tracks when the open row was
established (CAS-ready), when precharge becomes legal (tRAS / tWR) and
which row is open; globally it tracks the shared data bus and the tRRD
activate-to-activate window.

This is the "highly abstracted data path" of paper §3.3: the FSM
*constraints* are honoured exactly, but their evaluation is O(1) per
transaction instead of O(cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ddr.commands import BankAddress
from repro.ddr.timing import DdrTiming


@dataclass
class BankLane:
    """Analytic state of one bank."""

    open_row: Optional[int] = None
    #: Earliest cycle a CAS to the open row may issue.
    cas_ready_at: int = 0
    #: Earliest cycle a PRECHARGE may issue (tRAS from last ACT).
    pre_ready_at: int = 0
    #: Earliest cycle the bank is IDLE again after an in-flight precharge.
    idle_at: int = 0
    #: Write-recovery horizon: PRECHARGE must wait for this after writes.
    wr_recover_at: int = 0
    activations: int = 0
    row_hits: int = 0
    row_conflicts: int = 0


@dataclass
class AccessPlan:
    """Timing the timeline computed for one access."""

    cas_at: int
    first_data: int
    finish: int
    row_hit: bool


class BankTimeline:
    """O(1)-per-access DDR bank timing calculator."""

    def __init__(self, timing: DdrTiming) -> None:
        self.timing = timing
        self.banks: List[BankLane] = [BankLane() for _ in range(timing.num_banks)]
        #: Cycle through which the DDR data bus is occupied.
        self.data_busy_until: int = -1
        #: Cycle of the most recent ACTIVATE anywhere (tRRD window).
        self.last_activate_at: int = -(10**9)

    # -- row management -----------------------------------------------------------

    def _open_row(self, lane: BankLane, row: int, not_before: int) -> int:
        """Schedule PRE (if needed) + ACT so *row* is open; returns CAS-ready cycle."""
        t = self.timing
        if lane.open_row is not None:
            pre_at = max(not_before, lane.pre_ready_at, lane.wr_recover_at)
            act_earliest = pre_at + t.t_rp
            lane.row_conflicts += 1
        else:
            act_earliest = max(not_before, lane.idle_at)
        act_at = max(act_earliest, self.last_activate_at + t.t_rrd)
        self.last_activate_at = act_at
        lane.open_row = row
        lane.cas_ready_at = act_at + t.t_rcd
        lane.pre_ready_at = act_at + t.t_ras
        lane.activations += 1
        return lane.cas_ready_at

    # -- public API ------------------------------------------------------------------

    def prepare(self, baddr: BankAddress, cycle: int) -> bool:
        """Pre-open a row ahead of time (the BI bank-interleaving path).

        Called when the arbiter forwards next-transaction info; the
        row command sequence is started at *cycle* so it overlaps the
        current data transfer.  Returns ``True`` when preparation did
        something (row was not already open).
        """
        lane = self.banks[baddr.bank]
        if lane.open_row == baddr.row:
            return False
        self._open_row(lane, baddr.row, cycle)
        return True

    def schedule_access(
        self, baddr: BankAddress, is_write: bool, beats: int, cycle: int
    ) -> AccessPlan:
        """Commit one burst access; returns its data timing.

        *cycle* is the first cycle the command phase may begin (the AHB
        address phase has completed by then).
        """
        t = self.timing
        lane = self.banks[baddr.bank]
        row_hit = lane.open_row == baddr.row
        if row_hit:
            cas_at = max(cycle, lane.cas_ready_at)
            lane.row_hits += 1
        else:
            cas_at = max(cycle, self._open_row(lane, baddr.row, cycle))
        latency = t.write_latency if is_write else t.cas_latency
        first_data = max(cas_at + latency, self.data_busy_until + 1)
        finish = first_data + beats - 1
        self.data_busy_until = finish
        # The burst occupies the column path; a following CAS to the same
        # row cannot start until the burst's data window has drained.
        lane.cas_ready_at = max(lane.cas_ready_at, first_data)
        if is_write:
            lane.wr_recover_at = finish + t.t_wr
        # A precharge may not pull the row out from under its own burst:
        # the earliest PRE is the cycle after the last data beat.
        lane.pre_ready_at = max(lane.pre_ready_at, finish + 1)
        return AccessPlan(
            cas_at=cas_at, first_data=first_data, finish=finish, row_hit=row_hit
        )

    def close_all(self, cycle: int) -> int:
        """Precharge-all then refresh; returns the cycle banks are usable.

        Used by the controller's refresh handling: all banks close
        (honouring tRAS/tWR) and become idle after tRFC.
        """
        t = self.timing
        pre_at = cycle
        for lane in self.banks:
            if lane.open_row is not None:
                pre_at = max(pre_at, lane.pre_ready_at, lane.wr_recover_at)
        refresh_start = pre_at + t.t_rp
        ready = refresh_start + t.t_rfc
        for lane in self.banks:
            lane.open_row = None
            lane.idle_at = ready
            lane.cas_ready_at = ready
            lane.pre_ready_at = ready
            lane.wr_recover_at = 0
        return ready

    # -- introspection (feeds the BI and the bank arbitration filter) -------------

    def idle_banks(self, cycle: int) -> int:
        """Bitmap of banks with no open row and no transition in flight."""
        bitmap = 0
        for i, lane in enumerate(self.banks):
            if lane.open_row is None and lane.idle_at <= cycle:
                bitmap |= 1 << i
        return bitmap

    def access_score(self, baddr: BankAddress, cycle: int) -> int:
        """Cost class of an access: 0 row hit, 1 bank idle, 2 row conflict."""
        lane = self.banks[baddr.bank]
        if lane.open_row == baddr.row:
            return 0
        if lane.open_row is None:
            return 1
        return 2

    def stats(self) -> Tuple[int, int, int]:
        """(activations, row hits, row conflicts) across all banks."""
        return (
            sum(lane.activations for lane in self.banks),
            sum(lane.row_hits for lane in self.banks),
            sum(lane.row_conflicts for lane in self.banks),
        )
