"""DDR SDRAM substrate: timing, banks, scheduling, memory, controller.

The cycle-accurate pieces (:class:`BankFsm`, :class:`CommandScheduler`)
serve the RTL reference model; the analytic pieces
(:class:`BankTimeline`, :class:`DdrControllerTlm`) serve the
transaction-level model.  Both enforce the same JEDEC-style constraints
from one shared :class:`DdrTiming` description.
"""

from repro.ddr.bank import BankFsm, BankState
from repro.ddr.commands import (
    COMMAND_PRIORITY,
    BankAddress,
    DdrCommand,
    bank_span,
    decode_address,
    encode_address,
    same_row,
)
from repro.ddr.controller import DdrControllerTlm
from repro.ddr.memory import MemoryModel
from repro.ddr.scheduler import CommandScheduler, PendingAccess, ScheduledCommand
from repro.ddr.timeline import AccessPlan, BankLane, BankTimeline
from repro.ddr.timing import DDR_266, DDR_333, DDR_TEST, DdrTiming, PRESETS, preset

__all__ = [
    "AccessPlan",
    "BankAddress",
    "BankFsm",
    "BankLane",
    "BankState",
    "BankTimeline",
    "COMMAND_PRIORITY",
    "CommandScheduler",
    "DDR_266",
    "DDR_333",
    "DDR_TEST",
    "DdrCommand",
    "DdrControllerTlm",
    "DdrTiming",
    "MemoryModel",
    "PRESETS",
    "PendingAccess",
    "ScheduledCommand",
    "bank_span",
    "decode_address",
    "encode_address",
    "preset",
    "same_row",
]
