"""Transaction-level DDR controller (the DDRC of the paper).

Implements :class:`~repro.ahb.slave.TlmSlave` on top of the analytic
:class:`~repro.ddr.timeline.BankTimeline`:

* per-bank FSM constraints (tRCD/tRP/tRAS/tWR/tRRD) are honoured exactly,
* the data path is "highly abstracted" (paper §3.3) — beats move as
  integers, one beat per cycle on the shared data bus,
* the Bus Interface hooks let the AHB+ arbiter forward next-transaction
  info so the controller can open the next bank early (bank
  interleaving, paper §2), and
* refresh is *amortised*: due refreshes execute at transaction
  boundaries rather than mid-burst.  This is one of the deliberate TLM
  abstractions that produces the small cycle-count error of Table 1.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ahb.burst import transaction_addresses
from repro.ahb.slave import TlmSlave
from repro.ahb.transaction import Transaction
from repro.ddr.commands import BankAddress, decode_address
from repro.ddr.memory import MemoryModel
from repro.ddr.timeline import BankTimeline
from repro.ddr.timing import DDR_266, DdrTiming
from repro.errors import ConfigError


class DdrControllerTlm(TlmSlave):
    """Method-based TLM of the AHB+ DDR controller."""

    def __init__(
        self,
        name: str = "ddrc",
        timing: DdrTiming = DDR_266,
        bus_bytes: int = 4,
        memory: Optional[MemoryModel] = None,
        refresh_enabled: bool = True,
    ) -> None:
        if bus_bytes not in (1, 2, 4, 8, 16):
            raise ConfigError(f"unsupported bus width {bus_bytes} bytes")
        self.name = name
        self.timing = timing
        self.bus_bytes = bus_bytes
        self.memory = memory if memory is not None else MemoryModel(f"{name}.mem")
        self.timeline = BankTimeline(timing)
        self.refresh_enabled = refresh_enabled
        self._next_refresh_at = timing.t_refi
        self._refresh_ready_at = 0
        # Statistics
        self.reads = 0
        self.writes = 0
        self.refreshes = 0
        self.data_beats = 0
        self.prepared_banks = 0

    # -- refresh --------------------------------------------------------------

    def _refresh_catchup(self, cycle: int) -> None:
        """Execute refreshes that came due at or before *cycle*."""
        while self.refresh_enabled and self._next_refresh_at <= cycle:
            ready = self.timeline.close_all(self._next_refresh_at)
            self._refresh_ready_at = max(self._refresh_ready_at, ready)
            self._next_refresh_at += self.timing.t_refi
            self.refreshes += 1

    def idle_until(self, cycle: int) -> None:
        """Age refresh state while the bus is idle."""
        self._refresh_catchup(cycle)

    # -- Bus Interface hooks (paper sections 2 / 3.4) ---------------------------

    def notify_next(self, txn: Transaction, cycle: int) -> None:
        """Receive next-transaction info; open its first row early."""
        baddr = decode_address(txn.addr, self.timing, self.bus_bytes)
        if self.timeline.prepare(baddr, cycle):
            self.prepared_banks += 1

    def idle_banks(self, cycle: int) -> int:
        return self.timeline.idle_banks(cycle)

    def access_score(self, addr: int, cycle: int) -> int:
        """0 = row hit, 1 = bank idle, 2 = row conflict (for the bank filter)."""
        baddr = decode_address(addr, self.timing, self.bus_bytes)
        return self.timeline.access_score(baddr, cycle)

    def access_permitted_at(self, txn: Transaction, cycle: int) -> int:
        """Address phases may not begin while a refresh burst is draining."""
        self._refresh_catchup(cycle)
        return max(cycle, self._refresh_ready_at)

    # -- data service -----------------------------------------------------------

    def _segments(self, txn: Transaction) -> List[Tuple[BankAddress, List[int]]]:
        """Split the burst's beats into runs sharing one (bank, row).

        Inlines the address decode using the timing's precomputed
        masks/shifts: this runs once per beat and dominated the TLM
        serve path before it was flattened to integer arithmetic.
        """
        timing = self.timing
        bus_bytes = self.bus_bytes
        row_shift = timing._row_shift
        row_limit = timing._row_limit
        bank_shift = timing._bank_shift
        bank_mask = timing._bank_mask
        col_mask = timing._col_mask
        segments: List[Tuple[BankAddress, List[int]]] = []
        cur_bank = cur_row = -1
        cur_addrs: List[int] = []
        for addr in transaction_addresses(txn):
            word = addr // bus_bytes
            row = word >> row_shift
            if row >= row_limit or addr < 0:
                decode_address(addr, timing, bus_bytes)  # raises the canonical error
            bank = (word >> bank_shift) & bank_mask
            if bank == cur_bank and row == cur_row:
                cur_addrs.append(addr)
            else:
                cur_bank, cur_row = bank, row
                cur_addrs = [addr]
                segments.append(
                    (BankAddress(bank=bank, row=row, col=word & col_mask), cur_addrs)
                )
        return segments

    def serve(self, txn: Transaction, start_cycle: int) -> int:
        """Serve one burst; returns the cycle of its last data beat."""
        self._refresh_catchup(start_cycle)
        txn.started_at = start_cycle
        command_from = start_cycle + 1  # the AHB address phase
        finish = command_from
        write_data = txn.data if txn.is_write else None
        if txn.is_write and not write_data:
            write_data = [0] * txn.beats
        read_data: List[int] = []
        beat_index = 0
        for baddr, addresses in self._segments(txn):
            plan = self.timeline.schedule_access(
                baddr, txn.is_write, len(addresses), command_from
            )
            for addr in addresses:
                if txn.is_write:
                    assert write_data is not None
                    self.memory.write(addr, txn.size_bytes, write_data[beat_index])
                else:
                    read_data.append(self.memory.read(addr, txn.size_bytes))
                beat_index += 1
            finish = plan.finish
            command_from = plan.cas_at + 1
            self.data_beats += len(addresses)
        if txn.is_write:
            self.writes += 1
        else:
            txn.data = read_data
            self.reads += 1
        return finish

    # -- reporting ---------------------------------------------------------------

    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        activations, hits, _conflicts = self.timeline.stats()
        total = activations + hits
        if total == 0:
            return 0.0
        return hits / total


def _same_row(a: BankAddress, b: BankAddress) -> bool:
    return a.bank == b.bank and a.row == b.row
