"""Cycle-level DDR command scheduler.

Drives the per-bank FSMs one command per cycle, honouring the paper's
§3.3 priority order: column accesses (READ/WRITE) first — they produce
data — then row opens (ACTIVATE), then PRECHARGE, with REFRESH forced
when overdue.  The RTL DDRC instantiates one scheduler; the TLM does not
need one because :mod:`repro.ddr.timeline` folds scheduling into
closed-form arithmetic.

Bank interleaving appears here naturally: the request queue holds the
in-service access *and* the pipelined next access (forwarded by the
AHB+ arbiter over the BI), so the scheduler can open the next bank's row
while the current burst streams data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ddr.bank import BankFsm, BankState
from repro.ddr.commands import BankAddress, DdrCommand
from repro.ddr.timing import DdrTiming
from repro.errors import SimulationError


@dataclass(eq=False)
class PendingAccess:
    """One burst access queued at the controller.

    ``eq=False`` keeps identity semantics: queue membership tests must
    distinguish two accesses that happen to share field values.
    """

    baddr: BankAddress
    is_write: bool
    beats: int
    uid: int
    #: Set once the CAS for this access has been issued.
    cas_issued: bool = False


@dataclass
class ScheduledCommand:
    """The command the scheduler picked for this cycle."""

    command: DdrCommand
    bank: Optional[int] = None
    access: Optional[PendingAccess] = None


#: Shared NOP decision — callers treat decisions as read-only and NOP is
#: by far the most common outcome, so one instance serves every cycle.
_NOP = ScheduledCommand(DdrCommand.NOP)


class CommandScheduler:
    """One-command-per-cycle scheduler over the bank FSMs."""

    def __init__(self, timing: DdrTiming, banks: List[BankFsm]) -> None:
        if len(banks) != timing.num_banks:
            raise SimulationError("scheduler bank count mismatch")
        self.timing = timing
        self.banks = banks
        self.queue: List[PendingAccess] = []
        self._rrd_timer = 0  # cycles until another ACTIVATE is legal
        #: tRRD memoized out of the per-cycle decide/issue path.
        self._t_rrd = timing.t_rrd
        self.commands_issued = {cmd: 0 for cmd in DdrCommand}

    # -- queue management -----------------------------------------------------

    def enqueue(self, access: PendingAccess) -> None:
        """Append an access (head = in service, tail = pipelined next)."""
        self.queue.append(access)

    def retire_head(self) -> PendingAccess:
        """Drop the head access once its data burst finished."""
        if not self.queue:
            raise SimulationError("retire from an empty controller queue")
        return self.queue.pop(0)

    @property
    def depth(self) -> int:
        return len(self.queue)

    def quiescent(self) -> bool:
        """:meth:`tick` is a guaranteed no-op (no timer anywhere runs).

        Part of the DDRC's idle declaration to the cycle engine: with an
        empty queue, quiescent banks and no tRRD window open, skipping
        whole cycles cannot lose a state transition.
        """
        if self._rrd_timer:
            return False
        for bank in self.banks:
            if not bank.quiescent:
                return False
        return True

    # -- per-cycle decision ------------------------------------------------------

    def decide(
        self,
        refresh_forced: bool,
        data_path_free: bool,
        busy_bank: Optional[int] = None,
    ) -> ScheduledCommand:
        """Choose the command for this cycle.

        ``data_path_free`` gates CAS issue (one burst on the data pins at
        a time); row/precharge commands for *other* banks may still issue
        while a burst streams — that is the bank-interleaving overlap.
        ``busy_bank`` is the bank currently streaming data: it must not
        be precharged out from under its own burst.
        """
        if refresh_forced:
            # While a refresh is owed, no new row/column work may start;
            # the controller drains every bank toward IDLE and refreshes.
            cmd = self._refresh_step()
            return cmd if cmd is not None else _NOP
        if not self.queue:
            return _NOP
        # Priority 0: column access for the head of the queue.
        if data_path_free:
            head = self.queue[0]
            bank = self.banks[head.baddr.bank]
            if not head.cas_issued and bank.can_cas(head.baddr.row):
                return self._issue_cas(head)
        # Priority 1: row open for any queued access that needs one.
        if self._rrd_timer == 0:
            for access in self.queue:
                bank = self.banks[access.baddr.bank]
                if bank.can_activate() and not access.cas_issued:
                    return self._issue(DdrCommand.ACTIVATE, access.baddr.bank, access)
        # Priority 2: precharge banks whose open row conflicts with a queued access.
        for access in self.queue:
            bank = self.banks[access.baddr.bank]
            if (
                not access.cas_issued
                and access.baddr.bank != busy_bank
                and bank.state is BankState.ACTIVE
                and bank.open_row != access.baddr.row
                and bank.can_precharge()
            ):
                return self._issue(DdrCommand.PRECHARGE, access.baddr.bank, access)
        return _NOP

    def _issue(
        self, command: DdrCommand, bank_index: int, access: Optional[PendingAccess]
    ) -> ScheduledCommand:
        bank = self.banks[bank_index]
        if command is DdrCommand.ACTIVATE:
            assert access is not None
            bank.activate(access.baddr.row)
            self._rrd_timer = self._t_rrd
        elif command is DdrCommand.PRECHARGE:
            bank.precharge()
        self.commands_issued[command] += 1
        return ScheduledCommand(command, bank_index, access)

    def _issue_cas(self, access: PendingAccess) -> ScheduledCommand:
        bank = self.banks[access.baddr.bank]
        bank.note_cas(access.is_write)
        access.cas_issued = True
        command = DdrCommand.WRITE if access.is_write else DdrCommand.READ
        self.commands_issued[command] += 1
        return ScheduledCommand(command, access.baddr.bank, access)

    def _refresh_step(self) -> Optional[ScheduledCommand]:
        """Drive all banks toward REFRESH; returns the command to issue."""
        # Precharge any open bank first (respecting tRAS/tWR).
        all_idle = True
        for bank in self.banks:
            if bank.state is BankState.ACTIVE:
                all_idle = False
                if bank.can_precharge():
                    return self._issue(DdrCommand.PRECHARGE, bank.index, None)
            elif bank.state is not BankState.IDLE:
                all_idle = False
        if all_idle:
            for bank in self.banks:
                bank.refresh()
            self.commands_issued[DdrCommand.REFRESH] += 1
            return ScheduledCommand(DdrCommand.REFRESH)
        return None  # still draining toward idle; caller may pick other work

    # -- time -------------------------------------------------------------------------

    def tick(self) -> None:
        """Advance shared timers and every bank FSM by one cycle."""
        if self._rrd_timer > 0:
            self._rrd_timer -= 1
        for bank in self.banks:
            bank.tick()

    def skip(self, cycles: int) -> None:
        """Apply *cycles* deferred :meth:`tick` calls in one step.

        The settled timer values are identical to ticking cycle by
        cycle (every counter saturates at zero).  The RTL DDRC uses this
        to settle the tick debt it accrues over lean streaming cycles —
        spans where :meth:`decide` is provably a NOP and no bank has a
        transitional state in flight, so nothing could have observed the
        intermediate counter values.
        """
        if self._rrd_timer > 0:
            self._rrd_timer = max(0, self._rrd_timer - cycles)
        for bank in self.banks:
            bank.skip(cycles)
