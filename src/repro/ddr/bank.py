"""Per-bank state machine, cycle-accurate.

The paper models the DDRC FSM "as accurate as register transfer level"
(§3.3).  :class:`BankFsm` is that FSM: one instance per bank, advanced
one clock per :meth:`tick`, enforcing tRCD, tRP, tRAS and tWR by
explicit down-counters.  The RTL DDRC steps these machines every cycle;
the TLM instead uses the analytic :mod:`repro.ddr.timeline`, which is
where its speed (and its small inaccuracy) comes from.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.ddr.timing import DdrTiming
from repro.errors import SimulationError


class BankState(enum.Enum):
    """FSM states of one DDR bank."""

    IDLE = "idle"
    ACTIVATING = "activating"
    ACTIVE = "active"
    PRECHARGING = "precharging"
    REFRESHING = "refreshing"


class BankFsm:
    """Cycle-accurate model of a single DDR bank.

    All ``can_*`` predicates refer to the *current* cycle; commands take
    effect immediately and their latencies elapse through :meth:`tick`.
    """

    def __init__(self, index: int, timing: DdrTiming) -> None:
        self.index = index
        self.timing = timing
        self.state = BankState.IDLE
        self.open_row: Optional[int] = None
        self._timer = 0  # cycles remaining in a transitional state
        self._ras_timer = 0  # cycles until precharge becomes legal
        self._wr_timer = 0  # write-recovery cycles until precharge legal
        self.activations = 0
        self.precharges = 0
        self.row_hits = 0

    # -- predicates --------------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while a transitional state is in progress."""
        return self.state in (
            BankState.ACTIVATING,
            BankState.PRECHARGING,
            BankState.REFRESHING,
        )

    def can_activate(self) -> bool:
        """An ACTIVATE may issue this cycle."""
        return self.state is BankState.IDLE

    def can_cas(self, row: int) -> bool:
        """A READ/WRITE to *row* may issue this cycle (row open, tRCD met)."""
        return self.state is BankState.ACTIVE and self.open_row == row

    def can_precharge(self) -> bool:
        """A PRECHARGE may issue this cycle (tRAS and tWR satisfied)."""
        return (
            self.state is BankState.ACTIVE
            and self._ras_timer == 0
            and self._wr_timer == 0
        )

    def is_row_hit(self, row: int) -> bool:
        """The access would hit the open row (no row command needed)."""
        return self.open_row == row and self.state in (
            BankState.ACTIVE,
            BankState.ACTIVATING,
        )

    @property
    def ticking(self) -> bool:
        """Some timer is still running: :meth:`tick` would change state.

        Owned here (next to the timers) so callers that elide per-cycle
        ``tick()`` calls stay in sync if the FSM ever grows another
        timer.
        """
        return bool(self._timer or self._ras_timer or self._wr_timer)

    @property
    def quiescent(self) -> bool:
        """No timer is running: :meth:`tick` is a guaranteed no-op.

        The quiescence condition the RTL DDRC uses before letting the
        cycle engine skip its update — an idle or steadily-active bank
        whose tRCD/tRP/tRFC, tRAS and tWR counters have all drained.
        """
        return not self.ticking and not self.busy

    # -- commands -----------------------------------------------------------------

    def activate(self, row: int) -> None:
        """Issue ACTIVATE; bank becomes ACTIVE after tRCD ticks."""
        if not self.can_activate():
            raise SimulationError(
                f"bank {self.index}: ACTIVATE while {self.state.value}"
            )
        self.state = BankState.ACTIVATING
        self.open_row = row
        self._timer = self.timing.t_rcd
        self._ras_timer = self.timing.t_ras
        self.activations += 1

    def precharge(self) -> None:
        """Issue PRECHARGE; bank becomes IDLE after tRP ticks."""
        if not self.can_precharge():
            raise SimulationError(
                f"bank {self.index}: PRECHARGE while {self.state.value} "
                f"(ras={self._ras_timer}, wr={self._wr_timer})"
            )
        self.state = BankState.PRECHARGING
        self.open_row = None
        self._timer = self.timing.t_rp
        self.precharges += 1

    def refresh(self) -> None:
        """Enter refresh; bank unusable for tRFC ticks (bank must be idle)."""
        if self.state is not BankState.IDLE:
            raise SimulationError(
                f"bank {self.index}: REFRESH while {self.state.value}"
            )
        self.state = BankState.REFRESHING
        self._timer = self.timing.t_rfc

    def note_cas(self, is_write: bool) -> None:
        """Record a column access (tracks row hits and write recovery)."""
        if self.state is not BankState.ACTIVE:
            raise SimulationError(
                f"bank {self.index}: CAS while {self.state.value}"
            )
        self.row_hits += 1
        if is_write:
            self._wr_timer = self.timing.t_wr

    def note_write_beat(self) -> None:
        """Re-arm write recovery from a write data beat.

        tWR counts from the *last* write datum, so the per-beat RTL
        controller re-arms this timer on every beat of a write burst.
        """
        self._wr_timer = self.timing.t_wr

    def arm_write_recovery(self, cycles: int) -> None:
        """Analytic form of per-beat :meth:`note_write_beat` re-arming.

        A streaming controller knows a write segment's final data beat
        at CAS time, so it loads the recovery timer once with ``t_wr``
        plus the cycles until that beat.  The timer then drains to the
        exact value the per-beat re-arm sequence would leave — nothing
        may observe this bank's :meth:`can_precharge` mid-burst (its
        segment owns the data path and refresh is held off), which the
        streamed-vs-per-beat trace-equality tests pin down.
        """
        self._wr_timer = cycles

    # -- time ------------------------------------------------------------------------

    def tick(self) -> None:
        """Advance one clock cycle."""
        if self._ras_timer > 0:
            self._ras_timer -= 1
        if self._wr_timer > 0:
            self._wr_timer -= 1
        if self._timer > 0:
            self._timer -= 1
            if self._timer == 0:
                if self.state is BankState.ACTIVATING:
                    self.state = BankState.ACTIVE
                elif self.state in (BankState.PRECHARGING, BankState.REFRESHING):
                    self.state = BankState.IDLE

    def skip(self, cycles: int) -> None:
        """Apply *cycles* deferred :meth:`tick` calls in one step.

        Timers saturate at zero, so the result equals *cycles*
        individual ticks — provided no state transition inside the
        skipped span was observable.  Callers owe that proof: the RTL
        DDRC only defers ticks while the bank is IDLE or steadily ACTIVE
        (``_timer`` drained), where only the invisible tRAS/tWR
        down-counters move.  A transitional state still resolves
        correctly here (the transition just lands at settle time rather
        than mid-span), which keeps the method safe under a conservative
        caller.
        """
        if self._ras_timer > 0:
            self._ras_timer = max(0, self._ras_timer - cycles)
        if self._wr_timer > 0:
            self._wr_timer = max(0, self._wr_timer - cycles)
        if self._timer > 0:
            self._timer = max(0, self._timer - cycles)
            if self._timer == 0:
                if self.state is BankState.ACTIVATING:
                    self.state = BankState.ACTIVE
                elif self.state in (BankState.PRECHARGING, BankState.REFRESHING):
                    self.state = BankState.IDLE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BankFsm({self.index}, {self.state.value}, row={self.open_row}, "
            f"timer={self._timer})"
        )
