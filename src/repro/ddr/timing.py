"""DDR SDRAM timing and geometry parameters.

All values are in bus-clock cycles (the AHB and DDR command clocks are
modelled as the same domain, as in the paper's platform where the DDRC
sits directly behind the AHB+ bus).  Presets approximate early-2000s
DDR SDRAM parts of the kind a 2005 DVD-player SoC would use; the exact
numbers are configuration, not behaviour — every model reads them from
this one place.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict

from repro.errors import ConfigError


@dataclass(frozen=True)
class DdrTiming:
    """Timing/geometry of the modelled DDR device.

    Attributes
    ----------
    num_banks:
        Number of internal banks (each with its own row buffer and FSM).
    row_bits / col_bits:
        Address geometry in bus-width words.
    t_rcd:
        ACTIVATE to READ/WRITE delay (row to column).
    t_rp:
        PRECHARGE to ACTIVATE delay.
    t_ras:
        ACTIVATE to PRECHARGE minimum.
    cas_latency:
        READ command to first data.
    write_latency:
        WRITE command to first data.
    t_wr:
        Write recovery: last write data to PRECHARGE.
    t_rrd:
        ACTIVATE to ACTIVATE, different banks.
    t_refi:
        Average refresh interval.
    t_rfc:
        Refresh cycle time (all banks blocked).
    """

    num_banks: int = 4
    row_bits: int = 13
    col_bits: int = 10
    t_rcd: int = 3
    t_rp: int = 3
    t_ras: int = 7
    cas_latency: int = 3
    write_latency: int = 1
    t_wr: int = 3
    t_rrd: int = 2
    t_refi: int = 1560
    t_rfc: int = 14

    def __post_init__(self) -> None:
        if self.num_banks < 1 or self.num_banks & (self.num_banks - 1):
            raise ConfigError(
                f"num_banks must be a power of two, got {self.num_banks}"
            )
        for name in (
            "t_rcd",
            "t_rp",
            "t_ras",
            "cas_latency",
            "write_latency",
            "t_wr",
            "t_rrd",
            "t_refi",
            "t_rfc",
        ):
            if getattr(self, name) < 1:
                raise ConfigError(f"{name} must be >= 1")
        if self.row_bits < 1 or self.col_bits < 1:
            raise ConfigError("row_bits/col_bits must be >= 1")
        # Precomputed decode tables: geometry is immutable, so every
        # mask/shift the per-beat address decode needs is derived once
        # here instead of per lookup (the decode is the hottest DDR
        # arithmetic in both abstraction levels).
        bank_bits = self.num_banks.bit_length() - 1
        object.__setattr__(self, "_bank_bits", bank_bits)
        object.__setattr__(self, "_col_mask", (1 << self.col_bits) - 1)
        object.__setattr__(self, "_bank_mask", self.num_banks - 1)
        object.__setattr__(self, "_bank_shift", self.col_bits)
        object.__setattr__(self, "_row_shift", self.col_bits + bank_bits)
        object.__setattr__(self, "_row_limit", 1 << self.row_bits)

    @property
    def bank_bits(self) -> int:
        """Bits of the word address selecting the bank."""
        return self._bank_bits

    @property
    def words_per_row(self) -> int:
        """Bus-width words per open row (the row-hit window)."""
        return self._col_mask + 1

    @property
    def total_words(self) -> int:
        """Total addressable bus-width words of the device."""
        return 1 << (self.row_bits + self._bank_bits + self.col_bits)

    def row_miss_penalty(self) -> int:
        """Worst-case extra cycles a row miss costs over a row hit."""
        return self.t_rp + self.t_rcd

    def to_dict(self) -> Dict[str, int]:
        """JSON-ready mapping of the declared timing fields."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "DdrTiming":
        """Rebuild a timing set; ``__post_init__`` re-validates it."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown DdrTiming fields {sorted(unknown)}")
        return cls(**data)


#: A smallish, fast part — default for unit tests (short rows stress
#: the row-miss machinery without long runs).
DDR_TEST = DdrTiming(num_banks=4, row_bits=6, col_bits=4, t_refi=400, t_rfc=8)

#: DDR-266-like device, the library default.
DDR_266 = DdrTiming()

#: DDR-333-like device with slightly deeper rows and faster core.
DDR_333 = DdrTiming(
    num_banks=4,
    row_bits=13,
    col_bits=10,
    t_rcd=3,
    t_rp=3,
    t_ras=6,
    cas_latency=3,
    write_latency=1,
    t_wr=3,
    t_rrd=2,
    t_refi=1872,
    t_rfc=17,
)

PRESETS = {
    "test": DDR_TEST,
    "ddr266": DDR_266,
    "ddr333": DDR_333,
}


def preset(name: str) -> DdrTiming:
    """Look up a named timing preset."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ConfigError(
            f"unknown DDR preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None
