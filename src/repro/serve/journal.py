"""Write-ahead journal: accepted work survives a server crash.

The :class:`~repro.serve.store.ResultStore` remembers *finished* work;
this module remembers **accepted** work.  Every submission point the
server admits is appended here *before* it is queued, and marked off as
its result lands, so a server killed mid-batch can be restarted on the
same store+journal and re-run exactly the unfinished remainder —
finished points replay from the store, nothing runs twice, nothing is
lost.

The journal is an append-only JSON-lines file of four entry kinds::

    {"op": "accept", "key": K, "point": WIRE_POINT, "max_cycles": N|null}
    {"op": "start",  "key": K}            # an attempt began executing
    {"op": "done",   "key": K}            # result landed in the store
    {"op": "fail",   "key": K, "error": ...}  # attempt crashed cleanly

Replaying the file reconstructs three facts per key:

* **pending** — accepted with no terminal mark: the work a restart
  must re-run (or replay from the store when the result landed but the
  ``done`` mark did not);
* **crash count** — consecutive failed attempts, counting both clean
  ``fail`` rows and *interrupted starts* (a ``start`` with no matching
  ``done``/``fail`` means the whole server died mid-attempt); a
  ``done`` resets the count;
* **dispatch accounting** — the chaos harness asserts that no key is
  ever ``start``-ed again after its ``done`` (zero duplicate
  simulations) by reading this same log.

A crash mid-append leaves at most one torn trailing line; loading
tolerates and counts it, and the next append heals the missing
newline first so later entries never merge into the torn one
(:func:`~repro.serve.store.heal_torn_tail` — the same contract as the
store file).  Entries are flushed per append: ``kill -9`` cannot lose
an acknowledged accept (only machine power loss could, which is out of
scope for the chaos guarantees).
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.serve.store import heal_torn_tail

#: Journal entry kinds.
JOURNAL_OPS = ("accept", "start", "done", "fail")


class Journal:
    """Thread-safe write-ahead log of accepted submission points.

    *path* is the JSON-lines backing file; ``None`` keeps the journal
    purely in-memory (hermetic tests — the recovery *logic* still works
    across two server objects sharing one instance, only durability is
    lost).  An existing file is replayed eagerly on construction.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._path = None if path is None else Path(path)
        self._lock = threading.Lock()
        #: key -> (wire point dict, max_cycles) for accepted-unfinished work.
        self._pending: Dict[str, Tuple[Dict[str, object], Optional[int]]] = {}
        #: key -> consecutive crash count (fails + interrupted starts).
        self._crashes: Dict[str, int] = {}
        #: key -> starts not yet matched by done/fail (live attempts).
        self._open_starts: Dict[str, int] = {}
        #: Keys whose ``done`` mark has been written (duplicate guard).
        self._done: set = set()
        #: Lines skipped while loading (corrupt/truncated appends).
        self.skipped_lines = 0
        if self._path is not None and self._path.exists():
            self._replay()

    # -- persistence -----------------------------------------------------------

    def _replay(self) -> None:
        assert self._path is not None
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    op = entry["op"]
                    key = str(entry["key"])
                    if op not in JOURNAL_OPS:
                        raise ValueError(f"unknown journal op {op!r}")
                except (ValueError, KeyError, TypeError):
                    self.skipped_lines += 1
                    continue
                if op == "accept":
                    self._pending[key] = (
                        entry.get("point") or {},
                        entry.get("max_cycles"),
                    )
                elif op == "start":
                    self._open_starts[key] = self._open_starts.get(key, 0) + 1
                elif op == "done":
                    self._apply_done(key)
                else:  # fail
                    self._apply_fail(key)
        # A start with no terminal mark means the server died mid-attempt:
        # that interrupted attempt counts toward the key's crash score.
        for key, open_count in self._open_starts.items():
            if open_count > 0:
                self._crashes[key] = self._crashes.get(key, 0) + open_count
        self._open_starts = {}

    def _apply_done(self, key: str) -> None:
        self._pending.pop(key, None)
        self._crashes.pop(key, None)  # success resets the crash streak
        self._done.add(key)
        if self._open_starts.get(key):
            self._open_starts[key] -= 1

    def _apply_fail(self, key: str) -> None:
        self._pending.pop(key, None)
        self._crashes[key] = self._crashes.get(key, 0) + 1
        if self._open_starts.get(key):
            self._open_starts[key] -= 1

    def _append(self, entry: Dict[str, object]) -> None:
        if self._path is None:
            return
        self._path.parent.mkdir(parents=True, exist_ok=True)
        heal_torn_tail(self._path)
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()

    # -- the WAL interface -----------------------------------------------------

    def record_accept(
        self,
        key: str,
        point_wire: Dict[str, object],
        max_cycles: Optional[int] = None,
    ) -> None:
        """Log one admitted point **before** it is queued anywhere."""
        with self._lock:
            self._pending[key] = (point_wire, max_cycles)
            self._append(
                {
                    "op": "accept",
                    "key": key,
                    "point": point_wire,
                    "max_cycles": max_cycles,
                }
            )

    def record_start(self, key: str) -> None:
        """Log that an execution attempt for *key* is beginning."""
        with self._lock:
            self._open_starts[key] = self._open_starts.get(key, 0) + 1
            self._append({"op": "start", "key": key})

    def record_done(self, key: str) -> None:
        """Mark *key* finished (its record landed in the result store)."""
        with self._lock:
            if key in self._done:
                return  # idempotent: recovery may re-mark a store hit
            self._apply_done(key)
            self._append({"op": "done", "key": key})

    def record_fail(self, key: str, error: str) -> None:
        """Mark one attempt of *key* crashed (answered with an error row)."""
        with self._lock:
            self._apply_fail(key)
            self._append({"op": "fail", "key": key, "error": error})

    # -- introspection ---------------------------------------------------------

    def pending(self) -> List[Tuple[str, Dict[str, object], Optional[int]]]:
        """Accepted-but-unfinished work: ``(key, wire point, max_cycles)``."""
        with self._lock:
            return [
                (key, point, max_cycles)
                for key, (point, max_cycles) in self._pending.items()
            ]

    def crash_count(self, key: str) -> int:
        """Consecutive crashed attempts recorded for *key*."""
        with self._lock:
            return self._crashes.get(key, 0)

    def crash_counts(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._crashes)

    def quarantined(self, threshold: int) -> List[str]:
        """Keys whose crash streak has reached *threshold*."""
        with self._lock:
            return sorted(
                key
                for key, count in self._crashes.items()
                if count >= threshold
            )

    def __len__(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def path(self) -> Optional[Path]:
        return self._path

    def stats(self) -> Dict[str, object]:
        """One JSON-ready summary block (served by ``status``)."""
        with self._lock:
            return {
                "pending": len(self._pending),
                "completed": len(self._done),
                "crashing_keys": len(self._crashes),
                "path": None if self._path is None else str(self._path),
                "skipped_lines": self.skipped_lines,
            }
