"""Python client for the sweep server: submit once, stream results back.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` over a
fresh TCP connection per operation (connections are cheap on localhost
and stateless retries stay trivial).  :meth:`ServeClient.submit` is the
drop-in serving analogue of :meth:`SweepRunner.run`: it takes the same
``sweep()`` grid, returns records in grid order, and additionally
reports which points replayed from the server's cache — submitting the
same grid twice yields a second pass that is 100 % cache hits with
records equal to the first pass.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, SimulationError
from repro.exec.records import RunRecord
from repro.serve.protocol import (
    PROTOCOL,
    grid_to_wire,
    read_message,
    write_message,
)
from repro.system.spec import SweepPoint

#: Optional event observer: called with every raw protocol event.
OnEvent = Callable[[Dict[str, object]], None]


@dataclass(frozen=True)
class SubmitResult:
    """One submission's outcome: records plus cache accounting."""

    #: Records in grid order (cache replays carry this grid's labels).
    records: Tuple[RunRecord, ...]
    #: Per-point cache verdicts, grid order: ``"store"``, ``"inflight"``
    #: or ``"run"``.
    sources: Tuple[str, ...]
    hits: int
    misses: int
    job: int = 0
    #: Point keys in grid order (the store's content addresses).
    keys: Tuple[str, ...] = field(default=())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def cached(self) -> Tuple[bool, ...]:
        return tuple(source != "run" for source in self.sources)


class ServeClient:
    """Talks to one :class:`~repro.serve.server.SweepServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, timeout: float = 300.0
    ) -> None:
        if port <= 0:
            raise ConfigError(f"need the server's port, got {port}")
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------------

    def _connect(self) -> Tuple[object, object, socket.socket]:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        reader = sock.makefile("r", encoding="utf-8")
        writer = sock.makefile("w", encoding="utf-8")
        return reader, writer, sock

    def _request_one(self, op: str, expect: str) -> Dict[str, object]:
        """Send a single-shot op; return its one response event."""
        reader, writer, sock = self._connect()
        try:
            write_message(writer, {"op": op})
            event = read_message(reader)
            if event is None:
                raise SimulationError(f"server closed during {op!r}")
            if event.get("event") == "error":
                raise SimulationError(f"server error: {event.get('message')}")
            if event.get("event") != expect:
                raise SimulationError(
                    f"expected {expect!r} event, got {event.get('event')!r}"
                )
            return event
        finally:
            sock.close()

    # -- operations ------------------------------------------------------------

    def ping(self) -> str:
        """Round-trip check; returns the server's protocol identifier."""
        event = self._request_one("ping", "pong")
        return str(event.get("protocol", PROTOCOL))

    def status(self) -> Dict[str, object]:
        """The server's serving stats and store summary."""
        event = self._request_one("status", "status")
        return {"stats": event.get("stats"), "store": event.get("store")}

    def shutdown(self) -> bool:
        """Ask the server to stop; True when it acknowledged."""
        event = self._request_one("shutdown", "bye")
        return event.get("event") == "bye"

    def submit(
        self,
        grid: Iterable[SweepPoint],
        max_cycles: Optional[int] = None,
        on_event: Optional[OnEvent] = None,
    ) -> SubmitResult:
        """Submit *grid*; block until every point's record streamed back.

        Results arrive (and *on_event* fires) per point, in grid order,
        as the server completes them — cache hits immediately, cold
        points as the shared sweep finishes each one.
        """
        points = list(grid)
        if not points:
            return SubmitResult(records=(), sources=(), hits=0, misses=0)
        reader, writer, sock = self._connect()
        try:
            write_message(
                writer,
                {
                    "op": "submit",
                    "points": grid_to_wire(points),
                    "max_cycles": max_cycles,
                },
            )
            job = 0
            records: List[RunRecord] = []
            sources: List[str] = []
            keys: List[str] = []
            hits = misses = 0
            while True:
                event = read_message(reader)
                if event is None:
                    raise SimulationError(
                        "server closed mid-submission "
                        f"({len(records)}/{len(points)} records received)"
                    )
                if on_event is not None:
                    on_event(event)
                kind = event.get("event")
                if kind == "error":
                    raise SimulationError(
                        f"server error: {event.get('message')}"
                    )
                if kind == "accepted":
                    job = int(event.get("job", 0))
                elif kind == "result":
                    index = int(event.get("index", -1))
                    if index != len(records):
                        raise SimulationError(
                            f"result for index {index} arrived out of order "
                            f"(expected {len(records)})"
                        )
                    records.append(
                        RunRecord.from_dict(event["record"])  # type: ignore[arg-type]
                    )
                    sources.append(str(event.get("source", "run")))
                    keys.append(str(event.get("key", "")))
                elif kind == "done":
                    hits = int(event.get("hits", 0))
                    misses = int(event.get("misses", 0))
                    break
                else:
                    raise SimulationError(f"unexpected event {kind!r}")
            if len(records) != len(points):
                raise SimulationError(
                    f"submission returned {len(records)} records for "
                    f"{len(points)} points"
                )
            return SubmitResult(
                records=tuple(records),
                sources=tuple(sources),
                hits=hits,
                misses=misses,
                job=job,
                keys=tuple(keys),
            )
        finally:
            sock.close()
