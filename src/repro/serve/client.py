"""Python client for the sweep server: submit once, stream results back.

:class:`ServeClient` speaks the :mod:`repro.serve.protocol` over a
fresh TCP connection per operation (connections are cheap on localhost
and stateless retries stay trivial).  :meth:`ServeClient.submit` is the
drop-in serving analogue of :meth:`SweepRunner.run`: it takes the same
``sweep()`` grid, returns records in grid order, and additionally
reports which points replayed from the server's cache — submitting the
same grid twice yields a second pass that is 100 % cache hits with
records equal to the first pass.

Operations are **resilient by default**: submissions are idempotent by
content key (the server dedupes against its store and in-flight work),
so the client retries transient failures — refused/dropped
connections, a server that died mid-stream, structured ``overloaded``
and ``draining`` backpressure events — with exponential backoff plus
jitter, honouring the server's ``retry_after`` hint when one is given.
Protocol violations and structured ``error`` events are *not* retried:
a malformed request will not improve by repetition.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigError, SimulationError
from repro.exec.records import RunRecord
from repro.serve.protocol import (
    PROTOCOL,
    grid_to_wire,
    read_message,
    write_message,
)
from repro.system.spec import SweepPoint

#: Optional event observer: called with every raw protocol event.
OnEvent = Callable[[Dict[str, object]], None]


class _Retryable(Exception):
    """Internal: a transient failure worth another attempt.

    *retry_after* carries the server's hint (``overloaded`` events);
    the backoff sleeps at least that long.
    """

    def __init__(self, reason: str, retry_after: float = 0.0) -> None:
        super().__init__(reason)
        self.reason = reason
        self.retry_after = retry_after


@dataclass(frozen=True)
class SubmitResult:
    """One submission's outcome: records plus cache accounting."""

    #: Records in grid order (cache replays carry this grid's labels).
    records: Tuple[RunRecord, ...]
    #: Per-point cache verdicts, grid order: ``"store"``, ``"inflight"``,
    #: ``"run"`` or ``"quarantined"``.
    sources: Tuple[str, ...]
    hits: int
    misses: int
    job: int = 0
    #: Point keys in grid order (the store's content addresses).
    keys: Tuple[str, ...] = field(default=())
    #: Points answered with an immediate quarantine error row.
    quarantined: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def cached(self) -> Tuple[bool, ...]:
        return tuple(
            source in ("store", "inflight") for source in self.sources
        )


class ServeClient:
    """Talks to one :class:`~repro.serve.server.SweepServer`.

    *retries* bounds the transient-failure retries per operation (so an
    operation makes at most ``retries + 1`` attempts); *backoff_base*
    and *backoff_max* shape the exponential delay, *jitter* is the
    uniform fraction of the delay randomised away (decorrelating a
    thundering herd of clients retrying the same overloaded server).
    *sleep* and *rng* are injectable for deterministic tests; every
    retry taken is appended to :attr:`retry_log` as ``(reason,
    delay)``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 300.0,
        retries: int = 3,
        backoff_base: float = 0.05,
        backoff_max: float = 2.0,
        jitter: float = 0.5,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[random.Random] = None,
    ) -> None:
        if port <= 0:
            raise ConfigError(f"need the server's port, got {port}")
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigError(f"jitter must be within [0, 1], got {jitter}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_max = backoff_max
        self.jitter = jitter
        self._sleep = sleep
        self._rng = rng if rng is not None else random.Random()
        #: Every retry taken, across calls: ``(reason, delay_seconds)``.
        self.retry_log: List[Tuple[str, float]] = []

    # -- plumbing --------------------------------------------------------------

    def _connect(self) -> Tuple[object, object, socket.socket]:
        sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )
        reader = sock.makefile("r", encoding="utf-8")
        writer = sock.makefile("w", encoding="utf-8")
        return reader, writer, sock

    def _backoff_delay(self, attempt: int, retry_after: float) -> float:
        """Exponential backoff with jitter, floored by the server hint."""
        delay = min(self.backoff_max, self.backoff_base * (2.0**attempt))
        # Jitter *down* only: the un-jittered delay is the ceiling, so
        # a fleet of clients spreads out instead of stampeding back in
        # lockstep at exactly the same instant.
        delay *= 1.0 - self.jitter * self._rng.random()
        return max(delay, retry_after)

    def _with_retries(self, operation: str, attempt_fn):
        """Run *attempt_fn* with backoff-retry on transient failures.

        Safe because every operation is idempotent: ``submit`` is
        deduped by content key server-side, ``ping``/``status`` are
        reads.  Raises :class:`SimulationError` when the budget is
        exhausted.
        """
        last: Optional[_Retryable] = None
        for attempt in range(self.retries + 1):
            try:
                return attempt_fn()
            except _Retryable as exc:
                last = exc
            except (ConnectionError, socket.timeout, OSError) as exc:
                last = _Retryable(f"{type(exc).__name__}: {exc}")
            if attempt < self.retries:
                delay = self._backoff_delay(attempt, last.retry_after)
                self.retry_log.append((last.reason, delay))
                self._sleep(delay)
        raise SimulationError(
            f"{operation} failed after {self.retries + 1} attempts "
            f"(last: {last.reason})"
        )

    def _request_one(self, op: str, expect: str) -> Dict[str, object]:
        """Send a single-shot op; return its one response event."""
        reader, writer, sock = self._connect()
        try:
            write_message(writer, {"op": op})
            event = read_message(reader)
            if event is None:
                raise _Retryable(f"server closed during {op!r}")
            if event.get("event") == "error":
                raise SimulationError(f"server error: {event.get('message')}")
            if event.get("event") != expect:
                raise SimulationError(
                    f"expected {expect!r} event, got {event.get('event')!r}"
                )
            return event
        finally:
            sock.close()

    # -- operations ------------------------------------------------------------

    def ping(self) -> str:
        """Round-trip check; returns the server's protocol identifier."""
        event = self._with_retries(
            "ping", lambda: self._request_one("ping", "pong")
        )
        return str(event.get("protocol", PROTOCOL))

    def status(self) -> Dict[str, object]:
        """The server's serving stats, store and journal summaries."""
        event = self._with_retries(
            "status", lambda: self._request_one("status", "status")
        )
        return {
            "stats": event.get("stats"),
            "store": event.get("store"),
            "journal": event.get("journal"),
        }

    def drain(self) -> bool:
        """Ask the server to drain gracefully; ``False`` when it is
        already gone (like :meth:`shutdown`, safe to script blindly)."""
        try:
            event = self._request_one("drain", "draining")
        except (_Retryable, ConnectionError, socket.timeout, OSError):
            return False
        return event.get("event") == "draining"

    def shutdown(self) -> bool:
        """Ask the server to stop; ``True`` when it acknowledged.

        A server that is already gone — refused connection, dropped
        socket, closed stream — returns ``False`` instead of raising,
        so scripted teardown is idempotent: calling ``shutdown()``
        twice is as safe as calling it once.
        """
        try:
            event = self._request_one("shutdown", "bye")
        except (_Retryable, ConnectionError, socket.timeout, OSError):
            return False
        return event.get("event") == "bye"

    def submit(
        self,
        grid: Iterable[SweepPoint],
        max_cycles: Optional[int] = None,
        on_event: Optional[OnEvent] = None,
    ) -> SubmitResult:
        """Submit *grid*; block until every point's record streamed back.

        Results arrive (and *on_event* fires) per point, in grid order,
        as the server completes them — cache hits immediately, cold
        points as the shared sweep finishes each one.  Transient
        failures (connection loss, a server that died mid-stream,
        ``overloaded``/``draining`` responses) retry the whole
        submission with backoff — idempotence makes the re-submission
        free for every point that already completed.
        """
        points = list(grid)
        if not points:
            return SubmitResult(records=(), sources=(), hits=0, misses=0)
        return self._with_retries(
            "submit", lambda: self._submit_once(points, max_cycles, on_event)
        )

    def _submit_once(
        self,
        points: List[SweepPoint],
        max_cycles: Optional[int],
        on_event: Optional[OnEvent],
    ) -> SubmitResult:
        reader, writer, sock = self._connect()
        try:
            write_message(
                writer,
                {
                    "op": "submit",
                    "points": grid_to_wire(points),
                    "max_cycles": max_cycles,
                },
            )
            job = 0
            records: List[RunRecord] = []
            sources: List[str] = []
            keys: List[str] = []
            hits = misses = quarantined = 0
            while True:
                event = read_message(reader)
                if event is None:
                    raise _Retryable(
                        "server closed mid-submission "
                        f"({len(records)}/{len(points)} records received)"
                    )
                if on_event is not None:
                    on_event(event)
                kind = event.get("event")
                if kind == "error":
                    raise SimulationError(
                        f"server error: {event.get('message')}"
                    )
                if kind == "overloaded":
                    raise _Retryable(
                        f"server overloaded: {event.get('message')}",
                        retry_after=float(event.get("retry_after") or 0.0),
                    )
                if kind == "draining":
                    raise _Retryable(
                        f"server draining: {event.get('message')}"
                    )
                if kind == "accepted":
                    job = int(event.get("job", 0))
                elif kind == "result":
                    index = int(event.get("index", -1))
                    if index != len(records):
                        raise SimulationError(
                            f"result for index {index} arrived out of order "
                            f"(expected {len(records)})"
                        )
                    records.append(
                        RunRecord.from_dict(event["record"])  # type: ignore[arg-type]
                    )
                    sources.append(str(event.get("source", "run")))
                    keys.append(str(event.get("key", "")))
                elif kind == "done":
                    hits = int(event.get("hits", 0))
                    misses = int(event.get("misses", 0))
                    quarantined = int(event.get("quarantined", 0))
                    break
                else:
                    raise SimulationError(f"unexpected event {kind!r}")
            if len(records) != len(points):
                raise SimulationError(
                    f"submission returned {len(records)} records for "
                    f"{len(points)} points"
                )
            return SubmitResult(
                records=tuple(records),
                sources=tuple(sources),
                hits=hits,
                misses=misses,
                job=job,
                keys=tuple(keys),
                quarantined=quarantined,
            )
        finally:
            sock.close()
