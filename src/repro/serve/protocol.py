"""The ``repro.serve`` wire protocol: line-delimited JSON over a socket.

One request object per line from the client, a stream of event objects
per line back from the server.  Everything is plain JSON — the same
``to_dict``/``from_dict`` shapes the rest of the repo persists — so any
language (or ``nc`` plus an eyeball) can speak it.

Requests::

    {"op": "submit", "points": [WIRE_POINT, ...], "max_cycles": N|null}
    {"op": "status"}
    {"op": "ping"}
    {"op": "drain"}
    {"op": "shutdown"}

where ``WIRE_POINT`` is ``{"label", "axis", "value", "spec", "engine"}``
(``spec`` a :meth:`SystemSpec.to_dict` mapping, ``value`` the swept
value's ``repr`` — identity bookkeeping only; the cache key is content:
spec + engine + max_cycles).

Responses (one per line; a ``submit`` streams them as points finish,
in grid order)::

    {"event": "accepted", "job": N, "points": K, "protocol": ...}
    {"event": "result", "job": N, "index": I, "key": ...,
     "cached": true|false,
     "source": "store"|"inflight"|"run"|"quarantined",
     "record": RECORD_DICT}
    {"event": "done", "job": N, "hits": H, "misses": M}
    {"event": "status", "stats": {...}, "store": {...}, "journal": {...}}
    {"event": "pong", "protocol": ...}
    {"event": "overloaded", "retry_after": SECONDS, "queue_depth": N,
     "message": ...}
    {"event": "draining", "message": ...}
    {"event": "bye"}
    {"event": "error", "message": ...}

``source`` distinguishes the hit kinds: ``"store"`` replayed a
persisted record, ``"inflight"`` attached to a point some other client
was already running (both count as cache hits — no simulation ran for
this submission); ``"quarantined"`` is an immediate error row for a
point parked after repeated crashes (nothing ran, nothing was cached).

``overloaded`` and ``draining`` are *backpressure* responses to
``submit``: the server refused the whole submission — nothing was
accepted or journaled — and the client should retry after
``retry_after`` seconds (``overloaded``) or against the restarted
server (``draining``).  Both are safe to retry blindly: submissions
are idempotent by content key.  ``drain`` asks a supervised server to
stop gracefully — finish in-flight work, keep the queued remainder
journaled for the next start, refuse new submissions — and is
acknowledged with a ``draining`` event.
"""

from __future__ import annotations

import json
from typing import Dict, IO, Iterable, List, Optional

from repro.canonical import register_content_schema
from repro.errors import ConfigError
from repro.system.spec import LEVELS, SweepPoint, SystemSpec

#: Protocol identifier sent in ``accepted``/``pong`` events.  v2 added
#: the supervision surface: ``drain``, ``overloaded``/``draining``
#: backpressure events, the ``"quarantined"`` result source and the
#: ``journal`` status block (a v1 client still understands every v2
#: happy-path event).
PROTOCOL = register_content_schema(
    "ahbplus-serve-v2", "repro.serve.protocol"
)

#: Requests a server understands.
OPS = ("submit", "status", "ping", "drain", "shutdown")


class _WireValue:
    """A swept value reconstructed from its ``repr`` text.

    The wire carries ``repr(point.value)`` (arbitrary objects do not
    survive JSON); rebuilding the point around a ``_WireValue`` whose
    ``repr`` *is* that text makes :meth:`RunRecord.from_run` emit the
    exact identity string the submitting client used.  Picklable, so
    wire points ride the process backend unchanged.
    """

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        self.text = text

    def __repr__(self) -> str:
        return self.text

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _WireValue) and other.text == self.text

    def __hash__(self) -> int:
        return hash(self.text)


def point_to_wire(point: SweepPoint) -> Dict[str, object]:
    """Serialise one grid point for a ``submit`` request."""
    return {
        "label": point.label,
        "axis": point.axis,
        "value": repr(point.value),
        "spec": point.spec.to_dict(),
        "engine": point.engine,
    }


def point_from_wire(data: Dict[str, object]) -> SweepPoint:
    """Rebuild a grid point from its wire form (re-validating the spec)."""
    missing = {"label", "axis", "value", "spec", "engine"} - set(data)
    if missing:
        raise ConfigError(f"wire point needs fields {sorted(missing)}")
    engine = str(data["engine"])
    if engine not in LEVELS:
        raise ConfigError(f"unknown engine {engine!r}; choose from {LEVELS}")
    return SweepPoint(
        label=str(data["label"]),
        axis=str(data["axis"]),
        value=_WireValue(str(data["value"])),
        spec=SystemSpec.from_dict(data["spec"]),  # type: ignore[arg-type]
        engine=engine,
    )


def grid_to_wire(grid: Iterable[SweepPoint]) -> List[Dict[str, object]]:
    return [point_to_wire(point) for point in grid]


# -- line framing ---------------------------------------------------------------


def write_message(stream: IO[str], message: Dict[str, object]) -> None:
    """Send one protocol object (a single line; flushed immediately)."""
    stream.write(json.dumps(message) + "\n")
    stream.flush()


def read_message(stream: IO[str]) -> Optional[Dict[str, object]]:
    """Read one protocol object; ``None`` on a closed stream.

    Malformed lines raise :class:`ConfigError` — both sides treat that
    as a protocol violation (the server answers with an ``error`` event
    and drops the connection).
    """
    line = stream.readline()
    if not line:
        return None
    line = line.strip()
    if not line:
        return {}
    try:
        message = json.loads(line)
    except ValueError as exc:
        raise ConfigError(f"malformed protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ConfigError(
            f"protocol messages are JSON objects, got {type(message).__name__}"
        )
    return message
