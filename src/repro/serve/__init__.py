"""Simulation-as-a-service: a persistent sweep server with a
content-addressed result cache.

Everything needed for serving already existed — ``SystemSpec`` and
``Workload`` are JSON-round-trippable and picklable, ``RunRecord``
equality excludes wall time, and simulations are deterministic — so a
cache hit is free *and provably correct*.  This package is the layer
that exploits it:

* :class:`ResultStore` — a content-addressed record store keyed on
  :func:`repro.exec.records.point_key` (the canonical hash of spec +
  workload + seed + engine + cycle ceiling), JSON-lines on disk with an
  in-memory index.  Failure rows are never cached.
* :class:`SweepServer` — a thread-pool front end over ``SweepRunner``
  behind a line-delimited-JSON socket protocol: dedupes submissions
  against the store and in-flight work, batches cold points of
  concurrent clients onto one shared grid, and streams per-point
  results back in grid order via the runner's ``on_result`` hook.
* :class:`ServeClient` — the Python API (``submit``/``status``/
  ``ping``/``shutdown``); ``python -m repro.serve`` is the CLI over
  the same protocol (``serve`` / ``submit`` / ``status``).

One host program, same workload, any backend — submit the grid and let
the service pick cached vs fresh execution::

    with SweepServer(store=ResultStore("results.jsonl")) as server:
        client = ServeClient(*server.address)
        first = client.submit(grid)    # cold: simulated
        second = client.submit(grid)   # warm: 100% cache hits
        assert second.records == first.records
"""

from repro.serve.client import OnEvent, ServeClient, SubmitResult
from repro.serve.protocol import (
    OPS,
    PROTOCOL,
    grid_to_wire,
    point_from_wire,
    point_to_wire,
)
from repro.serve.server import SweepServer
from repro.serve.store import ResultStore

__all__ = [
    "OPS",
    "OnEvent",
    "PROTOCOL",
    "ResultStore",
    "ServeClient",
    "SubmitResult",
    "SweepServer",
    "grid_to_wire",
    "point_from_wire",
    "point_to_wire",
]
