"""Simulation-as-a-service: a supervised, persistent sweep server with
a content-addressed result cache and write-ahead crash recovery.

Everything needed for serving already existed — ``SystemSpec`` and
``Workload`` are JSON-round-trippable and picklable, ``RunRecord``
equality excludes wall time, and simulations are deterministic — so a
cache hit is free *and provably correct*.  This package is the layer
that exploits it:

* :class:`ResultStore` — a content-addressed record store keyed on
  :func:`repro.exec.records.point_key` (the canonical hash of spec +
  workload + seed + engine + cycle ceiling), JSON-lines on disk with an
  in-memory index.  Failure rows are never cached; first write wins,
  even across concurrent writers.
* :class:`Journal` — the write-ahead log of *accepted* work: every
  admitted point is journaled before it is queued and marked off as
  its result lands, so a server killed mid-batch restarts on the same
  store+journal and re-runs exactly the unfinished remainder.
* :class:`SweepServer` — a supervised thread-pool front end over
  ``SweepRunner`` behind a line-delimited-JSON socket protocol:
  dedupes submissions against the store and in-flight work, journals
  accepted points, sheds load past ``max_queue_depth`` with
  ``overloaded``/``retry_after`` backpressure, drains gracefully on
  ``SIGTERM``/``drain``, quarantines points that crash repeatedly, and
  streams per-point results back in grid order via the runner's
  ``on_result`` hook.
* :class:`ServeClient` — the Python API (``submit``/``status``/
  ``ping``/``drain``/``shutdown``) with exponential-backoff retries
  (safe: submissions are idempotent by content key);
  ``python -m repro.serve`` is the CLI over the same protocol.

One host program, same workload, any backend — submit the grid and let
the service pick cached vs fresh execution::

    with SweepServer(store=ResultStore("results.jsonl"),
                     journal=Journal("journal.jsonl")) as server:
        client = ServeClient(*server.address)
        first = client.submit(grid)    # cold: simulated
        second = client.submit(grid)   # warm: 100% cache hits
        assert second.records == first.records

The guarantees (no accepted work lost across ``kill -9``, no point
simulated twice, no store/journal corruption, recovered records
bit-identical to an uninterrupted run) are proven adversarially by the
chaos harness: :mod:`repro.fuzz.chaos`, ``make chaos``.
"""

from repro.serve.client import OnEvent, ServeClient, SubmitResult
from repro.serve.journal import Journal
from repro.serve.protocol import (
    OPS,
    PROTOCOL,
    grid_to_wire,
    point_from_wire,
    point_to_wire,
)
from repro.serve.server import (
    ServerDraining,
    ServerOverloaded,
    SweepServer,
)
from repro.serve.store import ResultStore, heal_torn_tail

__all__ = [
    "OPS",
    "OnEvent",
    "PROTOCOL",
    "Journal",
    "ResultStore",
    "ServeClient",
    "ServerDraining",
    "ServerOverloaded",
    "SubmitResult",
    "SweepServer",
    "grid_to_wire",
    "heal_torn_tail",
    "point_from_wire",
    "point_to_wire",
]
