"""CLI for the sweep server: ``python -m repro.serve <command>``.

Commands::

    serve     start a daemon: bind, load/create the result store, serve
              until a client sends ``shutdown`` (or Ctrl-C)
    submit    build a sweep grid from a named scenario and submit it;
              prints one row per record with its cache verdict
    status    print the server's serving stats and store summary
    shutdown  ask the server to stop

Example session (two shells)::

    $ python -m repro.serve serve --port 7414 --store results.jsonl
    $ python -m repro.serve submit --port 7414 --scenario paper \\
          --transactions 60 --axis write_buffer_depth --values 1,2,4,8
    $ python -m repro.serve submit --port 7414 --scenario paper \\
          --transactions 60 --axis write_buffer_depth --values 1,2,4,8
    # second pass: 100% cache hits
    $ python -m repro.serve shutdown --port 7414
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import repro.core  # noqa: F401  (anchor package import order)
from repro.errors import ReproError
from repro.serve.client import ServeClient
from repro.serve.server import SweepServer
from repro.serve.store import ResultStore
from repro.system import scenario, scenario_names, sweep

#: Default TCP port (no IANA meaning; just stable across the docs).
DEFAULT_PORT = 7414


def _parse_values(text: str) -> List[object]:
    """Comma-separated sweep values: JSON scalars, else plain strings."""
    values: List[object] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        try:
            values.append(json.loads(chunk))
        except ValueError:
            values.append(chunk)
    return values


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)


def cmd_serve(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    server = SweepServer(
        store=store,
        backend=args.backend,
        workers=args.workers,
        timeout=args.timeout,
        host=args.host,
        port=args.port,
    )
    host, port = server.start()
    loaded = len(store)
    print(
        f"repro.serve: listening on {host}:{port} "
        f"(backend={server.runner.backend}, store="
        f"{args.store or 'in-memory'}, {loaded} cached records)"
    )
    sys.stdout.flush()
    try:
        server.wait()
    except KeyboardInterrupt:
        server.stop()
    print("repro.serve: stopped")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    spec = scenario(args.scenario, transactions=args.transactions)
    values = _parse_values(args.values)
    grid = sweep(spec, axis=args.axis, values=values, engine=args.engine)
    client = ServeClient(args.host, args.port)
    result = client.submit(grid, max_cycles=args.max_cycles)
    print(
        f"{'label':<24} {'source':<9} {'cycles':>8} {'txns':>6} {'util':>6}"
    )
    for record, source in zip(result.records, result.sources):
        print(
            f"{record.label:<24} {source:<9} {record.cycles:>8} "
            f"{record.transactions:>6} {record.utilization:>6.3f}"
        )
    print(
        f"\n{len(result.records)} records: {result.hits} cached, "
        f"{result.misses} simulated (hit rate {result.hit_rate:.0%})"
    )
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    print(json.dumps(client.status(), indent=2, sort_keys=True))
    return 0


def cmd_shutdown(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    client.shutdown()
    print("server acknowledged shutdown")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the sweep daemon")
    _add_endpoint(serve)
    serve.add_argument(
        "--store",
        default=None,
        help="JSON-lines result store path (default: in-memory only)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "batch"),
        default="auto",
        help="sweep backend; auto picks batch (lockstep) when numpy "
        "is available and no pool knob was given",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point delivery deadline in seconds (process backend)",
    )
    serve.set_defaults(func=cmd_serve)

    submit = commands.add_parser("submit", help="submit a sweep grid")
    _add_endpoint(submit)
    submit.add_argument(
        "--scenario",
        default="paper",
        choices=scenario_names(),
        help="named scenario to build the spec from",
    )
    submit.add_argument("--transactions", type=int, default=60)
    submit.add_argument("--axis", default="write_buffer_depth")
    submit.add_argument(
        "--values",
        default="1,2,4,8",
        help="comma-separated sweep values (JSON scalars)",
    )
    submit.add_argument("--engine", default="tlm")
    submit.add_argument("--max-cycles", type=int, default=None)
    submit.set_defaults(func=cmd_submit)

    status = commands.add_parser("status", help="print serving stats")
    _add_endpoint(status)
    status.set_defaults(func=cmd_status)

    shutdown = commands.add_parser("shutdown", help="stop the daemon")
    _add_endpoint(shutdown)
    shutdown.set_defaults(func=cmd_shutdown)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
