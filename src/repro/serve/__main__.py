"""CLI for the sweep server: ``python -m repro.serve <command>``.

Commands::

    serve     start a daemon: bind, load/create the result store and
              write-ahead journal, recover unfinished journaled work,
              serve until a client sends ``shutdown`` (SIGTERM and
              Ctrl-C drain gracefully: in-flight work finishes, the
              queued remainder stays journaled for the next start)
    submit    build a sweep grid from a named scenario and submit it;
              prints one row per record with its cache verdict
    status    print the server's serving stats, store and journal
              summaries (``--json`` for one machine-readable object)
    drain     ask the server to finish in-flight work and stop
    shutdown  ask the server to stop immediately

Example session (two shells)::

    $ python -m repro.serve serve --port 7414 --store results.jsonl \\
          --journal journal.jsonl
    $ python -m repro.serve submit --port 7414 --scenario paper \\
          --transactions 60 --axis write_buffer_depth --values 1,2,4,8
    $ python -m repro.serve submit --port 7414 --scenario paper \\
          --transactions 60 --axis write_buffer_depth --values 1,2,4,8
    # second pass: 100% cache hits
    $ python -m repro.serve status --port 7414 --json
    $ python -m repro.serve shutdown --port 7414
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import threading
from typing import List, Optional

import repro.core  # noqa: F401  (anchor package import order)
from repro.errors import ReproError
from repro.serve.client import ServeClient
from repro.serve.journal import Journal
from repro.serve.server import SweepServer
from repro.serve.store import ResultStore
from repro.system import scenario, scenario_names, sweep

#: Default TCP port (no IANA meaning; just stable across the docs).
DEFAULT_PORT = 7414


def _parse_values(text: str) -> List[object]:
    """Comma-separated sweep values: JSON scalars, else plain strings."""
    values: List[object] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        try:
            values.append(json.loads(chunk))
        except ValueError:
            values.append(chunk)
    return values


def _add_endpoint(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)


def cmd_serve(args: argparse.Namespace) -> int:
    store = ResultStore(args.store)
    journal = Journal(args.journal)
    supervision = {
        name: value
        for name in (
            "max_queue_depth",
            "max_inflight",
            "quarantine_threshold",
        )
        if (value := getattr(args, name)) is not None
    }
    server = SweepServer(
        store=store,
        journal=journal,
        backend=args.backend,
        workers=args.workers,
        timeout=args.timeout,
        host=args.host,
        port=args.port,
        **supervision,
    )
    recover = len(journal)

    def _drain_signal(signum, _frame) -> None:
        # Raw write: the interrupted main thread may be inside a
        # buffered-stdout flush, which print() would re-enter.
        name = signal.Signals(signum).name
        os.write(1, f"repro.serve: {name} received, draining\n".encode())
        # Never drain on the main thread the signal interrupted: drain
        # joins worker threads, and those may be blocked on locks the
        # interrupted frame holds.
        threading.Thread(target=server.drain, daemon=True).start()

    # Installed before the banner: anyone who read "listening on" may
    # already be sending signals.
    signal.signal(signal.SIGTERM, _drain_signal)
    host, port = server.start()
    print(
        f"repro.serve: listening on {host}:{port} "
        f"(backend={server.runner.backend}, store="
        f"{args.store or 'in-memory'}, {len(store)} cached records, "
        f"journal={args.journal or 'in-memory'}, {recover} pending "
        f"recovered)"
    )
    sys.stdout.flush()
    try:
        server.wait()
    except KeyboardInterrupt:
        print("repro.serve: interrupt received, draining")
        server.drain()
    print("repro.serve: stopped")
    return 0


def cmd_submit(args: argparse.Namespace) -> int:
    spec = scenario(args.scenario, transactions=args.transactions)
    values = _parse_values(args.values)
    grid = sweep(spec, axis=args.axis, values=values, engine=args.engine)
    client = ServeClient(args.host, args.port, retries=args.retries)
    result = client.submit(grid, max_cycles=args.max_cycles)
    print(
        f"{'label':<24} {'source':<12} {'cycles':>8} {'txns':>6} {'util':>6}"
    )
    for record, source in zip(result.records, result.sources):
        print(
            f"{record.label:<24} {source:<12} {record.cycles:>8} "
            f"{record.transactions:>6} {record.utilization:>6.3f}"
        )
    print(
        f"\n{len(result.records)} records: {result.hits} cached, "
        f"{result.misses} simulated (hit rate {result.hit_rate:.0%})"
        + (
            f", {result.quarantined} quarantined"
            if result.quarantined
            else ""
        )
    )
    if client.retry_log:
        print(f"{len(client.retry_log)} retries taken (backoff applied)")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    status = client.status()
    if args.json:
        # One machine-readable object on stdout, nothing else.
        print(json.dumps(status, sort_keys=True))
        return 0
    stats = status["stats"] or {}
    store = status["store"] or {}
    journal = status["journal"] or {}
    print(f"uptime:        {stats.get('uptime_seconds', 0.0):.1f}s")
    print(
        f"state:         "
        f"{'draining' if stats.get('draining') else 'serving'}"
        f" (backend={stats.get('backend')})"
    )
    print(
        f"queue:         {stats.get('queue_depth')} queued "
        f"(bound {stats.get('queue_bound')}), "
        f"{stats.get('in_flight')} in flight, "
        f"high-water {stats.get('max_queue_depth')}"
    )
    print(
        f"traffic:       {stats.get('submissions')} submissions, "
        f"{stats.get('points')} points, hit rate "
        f"{100.0 * float(stats.get('hit_rate', 0.0)):.1f}%, "
        f"{stats.get('shed_submissions')} shed"
    )
    print(
        f"store:         {store.get('entries')} records "
        f"({store.get('path') or 'in-memory'})"
    )
    print(
        f"journal:       {journal.get('pending')} pending, "
        f"{journal.get('completed')} completed "
        f"({journal.get('path') or 'in-memory'})"
    )
    quarantine = stats.get("quarantine") or []
    print(f"quarantine:    {len(quarantine)} point(s)")
    for entry in quarantine:
        print(
            f"  - {entry.get('label')} [{entry.get('key')}] "
            f"({entry.get('crashes')} crashes)"
        )
    return 0


def cmd_drain(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    if client.drain():
        print("server acknowledged drain")
        return 0
    print("server already gone")
    return 0


def cmd_shutdown(args: argparse.Namespace) -> int:
    client = ServeClient(args.host, args.port)
    if client.shutdown():
        print("server acknowledged shutdown")
    else:
        # Idempotent teardown: a dead server is a drained server.
        print("server already gone")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    commands = parser.add_subparsers(dest="command", required=True)

    serve = commands.add_parser("serve", help="run the sweep daemon")
    _add_endpoint(serve)
    serve.add_argument(
        "--store",
        default=None,
        help="JSON-lines result store path (default: in-memory only)",
    )
    serve.add_argument(
        "--journal",
        default=None,
        help="write-ahead journal path: accepted work survives crashes "
        "and re-runs on restart (default: in-memory only)",
    )
    serve.add_argument(
        "--backend",
        choices=("auto", "serial", "process", "batch"),
        default="auto",
        help="sweep backend; auto picks batch (lockstep) when numpy "
        "is available and no pool knob was given",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point delivery deadline in seconds (process backend)",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=None,
        dest="max_queue_depth",
        help="bound on accepted-but-unfinished points; beyond it "
        "submissions shed with an 'overloaded' retry-after event",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        dest="max_inflight",
        help="points one executor burst hands the runner at a time",
    )
    serve.add_argument(
        "--quarantine-threshold",
        type=int,
        default=None,
        dest="quarantine_threshold",
        help="consecutive crashed attempts that park a point",
    )
    serve.set_defaults(func=cmd_serve)

    submit = commands.add_parser("submit", help="submit a sweep grid")
    _add_endpoint(submit)
    submit.add_argument(
        "--scenario",
        default="paper",
        choices=scenario_names(),
        help="named scenario to build the spec from",
    )
    submit.add_argument("--transactions", type=int, default=60)
    submit.add_argument("--axis", default="write_buffer_depth")
    submit.add_argument(
        "--values",
        default="1,4",
        help="comma-separated sweep values (JSON scalars)",
    )
    submit.add_argument("--engine", default="tlm")
    submit.add_argument("--max-cycles", type=int, default=None)
    submit.add_argument(
        "--retries",
        type=int,
        default=3,
        help="transient-failure retries (backoff with jitter)",
    )
    submit.set_defaults(func=cmd_submit)

    status = commands.add_parser("status", help="print serving stats")
    _add_endpoint(status)
    status.add_argument(
        "--json",
        action="store_true",
        help="one machine-readable JSON object instead of the summary",
    )
    status.set_defaults(func=cmd_status)

    drain = commands.add_parser(
        "drain", help="gracefully drain and stop the daemon"
    )
    _add_endpoint(drain)
    drain.set_defaults(func=cmd_drain)

    shutdown = commands.add_parser("shutdown", help="stop the daemon")
    _add_endpoint(shutdown)
    shutdown.set_defaults(func=cmd_shutdown)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ReproError, ConnectionError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
