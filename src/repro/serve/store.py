"""Content-addressed result store: point key → persisted ``RunRecord``.

The store is the serving layer's memory: every completed simulation is
filed under its :func:`~repro.exec.records.point_key` — the canonical
hash of *what was simulated* — so any later submission of the same
spec/workload/seed/engine/ceiling replays the stored record instead of
re-running.  Simulations are deterministic, so a hit is free **and
provably correct**: the replayed record equals what a fresh run would
produce (record equality excludes wall time; the test suite pins this).

Persistence is JSON-lines on disk (one ``{"key": ..., "record": ...}``
object per line, appended on every insert) with a plain in-memory
index, so a restarted server re-opens its cache by replaying the file.
Corrupt trailing lines (a crash mid-append) are tolerated and dropped.

**First write wins — in memory and on disk.**  :meth:`ResultStore.put`
refuses a key already indexed, and the loader keeps the *first*
occurrence of a key when replaying the file, so the contract holds
even when two server processes append to the same path concurrently:
whichever writer files a key first is authoritative, later duplicates
are inert lines (determinism makes them equal anyway — nothing is
lost, the file merely carries a redundant record).  A writer that
crashes mid-append leaves a torn line *without* a trailing newline;
before its first append every store (and the write-ahead journal,
which shares this discipline via :func:`heal_torn_tail`) terminates
such a tail so a concurrent or later writer's next record starts on a
fresh line instead of merging into — and corrupting — the torn one.
Only the torn fragment itself is ever lost.

**Failure rows are never authoritative.**  A record whose
:attr:`~repro.exec.records.RunRecord.failed` flag is set — a crash or
timeout row from ``SweepRunner(on_error="record")`` — describes what
happened to one attempt, not what the simulation computes; caching it
would turn a transient failure into a permanent one.  :meth:`put`
refuses such rows (counted in :attr:`rejected_failures`), so a retry
after a crash re-runs the point.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.errors import ConfigError
from repro.exec.records import RunRecord


def heal_torn_tail(path: Path) -> bool:
    """Terminate a torn trailing line left by a crash mid-append.

    A JSON-lines writer killed between ``write`` and the trailing
    newline leaves a partial last line; appending straight after it
    would merge the next (valid) entry into the torn fragment and lose
    *both*.  This stamps the missing newline so the fragment stays an
    isolated corrupt line — skipped on load — and every later append
    starts clean.  Returns whether a heal was needed.
    """
    if not path.exists() or path.stat().st_size == 0:
        return False
    with path.open("r+b") as handle:
        handle.seek(-1, 2)
        if handle.read(1) == b"\n":
            return False
        handle.write(b"\n")
    return True


class ResultStore:
    """Thread-safe content-addressed ``RunRecord`` cache.

    *path* is the JSON-lines backing file; ``None`` keeps the store
    purely in-memory (hermetic tests, throwaway servers).  An existing
    file is loaded eagerly — the in-memory index always mirrors disk.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._path = None if path is None else Path(path)
        self._lock = threading.Lock()
        self._index: Dict[str, RunRecord] = {}
        self.rejected_failures = 0
        #: Lines skipped while loading (corrupt/truncated appends).
        self.skipped_lines = 0
        if self._path is not None and self._path.exists():
            self._load()

    # -- persistence -----------------------------------------------------------

    def _load(self) -> None:
        assert self._path is not None
        with self._path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    key = entry["key"]
                    record = RunRecord.from_dict(entry["record"])
                except (ValueError, KeyError, TypeError, ConfigError):
                    # A crash mid-append leaves at most one bad line;
                    # dropping it loses one cached point, nothing more.
                    self.skipped_lines += 1
                    continue
                if record.failed:  # defence against hand-edited stores
                    self.rejected_failures += 1
                    continue
                # First write wins: a concurrent second writer may have
                # appended a duplicate key; the earliest line is the
                # authoritative one.
                self._index.setdefault(str(key), record)

    def _append(self, key: str, record: RunRecord) -> None:
        assert self._path is not None
        self._path.parent.mkdir(parents=True, exist_ok=True)
        # A concurrent holder of this path may have crashed mid-append
        # at any point; close its torn line before filing after it.
        heal_torn_tail(self._path)
        entry = {"key": key, "record": record.to_dict()}
        with self._path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()

    # -- the cache interface ---------------------------------------------------

    def get(self, key: str) -> Optional[RunRecord]:
        """The record filed under *key*, or ``None``."""
        with self._lock:
            return self._index.get(key)

    def put(self, key: str, record: RunRecord) -> bool:
        """File *record* under *key*; returns whether it was stored.

        Refused (``False``) for failure rows — crash/timeout records
        must not shadow a future successful run — and for keys already
        present (first write wins; determinism makes any duplicate
        equal anyway, so nothing is lost).
        """
        if record.failed:
            with self._lock:
                self.rejected_failures += 1
            return False
        with self._lock:
            if key in self._index:
                return False
            self._index[key] = record
            if self._path is not None:
                self._append(key, record)
            return True

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[str, RunRecord]]:
        """Snapshot of the ``(key, record)`` pairs (stable to iterate)."""
        with self._lock:
            return iter(list(self._index.items()))

    @property
    def path(self) -> Optional[Path]:
        return self._path

    def stats(self) -> Dict[str, object]:
        """One JSON-ready summary block (served by ``status``)."""
        with self._lock:
            return {
                "entries": len(self._index),
                "path": None if self._path is None else str(self._path),
                "rejected_failures": self.rejected_failures,
                "skipped_lines": self.skipped_lines,
            }
