"""The persistent sweep server: submissions in, cached-or-fresh rows out.

:class:`SweepServer` is a long-running front end over
:class:`~repro.exec.runner.SweepRunner`:

* **accepts** spec+workload submissions over the line-delimited-JSON
  socket protocol (:mod:`repro.serve.protocol`), any number of
  concurrent clients;
* **dedupes** every submitted point against the content-addressed
  :class:`~repro.serve.store.ResultStore` (a completed identical run
  replays from disk) *and* against in-flight work (a point some other
  client is already running is joined, not re-run);
* **batches** the remaining cold points of concurrently queued
  submissions onto one shared :class:`SweepRunner` grid — a process
  backend amortises its pool across every client; and
* **streams** per-point results back to each subscriber in grid order
  as they complete, driven by the runner's ``on_result`` hook rather
  than polling.

Execution always runs under ``on_error="record"``: a crashing or
timed-out point yields a failure row to its subscribers but never
kills the daemon — and the store refuses to cache such rows, so a
retry re-runs the point instead of replaying the failure.
"""

from __future__ import annotations

import io
import queue
import socketserver
import threading
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError
from repro.exec.batch import HAVE_NUMPY
from repro.exec.records import RunRecord, point_key
from repro.exec.runner import SweepRunner
from repro.serve.protocol import (
    OPS,
    PROTOCOL,
    point_from_wire,
    read_message,
    write_message,
)
from repro.serve.store import ResultStore
from repro.system.spec import SweepPoint


class _Pending:
    """One cold point queued or running: resolves to exactly one record."""

    __slots__ = ("point", "max_cycles", "event", "record")

    def __init__(self, point: SweepPoint, max_cycles: Optional[int]) -> None:
        self.point = point
        self.max_cycles = max_cycles
        self.event = threading.Event()
        self.record: Optional[RunRecord] = None

    def wait(self) -> RunRecord:
        self.event.wait()
        assert self.record is not None
        return self.record


#: One submission point's routing decision: the point, its content key,
#: where the record comes from, and the ready record or pending slot.
_Outcome = Tuple[SweepPoint, str, str, Union[RunRecord, _Pending]]


class _ServeTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    owner: "SweepServer"


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a loop of requests, each answered in full."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        owner = self.server.owner  # type: ignore[attr-defined]
        reader = io.TextIOWrapper(self.rfile, encoding="utf-8")
        writer = io.TextIOWrapper(self.wfile, encoding="utf-8")
        while True:
            try:
                message = read_message(reader)
            except ConfigError as exc:
                self._safe_emit(writer, {"event": "error", "message": str(exc)})
                return
            if message is None:
                return
            if not message:
                continue
            try:
                if not self._dispatch(owner, message, writer):
                    return
            except (BrokenPipeError, ConnectionError):
                return
            except ConfigError as exc:
                if not self._safe_emit(
                    writer, {"event": "error", "message": str(exc)}
                ):
                    return

    def _dispatch(self, owner, message, writer) -> bool:
        op = message.get("op")
        if op not in OPS:
            raise ConfigError(f"unknown op {op!r}; choose from {OPS}")
        if op == "ping":
            write_message(writer, {"event": "pong", "protocol": PROTOCOL})
            return True
        if op == "status":
            write_message(
                writer,
                {
                    "event": "status",
                    "stats": owner.stats(),
                    "store": owner.store.stats(),
                },
            )
            return True
        if op == "shutdown":
            write_message(writer, {"event": "bye"})
            # stop() joins the acceptor loop; never call it from a
            # handler thread synchronously while it waits on us.
            threading.Thread(target=owner.stop, daemon=True).start()
            return False
        self._handle_submit(owner, message, writer)
        return True

    def _handle_submit(self, owner, message, writer) -> None:
        raw_points = message.get("points")
        if not isinstance(raw_points, list) or not raw_points:
            raise ConfigError("submit needs a non-empty 'points' list")
        max_cycles = message.get("max_cycles")
        if max_cycles is not None:
            max_cycles = int(max_cycles)
            if max_cycles <= 0:
                raise ConfigError(
                    f"max_cycles must be positive, got {max_cycles}"
                )
        points = [point_from_wire(entry) for entry in raw_points]
        job = owner._next_job()
        outcomes = owner.route(points, max_cycles)
        write_message(
            writer,
            {
                "event": "accepted",
                "job": job,
                "points": len(points),
                "protocol": PROTOCOL,
            },
        )
        hits = misses = 0
        for index, (point, key, source, slot) in enumerate(outcomes):
            if isinstance(slot, _Pending):
                record = slot.wait()
            else:
                record = slot
            if source == "run":
                misses += 1
            else:
                hits += 1
            # A record replayed for a different submitter keeps its
            # content but takes the requester's grid identity.
            record = replace(
                record,
                label=point.label,
                axis=point.axis,
                value=repr(point.value),
            )
            write_message(
                writer,
                {
                    "event": "result",
                    "job": job,
                    "index": index,
                    "key": key,
                    "cached": source != "run",
                    "source": source,
                    "record": record.to_dict(),
                },
            )
        write_message(
            writer,
            {"event": "done", "job": job, "hits": hits, "misses": misses},
        )

    @staticmethod
    def _safe_emit(writer, message) -> bool:
        try:
            write_message(writer, message)
            return True
        except (BrokenPipeError, ConnectionError, ValueError):
            return False


class SweepServer:
    """A persistent simulation service over one shared result store.

    *backend*/*workers*/*timeout*/*repeats* configure the underlying
    :class:`SweepRunner` (``on_error`` is always ``"record"`` — a bad
    point must produce a failure row, not kill the daemon).  The default
    ``backend="auto"`` resolves to the lockstep ``batch`` backend when
    numpy is available and no process-pool knob (*workers*/*timeout*)
    was requested: each coalesced burst of cold points then runs its
    eligible single-master TLM members through one structure-of-arrays
    program, with per-point serial fallback for the rest — records stay
    bit-identical either way, and :meth:`stats` reports which path
    served each burst.  *store* defaults to a fresh in-memory
    :class:`ResultStore`; hand in a path-backed one to persist results
    across restarts.

    Usable as a context manager::

        with SweepServer(store=ResultStore("results.jsonl")) as server:
            host, port = server.address
            ...  # clients connect
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        backend: str = "auto",
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        repeats: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.store = store if store is not None else ResultStore()
        if backend == "auto":
            if workers is not None or timeout is not None:
                backend = "process"  # pool knobs imply the pool backend
            elif HAVE_NUMPY:
                backend = "batch"
            else:
                backend = "serial"
        self.runner = SweepRunner(
            backend=backend,
            workers=workers,
            timeout=timeout,
            repeats=repeats,
            on_error="record",
        )
        self._host = host
        self._port = port
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Pending] = {}
        self._work: "queue.Queue[Optional[List[Tuple[str, _Pending]]]]" = (
            queue.Queue()
        )
        self._tcp: Optional[_ServeTCPServer] = None
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()
        self._job_counter = 0
        self._stats = {
            "submissions": 0,
            "points": 0,
            "hits_store": 0,
            "hits_inflight": 0,
            "misses": 0,
            "failure_rows": 0,
            "max_queue_depth": 0,
            "bursts": 0,
        }
        #: Aggregate dispatch-label counts ("batch", "serial-fallback",
        #: "serial", "process") over every executed burst.
        self._dispatch: Dict[str, int] = {}
        #: Per-burst dispatch summaries, most recent last (bounded).
        self._burst_log: List[Dict[str, int]] = []

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, spawn the acceptor and executor threads, return address."""
        if self._tcp is not None:
            raise ConfigError("server already started")
        self._tcp = _ServeTCPServer((self._host, self._port), _Handler)
        self._tcp.owner = self
        acceptor = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-acceptor",
            daemon=True,
        )
        executor = threading.Thread(
            target=self._executor_loop, name="serve-executor", daemon=True
        )
        self._threads = [acceptor, executor]
        for thread in self._threads:
            thread.start()
        return self.address

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when ``port=0``)."""
        if self._tcp is None:
            raise ConfigError("server not started")
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def stop(self) -> None:
        """Stop accepting, drain the executor, fail leftover pendings."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
        self._work.put(None)
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        with self._lock:
            leftovers = list(self._inflight.items())
            self._inflight.clear()
        for _key, pending in leftovers:
            pending.record = RunRecord.from_error(
                pending.point, "server stopped before the point ran"
            )
            pending.event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops (a client sent ``shutdown``)."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "SweepServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- submission routing ----------------------------------------------------

    def _next_job(self) -> int:
        with self._lock:
            self._job_counter += 1
            return self._job_counter

    def route(
        self, points: Sequence[SweepPoint], max_cycles: Optional[int] = None
    ) -> List[_Outcome]:
        """Dedupe *points* against the store and in-flight work.

        Returns one outcome per point, in grid order: a ready record
        (store hit), an existing pending (in-flight hit — joined, not
        re-run) or a freshly queued pending.  The cold remainder is
        enqueued as one batch for the executor.
        """
        if self._stopped.is_set():
            raise ConfigError("server is stopped")
        outcomes: List[_Outcome] = []
        to_run: List[Tuple[str, _Pending]] = []
        with self._lock:
            self._stats["submissions"] += 1
            self._stats["points"] += len(points)
            for point in points:
                key = point_key(
                    point.spec, engine=point.engine, max_cycles=max_cycles
                )
                cached = self.store.get(key)
                if cached is not None:
                    self._stats["hits_store"] += 1
                    outcomes.append((point, key, "store", cached))
                    continue
                pending = self._inflight.get(key)
                if pending is not None:
                    self._stats["hits_inflight"] += 1
                    outcomes.append((point, key, "inflight", pending))
                    continue
                pending = _Pending(point, max_cycles)
                self._inflight[key] = pending
                to_run.append((key, pending))
                self._stats["misses"] += 1
                outcomes.append((point, key, "run", pending))
            self._stats["max_queue_depth"] = max(
                self._stats["max_queue_depth"], len(self._inflight)
            )
        if to_run:
            self._work.put(to_run)
        return outcomes

    # -- execution -------------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            batch = self._work.get()
            if batch is None:
                return
            stop_after = False
            # Batch every already-queued submission onto one grid: the
            # runner's pool (process backend) then shards all clients'
            # cold points together.
            while True:
                try:
                    extra = self._work.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    stop_after = True
                    break
                batch.extend(extra)
            self._run_batch(batch)
            if stop_after:
                return

    def _run_batch(self, batch: List[Tuple[str, _Pending]]) -> None:
        points = [pending.point for _key, pending in batch]
        ceilings = {
            id(pending.point): pending.max_cycles for _key, pending in batch
        }

        def finish(index: int, record: RunRecord) -> None:
            key, pending = batch[index]
            self._finish(key, pending, record)

        try:
            self.runner.run(
                points,
                max_cycles=lambda point: ceilings[id(point)],
                on_result=finish,
            )
            self._account_burst(list(self.runner.dispatch_log))
        except Exception as exc:  # infrastructure failure, not a point crash
            for key, pending in batch:
                if not pending.event.is_set():
                    self._finish(
                        key,
                        pending,
                        RunRecord.from_error(
                            pending.point, f"{type(exc).__name__}: {exc}"
                        ),
                    )

    def _account_burst(self, dispatch: List[str]) -> None:
        """Record which backend path served each point of one burst."""
        summary: Dict[str, int] = {}
        for label in dispatch:
            summary[label] = summary.get(label, 0) + 1
        with self._lock:
            self._stats["bursts"] += 1
            for label, count in summary.items():
                self._dispatch[label] = self._dispatch.get(label, 0) + count
            self._burst_log.append(summary)
            del self._burst_log[:-32]  # bounded: last 32 bursts

    def _finish(self, key: str, pending: _Pending, record: RunRecord) -> None:
        self.store.put(key, record)  # refuses failure rows itself
        with self._lock:
            self._inflight.pop(key, None)
            if record.failed:
                self._stats["failure_rows"] += 1
        pending.record = record
        pending.event.set()

    # -- introspection ---------------------------------------------------------

    def queue_depth(self) -> int:
        """Points currently queued or running."""
        with self._lock:
            return len(self._inflight)

    def stats(self) -> Dict[str, object]:
        """JSON-ready serving counters (the ``status`` op's payload)."""
        with self._lock:
            stats = dict(self._stats)
            stats["queue_depth"] = len(self._inflight)
            stats["dispatch"] = dict(self._dispatch)
            stats["burst_backends"] = [dict(b) for b in self._burst_log]
        hits = stats["hits_store"] + stats["hits_inflight"]
        stats["hits"] = hits
        total = hits + stats["misses"]
        stats["hit_rate"] = round(hits / total, 4) if total else 0.0
        stats["backend"] = self.runner.backend
        return stats
