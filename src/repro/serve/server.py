"""The supervised sweep server: submissions in, cached-or-fresh rows out.

:class:`SweepServer` is a long-running front end over
:class:`~repro.exec.runner.SweepRunner`:

* **accepts** spec+workload submissions over the line-delimited-JSON
  socket protocol (:mod:`repro.serve.protocol`), any number of
  concurrent clients;
* **journals** every accepted point to a write-ahead
  :class:`~repro.serve.journal.Journal` *before* queueing it, so a
  server killed mid-batch restarted on the same store+journal re-runs
  exactly the unfinished remainder (finished work replays from the
  :class:`~repro.serve.store.ResultStore`) — no accepted work is ever
  lost, no finished point ever runs twice;
* **dedupes** every submitted point against the content-addressed
  store (a completed identical run replays from disk) *and* against
  in-flight work (a point some other client is already running is
  joined, not re-run);
* **sheds load** instead of queueing unboundedly: a submission that
  would push the queue past ``max_queue_depth`` is refused whole with
  a structured ``overloaded`` event carrying a ``retry_after`` hint
  (idempotent submissions make the retry safe), and ``max_inflight``
  bounds how many points one executor burst hands the runner;
* **drains** gracefully on request (the ``drain`` op, ``SIGTERM`` in
  the CLI, or :meth:`drain`): new submissions are refused with a
  ``draining`` event, the chunk already executing finishes and files
  its results, and the queued remainder stays journaled for the next
  start;
* **quarantines** poisoned points: a point whose attempts crash
  ``quarantine_threshold`` consecutive times — cleanly-recorded
  failures and server-killing attempts both count, across restarts —
  is answered with an immediate error row instead of re-crashing every
  batch forever (visible in ``status``); and
* **streams** per-point results back to each subscriber in grid order
  as they complete, driven by the runner's ``on_result`` hook rather
  than polling.

Execution always runs under ``on_error="record"``: a crashing or
timed-out point yields a failure row to its subscribers but never
kills the daemon — and the store refuses to cache such rows, so a
retry re-runs the point instead of replaying the failure.
"""

from __future__ import annotations

import io
import queue
import socketserver
import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError, ReproError
from repro.exec.batch import HAVE_NUMPY
from repro.exec.records import RunRecord, point_key
from repro.exec.runner import SweepRunner
from repro.serve.journal import Journal
from repro.serve.protocol import (
    OPS,
    PROTOCOL,
    point_from_wire,
    point_to_wire,
    read_message,
    write_message,
)
from repro.serve.store import ResultStore
from repro.system.spec import SweepPoint

#: Default bound on accepted-but-unfinished points (queued + running).
DEFAULT_MAX_QUEUE_DEPTH = 256

#: Default consecutive-crash count that parks a point in quarantine.
DEFAULT_QUARANTINE_THRESHOLD = 3


class ServerOverloaded(ReproError):
    """The submission was refused whole: the queue bound would be hit."""

    def __init__(self, message: str, retry_after: float, queue_depth: int):
        super().__init__(message)
        self.retry_after = retry_after
        self.queue_depth = queue_depth


class ServerDraining(ReproError):
    """The server is draining (or stopped) and refuses new submissions."""


class _Pending:
    """One cold point queued or running: resolves to exactly one record."""

    __slots__ = ("point", "max_cycles", "event", "record")

    def __init__(self, point: SweepPoint, max_cycles: Optional[int]) -> None:
        self.point = point
        self.max_cycles = max_cycles
        self.event = threading.Event()
        self.record: Optional[RunRecord] = None

    def wait(self) -> RunRecord:
        self.event.wait()
        assert self.record is not None
        return self.record


#: One submission point's routing decision: the point, its content key,
#: where the record comes from (``"store"``/``"inflight"``/``"run"``/
#: ``"quarantined"``), and the ready record or pending slot.
_Outcome = Tuple[SweepPoint, str, str, Union[RunRecord, _Pending]]


class _ServeTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    owner: "SweepServer"


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a loop of requests, each answered in full."""

    def handle(self) -> None:  # pragma: no cover - exercised via sockets
        owner = self.server.owner  # type: ignore[attr-defined]
        reader = io.TextIOWrapper(self.rfile, encoding="utf-8")
        writer = io.TextIOWrapper(self.wfile, encoding="utf-8")
        while True:
            try:
                message = read_message(reader)
            except ConfigError as exc:
                self._safe_emit(writer, {"event": "error", "message": str(exc)})
                return
            if message is None:
                return
            if not message:
                continue
            try:
                if not self._dispatch(owner, message, writer):
                    return
            except (BrokenPipeError, ConnectionError):
                return
            except ServerOverloaded as exc:
                if not self._safe_emit(
                    writer,
                    {
                        "event": "overloaded",
                        "message": str(exc),
                        "retry_after": exc.retry_after,
                        "queue_depth": exc.queue_depth,
                    },
                ):
                    return
            except ServerDraining as exc:
                if not self._safe_emit(
                    writer, {"event": "draining", "message": str(exc)}
                ):
                    return
            except ConfigError as exc:
                if not self._safe_emit(
                    writer, {"event": "error", "message": str(exc)}
                ):
                    return

    def _dispatch(self, owner, message, writer) -> bool:
        op = message.get("op")
        if op not in OPS:
            raise ConfigError(f"unknown op {op!r}; choose from {OPS}")
        if op == "ping":
            write_message(writer, {"event": "pong", "protocol": PROTOCOL})
            return True
        if op == "status":
            write_message(
                writer,
                {
                    "event": "status",
                    "stats": owner.stats(),
                    "store": owner.store.stats(),
                    "journal": owner.journal.stats(),
                },
            )
            return True
        if op == "drain":
            write_message(
                writer,
                {
                    "event": "draining",
                    "message": "drain acknowledged: finishing in-flight "
                    "work, journaling the rest",
                },
            )
            # Like shutdown: never join the acceptor from a handler
            # thread it is waiting on.
            threading.Thread(target=owner.drain, daemon=True).start()
            return False
        if op == "shutdown":
            write_message(writer, {"event": "bye"})
            # stop() joins the acceptor loop; never call it from a
            # handler thread synchronously while it waits on us.
            threading.Thread(target=owner.stop, daemon=True).start()
            return False
        self._handle_submit(owner, message, writer)
        return True

    def _handle_submit(self, owner, message, writer) -> None:
        raw_points = message.get("points")
        if not isinstance(raw_points, list) or not raw_points:
            raise ConfigError("submit needs a non-empty 'points' list")
        max_cycles = message.get("max_cycles")
        if max_cycles is not None:
            try:
                max_cycles = int(max_cycles)
            except (TypeError, ValueError):
                raise ConfigError(
                    f"max_cycles must be an integer, got {max_cycles!r}"
                ) from None
            if max_cycles <= 0:
                raise ConfigError(
                    f"max_cycles must be positive, got {max_cycles}"
                )
        points = [point_from_wire(entry) for entry in raw_points]
        outcomes = owner.route(points, max_cycles)
        job = owner._next_job()
        write_message(
            writer,
            {
                "event": "accepted",
                "job": job,
                "points": len(points),
                "protocol": PROTOCOL,
            },
        )
        hits = misses = quarantined = 0
        for index, (point, key, source, slot) in enumerate(outcomes):
            if isinstance(slot, _Pending):
                record = slot.wait()
            else:
                record = slot
            if source == "run":
                misses += 1
            elif source == "quarantined":
                quarantined += 1
            else:
                hits += 1
            # A record replayed for a different submitter keeps its
            # content but takes the requester's grid identity.
            record = replace(
                record,
                label=point.label,
                axis=point.axis,
                value=repr(point.value),
            )
            write_message(
                writer,
                {
                    "event": "result",
                    "job": job,
                    "index": index,
                    "key": key,
                    "cached": source in ("store", "inflight"),
                    "source": source,
                    "record": record.to_dict(),
                },
            )
        write_message(
            writer,
            {
                "event": "done",
                "job": job,
                "hits": hits,
                "misses": misses,
                "quarantined": quarantined,
            },
        )

    @staticmethod
    def _safe_emit(writer, message) -> bool:
        try:
            write_message(writer, message)
            return True
        except (BrokenPipeError, ConnectionError, ValueError):
            return False


class SweepServer:
    """A supervised, persistent simulation service over one result store.

    *backend*/*workers*/*timeout*/*repeats* configure the underlying
    :class:`SweepRunner` (``on_error`` is always ``"record"`` — a bad
    point must produce a failure row, not kill the daemon).  The default
    ``backend="auto"`` resolves to the lockstep ``batch`` backend when
    numpy is available and no process-pool knob (*workers*/*timeout*)
    was requested.  *store* defaults to a fresh in-memory
    :class:`ResultStore`; *journal* to an in-memory
    :class:`~repro.serve.journal.Journal` — hand in path-backed ones to
    make results **and accepted work** survive restarts: on
    :meth:`start`, unfinished journaled points re-run automatically
    (or replay from the store when their result already landed).

    Supervision knobs:

    * ``max_queue_depth`` — accepted-but-unfinished points the server
      will hold; a submission that would exceed it is refused whole
      with an ``overloaded`` event (``retry_after`` estimates when the
      backlog will have cleared);
    * ``max_inflight`` — how many points one executor burst hands the
      runner at a time (``None``: the whole coalesced burst);
    * ``quarantine_threshold`` — consecutive crashed attempts (clean
      failure rows and server-killing attempts both count, via the
      journal) after which a point is parked: answered with an
      immediate error row, never executed again, listed in ``status``.

    Usable as a context manager::

        with SweepServer(store=ResultStore("results.jsonl"),
                         journal=Journal("journal.jsonl")) as server:
            host, port = server.address
            ...  # clients connect
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        journal: Optional[Journal] = None,
        backend: str = "auto",
        workers: Optional[int] = None,
        timeout: Optional[float] = None,
        repeats: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue_depth: int = DEFAULT_MAX_QUEUE_DEPTH,
        max_inflight: Optional[int] = None,
        quarantine_threshold: int = DEFAULT_QUARANTINE_THRESHOLD,
    ) -> None:
        if max_queue_depth < 1:
            raise ConfigError(
                f"max_queue_depth must be positive, got {max_queue_depth}"
            )
        if max_inflight is not None and max_inflight < 1:
            raise ConfigError(
                f"max_inflight must be positive, got {max_inflight}"
            )
        if quarantine_threshold < 1:
            raise ConfigError(
                "quarantine_threshold must be positive, got "
                f"{quarantine_threshold}"
            )
        self.store = store if store is not None else ResultStore()
        self.journal = journal if journal is not None else Journal()
        if backend == "auto":
            if workers is not None or timeout is not None:
                backend = "process"  # pool knobs imply the pool backend
            elif HAVE_NUMPY:
                backend = "batch"
            else:
                backend = "serial"
        self.runner = SweepRunner(
            backend=backend,
            workers=workers,
            timeout=timeout,
            repeats=repeats,
            on_error="record",
        )
        self.max_queue_depth = max_queue_depth
        self.max_inflight = max_inflight
        self.quarantine_threshold = quarantine_threshold
        self._host = host
        self._port = port
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Pending] = {}
        self._running: set = set()  # keys an execution attempt has begun for
        self._work: "queue.Queue[Optional[List[Tuple[str, _Pending]]]]" = (
            queue.Queue()
        )
        self._tcp: Optional[_ServeTCPServer] = None
        self._threads: List[threading.Thread] = []
        self._stopped = threading.Event()
        self._draining = threading.Event()
        self._started_at: Optional[float] = None
        self._job_counter = 0
        #: EMA of completed-point wall seconds, for retry_after hints.
        self._avg_point_seconds = 0.2
        self._stats = {
            "submissions": 0,
            "points": 0,
            "hits_store": 0,
            "hits_inflight": 0,
            "misses": 0,
            "failure_rows": 0,
            "max_queue_depth": 0,
            "bursts": 0,
            "shed_submissions": 0,
            "shed_points": 0,
            "quarantined_answers": 0,
            "recovered_rerun": 0,
            "recovery_replayed": 0,
        }
        #: key -> {"label", "crashes"} for parked points.
        self._quarantine: Dict[str, Dict[str, object]] = {}
        for key in self.journal.quarantined(self.quarantine_threshold):
            self._quarantine[key] = {
                "label": self._pending_label(key),
                "crashes": self.journal.crash_count(key),
            }
        #: Aggregate dispatch-label counts ("batch", "serial-fallback",
        #: "serial", "process") over every executed burst.
        self._dispatch: Dict[str, int] = {}
        #: Per-burst dispatch summaries, most recent last (bounded).
        self._burst_log: List[Dict[str, int]] = []

    def _pending_label(self, key: str) -> str:
        for pending_key, wire, _ceiling in self.journal.pending():
            if pending_key == key and isinstance(wire, dict):
                return str(wire.get("label", key))
        return key

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Bind, recover journaled work, spawn the threads, return address."""
        if self._tcp is not None:
            raise ConfigError("server already started")
        self._started_at = time.monotonic()
        self._recover()
        self._tcp = _ServeTCPServer((self._host, self._port), _Handler)
        self._tcp.owner = self
        acceptor = threading.Thread(
            target=self._tcp.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-acceptor",
            daemon=True,
        )
        executor = threading.Thread(
            target=self._executor_loop, name="serve-executor", daemon=True
        )
        self._threads = [acceptor, executor]
        for thread in self._threads:
            thread.start()
        return self.address

    def _recover(self) -> None:
        """Re-enqueue the journal's accepted-but-unfinished work.

        Finished points (their result landed in the store, only the
        ``done`` mark was lost) are marked off and replay for free;
        quarantined points stay parked; the rest re-run exactly as if
        their original submission had just arrived.
        """
        to_run: List[Tuple[str, _Pending]] = []
        with self._lock:
            for key, wire, max_cycles in self.journal.pending():
                if key in self._inflight:
                    continue
                if self.store.get(key) is not None:
                    self.journal.record_done(key)
                    self._stats["recovery_replayed"] += 1
                    continue
                if key in self._quarantine:
                    continue  # parked: visible in status, never re-run
                try:
                    point = point_from_wire(wire)  # type: ignore[arg-type]
                except (ConfigError, ReproError):
                    # A corrupt accept entry cannot be rebuilt; treat it
                    # like the torn line it rode in on.
                    self.journal.record_fail(key, "unrecoverable accept entry")
                    continue
                pending = _Pending(point, max_cycles)
                self._inflight[key] = pending
                to_run.append((key, pending))
                self._stats["recovered_rerun"] += 1
            self._stats["max_queue_depth"] = max(
                self._stats["max_queue_depth"], len(self._inflight)
            )
        if to_run:
            self._work.put(to_run)

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when ``port=0``)."""
        if self._tcp is None:
            raise ConfigError("server not started")
        host, port = self._tcp.server_address[:2]
        return str(host), int(port)

    def drain(self, timeout: Optional[float] = 30.0) -> None:
        """Stop gracefully: refuse new submits, finish in-flight work.

        The chunk the executor is currently running completes and files
        its results (and ``done`` journal marks); queued-but-unstarted
        points are answered with error rows but **stay journaled** —
        the next server started on the same journal re-runs them.  The
        CLI calls this on ``SIGTERM``; clients can request it with the
        ``drain`` op.
        """
        if self._stopped.is_set():
            return
        self._draining.set()
        self._work.put(None)
        executor = next(
            (t for t in self._threads if t.name == "serve-executor"), None
        )
        if (
            executor is not None
            and executor.is_alive()
            and executor is not threading.current_thread()
        ):
            executor.join(timeout)
        self.stop()

    def stop(self) -> None:
        """Stop accepting, drain the executor, fail leftover pendings.

        Abrupt but not lossy: leftover pendings are answered with error
        rows, yet their journal entries keep no terminal mark, so a
        restart on the same journal re-runs them (:meth:`drain` is the
        graceful variant that lets in-flight work finish first).
        """
        if self._stopped.is_set():
            return
        self._draining.set()  # route() refuses from this moment
        self._stopped.set()
        if self._tcp is not None:
            self._tcp.shutdown()
            self._tcp.server_close()
        self._work.put(None)
        for thread in self._threads:
            if thread is not threading.current_thread():
                thread.join(timeout=10.0)
        with self._lock:
            leftovers = list(self._inflight.items())
            self._inflight.clear()
        for _key, pending in leftovers:
            pending.record = RunRecord.from_error(
                pending.point,
                "server stopped before the point ran; the accepted work "
                "is journaled and re-runs on the next start",
            )
            pending.event.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server stops (a client sent ``shutdown``)."""
        return self._stopped.wait(timeout)

    def __enter__(self) -> "SweepServer":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- submission routing ----------------------------------------------------

    def _next_job(self) -> int:
        with self._lock:
            self._job_counter += 1
            return self._job_counter

    def _retry_after(self, queue_depth: int) -> float:
        """Seconds until the current backlog has plausibly cleared."""
        return round(
            min(30.0, max(0.05, queue_depth * self._avg_point_seconds)), 3
        )

    def route(
        self, points: Sequence[SweepPoint], max_cycles: Optional[int] = None
    ) -> List[_Outcome]:
        """Admit, journal and dedupe *points*; one outcome per point.

        Grid order is preserved: a ready record (store hit or
        quarantined error row), an existing pending (in-flight hit —
        joined, not re-run) or a freshly journaled-and-queued pending.
        The cold remainder is enqueued as one batch for the executor.

        Raises :class:`ServerDraining` while draining/stopped and
        :class:`ServerOverloaded` when the cold remainder would push
        the queue past ``max_queue_depth`` — in both cases the whole
        submission is refused and **nothing** is journaled, so the
        retry the client owes us re-submits every point.
        """
        if self._draining.is_set() or self._stopped.is_set():
            raise ServerDraining(
                "server is draining; journaled work resumes on the next "
                "start — retry there"
            )
        outcomes: List[_Outcome] = []
        to_run: List[Tuple[str, _Pending]] = []
        with self._lock:
            # Admission first, without side effects: how many genuinely
            # cold points would this submission add?
            cold_keys = set()
            for point in points:
                key = point_key(
                    point.spec, engine=point.engine, max_cycles=max_cycles
                )
                if (
                    self.store.get(key) is None
                    and key not in self._inflight
                    and key not in self._quarantine
                ):
                    cold_keys.add(key)
            depth = len(self._inflight)
            if depth + len(cold_keys) > self.max_queue_depth:
                self._stats["shed_submissions"] += 1
                self._stats["shed_points"] += len(points)
                raise ServerOverloaded(
                    f"queue depth {depth} + {len(cold_keys)} cold points "
                    f"would exceed max_queue_depth={self.max_queue_depth}",
                    retry_after=self._retry_after(depth),
                    queue_depth=depth,
                )
            self._stats["submissions"] += 1
            self._stats["points"] += len(points)
            for point in points:
                key = point_key(
                    point.spec, engine=point.engine, max_cycles=max_cycles
                )
                cached = self.store.get(key)
                if cached is not None:
                    self._stats["hits_store"] += 1
                    outcomes.append((point, key, "store", cached))
                    continue
                parked = self._quarantine.get(key)
                if parked is not None:
                    self._stats["quarantined_answers"] += 1
                    row = RunRecord.from_error(
                        point,
                        f"quarantined: {parked['crashes']} consecutive "
                        "crashed attempts (see status; clear the journal "
                        "to retry)",
                    )
                    outcomes.append((point, key, "quarantined", row))
                    continue
                pending = self._inflight.get(key)
                if pending is not None:
                    self._stats["hits_inflight"] += 1
                    outcomes.append((point, key, "inflight", pending))
                    continue
                # Genuinely cold: write-ahead journal it, then queue it.
                self.journal.record_accept(
                    key, point_to_wire(point), max_cycles
                )
                pending = _Pending(point, max_cycles)
                self._inflight[key] = pending
                to_run.append((key, pending))
                self._stats["misses"] += 1
                outcomes.append((point, key, "run", pending))
            self._stats["max_queue_depth"] = max(
                self._stats["max_queue_depth"], len(self._inflight)
            )
        if to_run:
            self._work.put(to_run)
        return outcomes

    # -- execution -------------------------------------------------------------

    def _executor_loop(self) -> None:
        while True:
            batch = self._work.get()
            if batch is None:
                return
            stop_after = False
            # Batch every already-queued submission onto one grid: the
            # runner's pool (process backend) then shards all clients'
            # cold points together.
            while True:
                try:
                    extra = self._work.get_nowait()
                except queue.Empty:
                    break
                if extra is None:
                    stop_after = True
                    break
                batch.extend(extra)
            self._run_batch(batch)
            if stop_after or self._draining.is_set():
                return

    def _run_batch(self, batch: List[Tuple[str, _Pending]]) -> None:
        """Run one coalesced burst, ``max_inflight`` points at a time."""
        chunk_size = self.max_inflight or len(batch)
        for begin in range(0, len(batch), chunk_size):
            if self._draining.is_set():
                # Journaled but unstarted: answer the waiting clients,
                # leave the journal entries pending for the next start.
                for key, pending in batch[begin:]:
                    self._abandon(
                        key,
                        pending,
                        "server draining before the point ran; the "
                        "accepted work is journaled and re-runs on the "
                        "next start",
                    )
                return
            self._run_chunk(batch[begin : begin + chunk_size])

    def _run_chunk(self, chunk: List[Tuple[str, _Pending]]) -> None:
        points = [pending.point for _key, pending in chunk]
        ceilings = {
            id(pending.point): pending.max_cycles for _key, pending in chunk
        }

        def started(index: int, _point: SweepPoint) -> None:
            key, _pending = chunk[index]
            self.journal.record_start(key)
            with self._lock:
                self._running.add(key)

        def finish(index: int, record: RunRecord) -> None:
            key, pending = chunk[index]
            self._finish(key, pending, record)

        try:
            self.runner.run(
                points,
                max_cycles=lambda point: ceilings[id(point)],
                on_result=finish,
                on_start=started,
            )
            self._account_burst(list(self.runner.dispatch_log))
        except Exception as exc:  # infrastructure failure, not a point crash
            for key, pending in chunk:
                if not pending.event.is_set():
                    self._finish(
                        key,
                        pending,
                        RunRecord.from_error(
                            pending.point, f"{type(exc).__name__}: {exc}"
                        ),
                    )
        finally:
            with self._lock:
                self._running.difference_update(key for key, _p in chunk)

    def _account_burst(self, dispatch: List[str]) -> None:
        """Record which backend path served each point of one burst."""
        summary: Dict[str, int] = {}
        for label in dispatch:
            summary[label] = summary.get(label, 0) + 1
        with self._lock:
            self._stats["bursts"] += 1
            for label, count in summary.items():
                self._dispatch[label] = self._dispatch.get(label, 0) + count
            self._burst_log.append(summary)
            del self._burst_log[:-32]  # bounded: last 32 bursts

    def _finish(self, key: str, pending: _Pending, record: RunRecord) -> None:
        self.store.put(key, record)  # refuses failure rows itself
        if record.failed:
            self.journal.record_fail(key, record.error)
            crashes = self.journal.crash_count(key)
            with self._lock:
                self._stats["failure_rows"] += 1
                if crashes >= self.quarantine_threshold:
                    self._quarantine[key] = {
                        "label": pending.point.label,
                        "crashes": crashes,
                    }
                self._inflight.pop(key, None)
                self._running.discard(key)
        else:
            self.journal.record_done(key)
            with self._lock:
                self._inflight.pop(key, None)
                self._running.discard(key)
                if record.wall_seconds > 0:
                    self._avg_point_seconds = (
                        0.8 * self._avg_point_seconds
                        + 0.2 * record.wall_seconds
                    )
        pending.record = record
        pending.event.set()

    def _abandon(self, key: str, pending: _Pending, reason: str) -> None:
        """Resolve a waiting client without a journal terminal mark."""
        with self._lock:
            self._inflight.pop(key, None)
        if not pending.event.is_set():
            pending.record = RunRecord.from_error(pending.point, reason)
            pending.event.set()

    # -- introspection ---------------------------------------------------------

    def queue_depth(self) -> int:
        """Points currently queued or running."""
        with self._lock:
            return len(self._inflight)

    def in_flight(self) -> int:
        """Points an execution attempt is currently running for."""
        with self._lock:
            return len(self._running)

    def quarantine(self) -> List[Dict[str, object]]:
        """The parked points: ``{"key", "label", "crashes"}`` rows."""
        with self._lock:
            return [
                {"key": key, **info}
                for key, info in sorted(self._quarantine.items())
            ]

    def stats(self) -> Dict[str, object]:
        """JSON-ready serving counters (the ``status`` op's payload)."""
        with self._lock:
            stats = dict(self._stats)
            stats["queue_depth"] = len(self._inflight)
            stats["in_flight"] = len(self._running)
            stats["dispatch"] = dict(self._dispatch)
            stats["burst_backends"] = [dict(b) for b in self._burst_log]
            stats["quarantine"] = [
                {"key": key, **info}
                for key, info in sorted(self._quarantine.items())
            ]
        stats["queue_bound"] = self.max_queue_depth
        stats["max_inflight"] = self.max_inflight
        stats["quarantine_threshold"] = self.quarantine_threshold
        stats["draining"] = self._draining.is_set()
        stats["stopped"] = self._stopped.is_set()
        stats["uptime_seconds"] = (
            round(time.monotonic() - self._started_at, 3)
            if self._started_at is not None
            else 0.0
        )
        stats["retry_after_hint"] = self._retry_after(stats["queue_depth"])
        hits = stats["hits_store"] + stats["hits_inflight"]
        stats["hits"] = hits
        total = hits + stats["misses"]
        stats["hit_rate"] = round(hits / total, 4) if total else 0.0
        stats["backend"] = self.runner.backend
        return stats
