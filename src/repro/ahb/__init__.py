"""Generic AMBA 2.0 AHB substrate.

Protocol types, burst address math, the shared transaction object, the
address decoder, master traffic agents, transaction-level slaves and the
plain (unextended) AHB bus used as the paper's comparison baseline.
"""

from repro.ahb.arbiter import (
    BaselineArbiter,
    FixedPriorityArbiter,
    RoundRobinArbiter,
    make_baseline_arbiter,
)
from repro.ahb.burst import (
    KB_BOUNDARY,
    beat_addresses,
    check_burst_legal,
    crosses_kb_boundary,
    split_at_kb_boundary,
    transaction_addresses,
)
from repro.ahb.bus import BusRunResult, PlainAhbBus
from repro.ahb.decoder import AddressMap, Region, single_slave_map
from repro.ahb.master import TlmMaster, TrafficItem
from repro.ahb.slave import ApbBridgeSlave, SramSlave, TlmSlave
from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.ahb.types import AccessKind, HBurst, HResp, HSize, HTrans, burst_for_beats

__all__ = [
    "AccessKind",
    "AddressMap",
    "ApbBridgeSlave",
    "BaselineArbiter",
    "BusRunResult",
    "FixedPriorityArbiter",
    "HBurst",
    "HResp",
    "HSize",
    "HTrans",
    "KB_BOUNDARY",
    "PlainAhbBus",
    "Region",
    "RoundRobinArbiter",
    "SramSlave",
    "TlmMaster",
    "TlmSlave",
    "TrafficItem",
    "Transaction",
    "WRITE_BUFFER_MASTER",
    "beat_addresses",
    "burst_for_beats",
    "check_burst_legal",
    "crosses_kb_boundary",
    "make_baseline_arbiter",
    "single_slave_map",
    "split_at_kb_boundary",
    "transaction_addresses",
]
