"""Transaction-level model of a plain AMBA 2.0 AHB bus.

This is the *unextended* baseline the paper motivates against: no QoS
registers, no request pipelining, no write buffer and no Bus Interface
to the memory controller.  Arbitration is re-evaluated only when the bus
falls idle, costs one full cycle of dead time (HBUSREQ → HGRANT), and the
slave receives no advance notice of the next transaction, so a DDR slave
behind this bus cannot interleave banks.

The engine is method-based: a single scheduling loop advances an integer
cycle counter from transaction boundary to transaction boundary, which
is what gives transaction-level models their speed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.ahb.arbiter import BaselineArbiter, FixedPriorityArbiter
from repro.ahb.decoder import AddressMap
from repro.ahb.master import TlmMaster
from repro.ahb.slave import TlmSlave
from repro.ahb.transaction import Transaction
from repro.ahb.types import HResp
from repro.errors import ConfigError, SimulationError

#: Observer signature: ``(txn, grant_cycle, start_cycle, finish_cycle)``.
TransactionObserver = Callable[[Transaction, int, int, int], None]


@dataclass
class BusRunResult:
    """Summary of one bus run, shared by all TLM engines."""

    cycles: int
    transactions: int
    bytes_transferred: int
    busy_cycles: int
    per_master_transactions: List[int] = field(default_factory=list)
    #: Transfers abandoned after a final non-OKAY response.
    error_responses: int = 0
    #: RETRY responses absorbed (each one is a re-arbitrated request).
    retry_responses: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of cycles the data bus carried a transfer."""
        if self.cycles == 0:
            return 0.0
        return self.busy_cycles / self.cycles


class PlainAhbBus:
    """Cycle-counted TLM of a standard AHB bus (the paper's baseline).

    Parameters
    ----------
    masters:
        Traffic agents, one per master, indexed by ``TlmMaster.index``.
    slaves:
        Slave models, indexed by the address map's slave indices.
    address_map:
        The shared system memory map.
    arbiter:
        Baseline arbitration policy (fixed priority by default).
    arbitration_cycles:
        Dead cycles between bus-free and the winner's address phase
        (plain AHB pays this every transaction; AHB+ hides it through
        request pipelining).
    """

    def __init__(
        self,
        masters: Sequence[TlmMaster],
        slaves: Sequence[TlmSlave],
        address_map: AddressMap,
        arbiter: Optional[BaselineArbiter] = None,
        arbitration_cycles: int = 1,
    ) -> None:
        if not masters:
            raise ConfigError("bus needs at least one master")
        if not slaves:
            raise ConfigError("bus needs at least one slave")
        if arbitration_cycles < 0:
            raise ConfigError("arbitration latency cannot be negative")
        self.masters = list(masters)
        self.slaves = list(slaves)
        self.address_map = address_map
        self.arbiter = arbiter if arbiter is not None else FixedPriorityArbiter()
        self.arbitration_cycles = arbitration_cycles
        self._observers: List[TransactionObserver] = []
        self._now = 0
        self._busy_cycles = 0
        self._transactions = 0
        self._bytes = 0

    # -- instrumentation --------------------------------------------------------

    def add_observer(self, observer: TransactionObserver) -> None:
        """Register a per-transaction callback (profiling, assertions)."""
        self._observers.append(observer)

    @property
    def now(self) -> int:
        """Current bus cycle."""
        return self._now

    # -- engine -------------------------------------------------------------------

    def _collect_candidates(self) -> List[Transaction]:
        return [
            txn
            for master in self.masters
            if (txn := master.pending(self._now)) is not None
        ]

    def _advance_to_next_request(self) -> bool:
        """Jump time to the next master request; False when all are done."""
        upcoming = [
            cycle
            for master in self.masters
            if (cycle := master.earliest_request()) is not None
        ]
        if not upcoming:
            return False
        target = min(upcoming)
        if target < self._now:
            raise SimulationError(
                f"next request at {target} lies before current cycle {self._now}"
            )
        self._now = max(self._now, target)
        return True

    def _serve_fault(self, txn: Transaction, grant: int) -> None:
        """One faulted bus presentation: the slave answers ERROR/RETRY.

        The address phase occupies the bus for one response cycle; no
        data beats move, so the throughput counters are untouched.  On
        RETRY the master re-requests and the transfer re-arbitrates; on
        ERROR (or an exhausted retry budget) it is aborted with its
        response recorded.
        """
        code = txn.fault_plan[txn.fault_step]
        txn.fault_step += 1
        start = grant
        finish = grant + 1
        txn.started_at = start
        self._now = finish + 1
        owner = self.masters[txn.master]
        if code == int(HResp.RETRY):
            if owner.retry(txn, finish):
                return  # re-requests; next arbitration round picks it up
        else:
            txn.resp = code
            owner.fail(txn, finish)
        for observer in self._observers:
            observer(txn, grant, start, finish)

    def _serve(self, txn: Transaction) -> None:
        grant = self._now + self.arbitration_cycles
        txn.granted_at = grant
        if txn.fault_step < len(txn.fault_plan):
            self._serve_fault(txn, grant)
            return
        slave = self.slaves[self.address_map.slave_for(txn.addr)]
        slave.idle_until(grant)
        start = slave.access_permitted_at(txn, grant)
        finish = slave.serve(txn, start)
        owner = self.masters[txn.master]
        owner.complete(txn, finish)
        self._transactions += 1
        self._bytes += txn.total_bytes
        self._busy_cycles += finish - start + 1
        for observer in self._observers:
            observer(txn, grant, start, finish)
        # Plain AHB: the bus is free again the cycle after the last beat.
        self._now = finish + 1

    def run(self, max_cycles: Optional[int] = None) -> BusRunResult:
        """Run until all masters are done (or *max_cycles* is reached)."""
        while True:
            if max_cycles is not None and self._now >= max_cycles:
                break
            candidates = self._collect_candidates()
            if not candidates:
                if not self._advance_to_next_request():
                    break
                continue
            winner = self.arbiter.choose(candidates, self._now)
            self._serve(winner)
        return BusRunResult(
            cycles=self._now,
            transactions=self._transactions,
            bytes_transferred=self._bytes,
            busy_cycles=self._busy_cycles,
            per_master_transactions=[
                master.transactions_completed for master in self.masters
            ],
            error_responses=sum(m.error_aborts for m in self.masters),
            retry_responses=sum(m.retry_responses for m in self.masters),
        )
