"""Master-side traffic agents shared by every bus model.

A :class:`TlmMaster` wraps a request source (anything iterable over
:class:`TrafficItem`) and exposes the pending-transaction view the bus
engines need.  The *same* agent class drives the plain AHB bus, the
AHB+ TLM and (via the RTL master FSM) the pin-accurate model, so a
given seed produces the identical transaction stream everywhere — the
precondition for the paper's accuracy comparison.

Timing semantics
----------------
Traffic is closed-loop by default: item *k*'s think time counts from
the completion of item *k-1*.  An item may also carry an absolute
``not_before`` cycle (used by periodic real-time sources); the issue
cycle is then ``max(prev_finish + think, not_before)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional

from repro.ahb.transaction import Transaction
from repro.ahb.types import HResp
from repro.errors import TrafficError


@dataclass
class TrafficItem:
    """One request produced by a traffic source.

    ``deadline_offset`` is relative to the issue cycle; the agent turns
    it into the absolute deadline the AHB+ QoS logic consumes.
    ``absolute_deadline`` overrides it for schedule-driven real-time
    streams (a video frame is late against the frame clock, not against
    whenever the starved master finally got to issue its request).
    """

    txn: Transaction
    think_cycles: int = 0
    not_before: Optional[int] = None
    deadline_offset: Optional[int] = None
    absolute_deadline: Optional[int] = None

    def __post_init__(self) -> None:
        if self.think_cycles < 0:
            raise TrafficError(f"negative think time {self.think_cycles}")
        if self.deadline_offset is not None and self.deadline_offset <= 0:
            raise TrafficError("deadline offset must be positive")
        if self.absolute_deadline is not None and self.absolute_deadline < 0:
            raise TrafficError("absolute deadline cannot be negative")


class TlmMaster:
    """Traffic agent for one bus master.

    The bus engine drives the agent through three calls:

    * :meth:`pending` — the transaction wanting the bus at ``now`` (or
      ``None``),
    * :meth:`earliest_request` — the next cycle at which the agent will
      want the bus (lets the TLM skip idle time), and
    * :meth:`complete` — called when the bus finished serving the
      transaction.
    """

    def __init__(self, index: int, name: str, items: Iterable[TrafficItem]) -> None:
        self.index = index
        self.name = name
        self._items: Iterator[TrafficItem] = iter(items)
        self._exhausted = False
        self._pending: Optional[Transaction] = None
        self._pending_issue = 0
        self._last_finish = 0
        self.completed: List[Transaction] = []
        #: Transfers abandoned after an ERROR response (or retry budget
        #: exhaustion); these still appear in :attr:`completed` with a
        #: non-OKAY ``resp`` so replay/compare layers see them.
        self.error_aborts = 0
        #: Total RETRY responses this master absorbed and re-requested.
        self.retry_responses = 0
        self._fetch()

    # -- internal -------------------------------------------------------------

    def _fetch(self) -> None:
        """Pull the next item from the source, fixing its issue cycle."""
        try:
            item = next(self._items)
        except StopIteration:
            self._exhausted = True
            self._pending = None
            return
        txn = item.txn
        if txn.master != self.index:
            raise TrafficError(
                f"source for master {self.index} produced a transaction "
                f"for master {txn.master}"
            )
        issue = self._last_finish + item.think_cycles
        if item.not_before is not None:
            issue = max(issue, item.not_before)
        txn.issued_at = issue
        if item.absolute_deadline is not None:
            txn.deadline = item.absolute_deadline
        elif item.deadline_offset is not None:
            txn.deadline = issue + item.deadline_offset
        self._pending = txn
        self._pending_issue = issue

    # -- bus-facing API ---------------------------------------------------------

    @property
    def done(self) -> bool:
        """True when the source is exhausted and nothing is pending."""
        return self._exhausted and self._pending is None

    def pending(self, now: int) -> Optional[Transaction]:
        """The transaction requesting the bus at cycle *now*, if any."""
        if self._pending is not None and self._pending_issue <= now:
            return self._pending
        return None

    def earliest_request(self) -> Optional[int]:
        """Cycle of the next request, or ``None`` when the agent is done."""
        if self._pending is None:
            return None
        return self._pending_issue

    def complete(self, txn: Transaction, finish_cycle: int) -> None:
        """Record completion of the currently pending transaction."""
        if txn is not self._pending:
            raise TrafficError(
                f"master {self.index} completed a transaction it did not issue"
            )
        txn.finished_at = finish_cycle
        self._last_finish = finish_cycle
        self.completed.append(txn)
        self._fetch()

    def absorb(self, txn: Transaction, absorb_cycle: int) -> None:
        """The write buffer accepted this write; the master moves on.

        From the master's perspective the transaction is complete (posted
        write); the buffer will replay it on the bus later.
        """
        if txn is not self._pending:
            raise TrafficError(
                f"master {self.index} had a transaction absorbed it did not issue"
            )
        txn.finished_at = absorb_cycle
        txn.via_write_buffer = True
        self._last_finish = absorb_cycle
        self.completed.append(txn)
        self._fetch()

    def fail(self, txn: Transaction, fail_cycle: int) -> None:
        """Abort the pending transaction after a final non-OKAY response.

        The transfer counts as finished (the master stops requesting the
        bus for it) but carries its error response in ``txn.resp``; read
        data, if any was captured, is discarded.
        """
        if txn is not self._pending:
            raise TrafficError(
                f"master {self.index} aborted a transaction it did not issue"
            )
        if not txn.resp:
            txn.resp = int(HResp.ERROR)
        if not txn.is_write:
            txn.data = []
        txn.finished_at = fail_cycle
        self._last_finish = fail_cycle
        self.completed.append(txn)
        self.error_aborts += 1
        self._fetch()

    def retry(self, txn: Transaction, retry_cycle: int) -> bool:
        """Absorb a RETRY response; returns ``True`` to re-request.

        Bounded policy: once ``txn.retry_limit`` retries have been
        burned the master aborts the transfer instead (returns
        ``False`` after recording the abort via :meth:`fail`).
        """
        if txn is not self._pending:
            raise TrafficError(
                f"master {self.index} got a retry for a transaction it did not issue"
            )
        txn.retries += 1
        self.retry_responses += 1
        if txn.retries > txn.retry_limit:
            txn.resp = int(HResp.RETRY)
            self.fail(txn, retry_cycle)
            return False
        return True

    # -- reporting ---------------------------------------------------------------

    @property
    def transactions_completed(self) -> int:
        return len(self.completed)

    @property
    def bytes_completed(self) -> int:
        return sum(txn.total_bytes for txn in self.completed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TlmMaster({self.index}, {self.name!r}, done={self.done})"
