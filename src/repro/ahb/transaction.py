"""The transaction object exchanged over transaction-level ports.

Section 3.1 of the paper maps AHB signal groups onto transaction-level
ports; a :class:`Transaction` is the argument those ports exchange.  One
instance describes a complete burst (one address phase plus its data
beats) together with the bookkeeping both bus models fill in: request,
grant, first-beat and completion cycles, plus the AHB+ QoS deadline.

The same object flows through the plain AHB baseline, the AHB+ TLM and
the RTL reference, which is what makes cycle-accuracy comparisons and
functional-equivalence checks direct.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ahb.types import AccessKind, HBurst, HSize, burst_for_beats
from repro.errors import ProtocolError

#: Master index used for transfers issued by the AHB+ write buffer when
#: it drains (the buffer "behaves as another master", paper section 3.3).
WRITE_BUFFER_MASTER = 255

_txn_ids = itertools.count()


@dataclass(slots=True)
class Transaction:
    """A single AHB burst transfer at transaction level.

    Parameters
    ----------
    master:
        Index of the issuing master (``WRITE_BUFFER_MASTER`` for drains).
    kind:
        Read or write.
    addr:
        Byte address of the first beat; must be aligned to ``size_bytes``.
    beats:
        Number of data beats in the burst.
    size_bytes:
        Bytes per beat (power of two, at most the bus width).
    wrapping:
        Use a WRAPx burst encoding (beats must be 4, 8 or 16).
    locked:
        Assert HLOCK for the duration of the burst.
    deadline:
        Absolute cycle by which an RT master needs completion (AHB+ QoS);
        ``None`` for non-real-time traffic.
    data:
        Write data, one integer per beat; populated by the slave on reads.
    """

    master: int
    kind: AccessKind
    addr: int
    beats: int = 1
    size_bytes: int = 4
    wrapping: bool = False
    locked: bool = False
    deadline: Optional[int] = None
    data: List[int] = field(default_factory=list)

    # Bookkeeping filled in by the bus models.
    uid: int = field(default_factory=lambda: next(_txn_ids))
    issued_at: int = -1
    granted_at: int = -1
    started_at: int = -1
    finished_at: int = -1
    via_write_buffer: bool = False
    retries: int = 0
    #: For posted writes: cycle the buffered copy reached memory.
    drained_at: int = -1
    #: Drain transactions link back to the posted original.
    origin: Optional["Transaction"] = None
    #: Seeded fault plan: non-OKAY HResp codes the addressed slave will
    #: answer with, one per bus presentation, before (possibly) letting
    #: the transfer through.  Stamped by the traffic layer so every
    #: engine sees the identical plan.
    fault_plan: Tuple[int, ...] = ()
    #: How many plan entries have been consumed (bus presentations).
    fault_step: int = 0
    #: RETRY responses tolerated before the master aborts the transfer.
    retry_limit: int = 4
    #: Final response the master observed (``HResp`` value; 0 = OKAY).
    resp: int = 0
    #: Cached ``kind.is_write`` — read on every arbitration round and
    #: data beat, so it is materialised once instead of going through a
    #: property descriptor per access.
    is_write: bool = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.is_write = self.kind.is_write
        if self.beats < 1:
            raise ProtocolError(f"transaction needs >= 1 beat, got {self.beats}")
        if self.size_bytes <= 0 or self.size_bytes & (self.size_bytes - 1):
            raise ProtocolError(
                f"beat size must be a power of two, got {self.size_bytes}"
            )
        if self.addr % self.size_bytes:
            raise ProtocolError(
                f"address {self.addr:#x} not aligned to beat size {self.size_bytes}"
            )
        if self.kind.is_write and self.data and len(self.data) != self.beats:
            raise ProtocolError(
                f"write supplies {len(self.data)} beats of data but "
                f"declares {self.beats} beats"
            )
        if self.wrapping and self.beats not in (4, 8, 16):
            raise ProtocolError(
                f"wrapping bursts must be 4/8/16 beats, got {self.beats}"
            )

    # -- protocol views -------------------------------------------------------

    @property
    def burst(self) -> HBurst:
        """The HBURST encoding of this transfer."""
        return burst_for_beats(self.beats, self.wrapping)

    @property
    def hsize(self) -> HSize:
        """The HSIZE encoding of this transfer."""
        return HSize.for_bytes(self.size_bytes)

    @property
    def total_bytes(self) -> int:
        """Payload carried by the whole burst."""
        return self.beats * self.size_bytes

    # -- timing views (valid once the bus filled the bookkeeping) --------------

    @property
    def latency(self) -> int:
        """Cycles from issue to completion (master-observed)."""
        self._require_done()
        return self.finished_at - self.issued_at

    @property
    def wait_cycles(self) -> int:
        """Cycles spent waiting for grant (arbitration + contention)."""
        self._require_done()
        return self.granted_at - self.issued_at

    @property
    def service_cycles(self) -> int:
        """Cycles from grant to completion (slave + data transfer)."""
        self._require_done()
        return self.finished_at - self.granted_at

    @property
    def met_deadline(self) -> Optional[bool]:
        """Whether the QoS deadline was met; ``None`` when no deadline set."""
        if self.deadline is None:
            return None
        self._require_done()
        return self.finished_at <= self.deadline

    def _require_done(self) -> None:
        if self.finished_at < 0:
            raise ProtocolError(f"transaction {self.uid} has not completed")

    def clone_for_replay(self) -> "Transaction":
        """Fresh copy with bookkeeping cleared (same uid lineage not kept)."""
        return Transaction(
            master=self.master,
            kind=self.kind,
            addr=self.addr,
            beats=self.beats,
            size_bytes=self.size_bytes,
            wrapping=self.wrapping,
            locked=self.locked,
            deadline=self.deadline,
            data=list(self.data),
            fault_plan=self.fault_plan,
            retry_limit=self.retry_limit,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rw = "W" if self.is_write else "R"
        return (
            f"Txn(#{self.uid} m{self.master} {rw} {self.addr:#010x} "
            f"x{self.beats}*{self.size_bytes}B)"
        )
