"""Arbitration policies for the plain AMBA 2.0 AHB baseline.

The unextended AHB arbiter has no QoS notion — the paper's motivation is
precisely that "AMBA2.0 ... cannot guarantee master's QoS".  Two classic
policies are provided: fixed priority (lowest index wins) and simple
round-robin.  The AHB+ filter-pipeline arbiter lives in
:mod:`repro.core.arbiter`.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Sequence

from repro.ahb.transaction import Transaction
from repro.errors import ConfigError


class BaselineArbiter(abc.ABC):
    """Chooses one winner among requesting masters (baseline policies)."""

    name: str = "baseline"

    @abc.abstractmethod
    def choose(self, candidates: Sequence[Transaction], now: int) -> Transaction:
        """Pick the winning transaction; *candidates* is never empty."""


class FixedPriorityArbiter(BaselineArbiter):
    """Lowest master index wins — the default AMBA example arbiter."""

    name = "fixed-priority"

    def choose(self, candidates: Sequence[Transaction], now: int) -> Transaction:
        return min(candidates, key=lambda txn: txn.master)


class RoundRobinArbiter(BaselineArbiter):
    """Rotating priority: the last winner becomes lowest priority."""

    name = "round-robin"

    def __init__(self, num_masters: int) -> None:
        if num_masters < 1:
            raise ConfigError("round-robin arbiter needs at least one master")
        self._num = num_masters
        self._last = num_masters - 1

    def choose(self, candidates: Sequence[Transaction], now: int) -> Transaction:
        def rotation(txn: Transaction) -> int:
            return (txn.master - self._last - 1) % self._num

        winner = min(candidates, key=rotation)
        self._last = winner.master
        return winner


def make_baseline_arbiter(policy: str, num_masters: int) -> BaselineArbiter:
    """Factory used by the plain bus config (``fixed`` or ``round_robin``)."""
    if policy == "fixed":
        return FixedPriorityArbiter()
    if policy == "round_robin":
        return RoundRobinArbiter(num_masters)
    raise ConfigError(f"unknown baseline arbitration policy {policy!r}")
