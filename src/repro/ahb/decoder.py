"""Address decoding for the bus models.

The decoder owns the system memory map: named, non-overlapping regions
that each route to one slave index.  Both bus models and the RTL
decoder share one :class:`AddressMap` instance so routing can never
diverge between abstraction levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ConfigError, MemoryError_


@dataclass(frozen=True)
class Region:
    """One slave's address window."""

    name: str
    base: int
    size: int
    slave_index: int

    def __post_init__(self) -> None:
        if self.base < 0 or self.size <= 0:
            raise ConfigError(f"region {self.name}: bad base/size")

    @property
    def end(self) -> int:
        """First address *after* the region."""
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end


class AddressMap:
    """Ordered, overlap-checked collection of :class:`Region` entries.

    ``default_slave`` names the slave index that catches accesses no
    region claims (the AHB *default slave*).  Without one, decoding an
    unmapped address raises — the strict mode every paper-topology
    platform uses, where an unmapped access is a traffic bug.
    """

    def __init__(self, default_slave: Optional[int] = None) -> None:
        if default_slave is not None and default_slave < 0:
            raise ConfigError(f"bad default slave index {default_slave}")
        self.default_slave = default_slave
        self._regions: List[Region] = []
        #: Flat (base, end, slave_index) rows for the per-transaction
        #: routing lookup — avoids the Region property calls in the
        #: bus engines' hot path.
        self._table: List[tuple] = []

    def add(self, name: str, base: int, size: int, slave_index: int) -> Region:
        """Register a region; overlapping an existing region is an error."""
        region = Region(name=name, base=base, size=size, slave_index=slave_index)
        for existing in self._regions:
            if existing.overlaps(region):
                raise ConfigError(
                    f"region {name} [{base:#x},{region.end:#x}) overlaps "
                    f"{existing.name}"
                )
        self._regions.append(region)
        self._table.append((region.base, region.end, slave_index))
        return region

    @property
    def regions(self) -> List[Region]:
        return list(self._regions)

    def decode(self, addr: int) -> Region:
        """Region containing *addr*; raises on unmapped addresses."""
        region = self.try_decode(addr)
        if region is None:
            raise MemoryError_(f"address {addr:#x} hits no mapped region")
        return region

    def try_decode(self, addr: int) -> Optional[Region]:
        """Region containing *addr*, or ``None`` if unmapped."""
        for region in self._regions:
            if region.contains(addr):
                return region
        return None

    def slave_for(self, addr: int) -> int:
        """Slave index serving *addr* (the HSEL the RTL decoder asserts).

        Unmapped addresses route to the default slave when one is
        configured, otherwise they raise.
        """
        for base, end, slave_index in self._table:
            if base <= addr < end:
                return slave_index
        if self.default_slave is not None:
            return self.default_slave
        return self.decode(addr).slave_index  # cold path: raises unmapped

    def span(self) -> int:
        """Total mapped bytes."""
        return sum(region.size for region in self._regions)


def single_slave_map(size: int = 1 << 26, name: str = "ddr") -> AddressMap:
    """Convenience map with one region at address zero (the common setup:
    AHB+ with the DDR controller as the single high-bandwidth slave)."""
    amap = AddressMap()
    amap.add(name, 0, size, 0)
    return amap
