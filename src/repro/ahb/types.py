"""AMBA 2.0 AHB protocol types.

Enumerations follow the AMBA Specification Rev 2.0 encodings exactly —
the RTL model drives these values onto multi-bit signals and the
assertion layer checks them, so the numeric values matter.
"""

from __future__ import annotations

import enum

from repro.errors import ProtocolError


class HTrans(enum.IntEnum):
    """HTRANS[1:0] transfer type."""

    IDLE = 0b00
    BUSY = 0b01
    NONSEQ = 0b10
    SEQ = 0b11


class HBurst(enum.IntEnum):
    """HBURST[2:0] burst type."""

    SINGLE = 0b000
    INCR = 0b001
    WRAP4 = 0b010
    INCR4 = 0b011
    WRAP8 = 0b100
    INCR8 = 0b101
    WRAP16 = 0b110
    INCR16 = 0b111

    @property
    def beats(self) -> int:
        """Fixed beat count of the burst (INCR is unbounded; reported as 1)."""
        return _BURST_BEATS[self]

    @property
    def is_wrapping(self) -> bool:
        """True for the WRAPx burst types."""
        return self in (HBurst.WRAP4, HBurst.WRAP8, HBurst.WRAP16)


_BURST_BEATS = {
    HBurst.SINGLE: 1,
    HBurst.INCR: 1,
    HBurst.WRAP4: 4,
    HBurst.INCR4: 4,
    HBurst.WRAP8: 8,
    HBurst.INCR8: 8,
    HBurst.WRAP16: 16,
    HBurst.INCR16: 16,
}


_FIXED_BURSTS = {1: HBurst.SINGLE, 4: HBurst.INCR4, 8: HBurst.INCR8, 16: HBurst.INCR16}
_WRAP_BURSTS = {4: HBurst.WRAP4, 8: HBurst.WRAP8, 16: HBurst.WRAP16}


def burst_for_beats(beats: int, wrapping: bool = False) -> HBurst:
    """Pick the AHB burst encoding for a beat count.

    Beat counts without a fixed encoding (e.g. 3, 5) map to ``INCR``;
    requesting a wrapping burst for such counts is a protocol error.
    """
    if beats < 1:
        raise ProtocolError(f"burst must have at least one beat, got {beats}")
    if wrapping:
        if beats not in _WRAP_BURSTS:
            raise ProtocolError(f"no wrapping burst encoding for {beats} beats")
        return _WRAP_BURSTS[beats]
    return _FIXED_BURSTS.get(beats, HBurst.INCR)


class HSize(enum.IntEnum):
    """HSIZE[2:0] transfer size (bytes per beat = 2**HSIZE)."""

    BYTE = 0b000
    HALFWORD = 0b001
    WORD = 0b010
    DWORD = 0b011
    WORD4 = 0b100
    WORD8 = 0b101
    WORD16 = 0b110
    WORD32 = 0b111

    @property
    def bytes(self) -> int:
        """Bytes transferred per beat."""
        return 1 << int(self)

    @classmethod
    def for_bytes(cls, nbytes: int) -> "HSize":
        """HSIZE encoding for a beat of *nbytes* (must be a power of two)."""
        if nbytes <= 0 or nbytes & (nbytes - 1):
            raise ProtocolError(f"beat size must be a power of two, got {nbytes}")
        return cls(nbytes.bit_length() - 1)


class HResp(enum.IntEnum):
    """HRESP[1:0] slave response."""

    OKAY = 0b00
    ERROR = 0b01
    RETRY = 0b10
    SPLIT = 0b11


class AccessKind(enum.Enum):
    """Direction of a transfer, at transaction level."""

    READ = "read"
    WRITE = "write"

    def __init__(self, value: str) -> None:
        # Plain member attribute instead of a property: ``is_write`` is
        # consulted on every arbitration round and data beat, and an
        # attribute read is several times cheaper than a descriptor call.
        self.is_write = value == "write"
