"""AHB burst address sequencing.

Implements the incrementing and wrapping address sequences of the AMBA
2.0 specification, plus the 1 KB boundary rule that incrementing bursts
must obey.  Both bus models and the assertion layer use these helpers so
address arithmetic cannot diverge between RTL and TLM.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ahb.transaction import Transaction
from repro.errors import ProtocolError

#: AHB forbids incrementing bursts from crossing a 1 KB address boundary.
KB_BOUNDARY = 1024


def beat_addresses(
    addr: int, beats: int, size_bytes: int, wrapping: bool = False
) -> List[int]:
    """Return the address of every beat of a burst.

    For wrapping bursts the address wraps at the burst-size boundary
    (``beats * size_bytes``); for incrementing bursts it increases
    monotonically.
    """
    if addr % size_bytes:
        raise ProtocolError(
            f"burst start {addr:#x} not aligned to beat size {size_bytes}"
        )
    if not wrapping:
        return [addr + i * size_bytes for i in range(beats)]
    span = beats * size_bytes
    base = (addr // span) * span
    return [base + (addr - base + i * size_bytes) % span for i in range(beats)]


def burst_footprint(
    addr: int, beats: int, size_bytes: int, wrapping: bool = False
) -> Tuple[int, int]:
    """Half-open byte range ``[lo, hi)`` that a burst touches.

    A wrapping burst wraps inside the total-size-aligned block that
    contains its start address, so its footprint is that whole block —
    not the linear range from the start address, which would miss the
    bytes below the wrap point.
    """
    total = beats * size_bytes
    if not wrapping:
        return addr, addr + total
    base = (addr // total) * total
    return base, base + total


def transaction_footprint(txn: Transaction) -> Tuple[int, int]:
    """Byte footprint of a :class:`~repro.ahb.transaction.Transaction`."""
    return burst_footprint(txn.addr, txn.beats, txn.size_bytes, txn.wrapping)


def transaction_addresses(txn: Transaction) -> List[int]:
    """Beat addresses of a :class:`~repro.ahb.transaction.Transaction`."""
    return beat_addresses(txn.addr, txn.beats, txn.size_bytes, txn.wrapping)


def crosses_kb_boundary(addr: int, beats: int, size_bytes: int) -> bool:
    """True when an incrementing burst would cross a 1 KB boundary."""
    first = addr
    last = addr + (beats - 1) * size_bytes
    return (first // KB_BOUNDARY) != (last // KB_BOUNDARY)


def check_burst_legal(txn: Transaction) -> None:
    """Raise :class:`~repro.errors.ProtocolError` for illegal bursts.

    Checks the 1 KB rule for incrementing bursts; wrapping bursts wrap
    inside an aligned block and can never cross.
    """
    if txn.wrapping:
        return
    if crosses_kb_boundary(txn.addr, txn.beats, txn.size_bytes):
        raise ProtocolError(
            f"incrementing burst at {txn.addr:#x} x{txn.beats}*{txn.size_bytes}B "
            f"crosses a 1KB boundary"
        )


def split_at_kb_boundary(txn: Transaction) -> List[Transaction]:
    """Split an incrementing burst into legal sub-bursts at 1 KB boundaries.

    Masters in both models use this so generated traffic is always
    protocol-legal regardless of the random addresses a pattern produces.
    Wrapping bursts are returned unchanged.
    """
    if txn.wrapping or not crosses_kb_boundary(txn.addr, txn.beats, txn.size_bytes):
        return [txn]
    pieces: List[Transaction] = []
    remaining = txn.beats
    addr = txn.addr
    data = list(txn.data)
    consumed = 0
    while remaining > 0:
        room = (KB_BOUNDARY - addr % KB_BOUNDARY) // txn.size_bytes
        take = min(remaining, max(room, 1))
        piece = Transaction(
            master=txn.master,
            kind=txn.kind,
            addr=addr,
            beats=take,
            size_bytes=txn.size_bytes,
            wrapping=False,
            locked=txn.locked,
            deadline=txn.deadline,
            data=data[consumed : consumed + take] if data else [],
        )
        pieces.append(piece)
        consumed += take
        addr += take * txn.size_bytes
        remaining -= take
    return pieces
