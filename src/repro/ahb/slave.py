"""Transaction-level slave interface and a simple SRAM-style slave.

Slaves in the TLM world expose :meth:`TlmSlave.serve`: given a
transaction whose address phase starts at a cycle, they perform the data
movement and return the cycle of the final data beat.  The DDR
controller model (:mod:`repro.ddr.controller`) implements the same
interface plus the AHB+ Bus Interface hooks (next-transaction
notification, idle-bank map, access permission), which the plain SRAM
slave stubs out as "always permitted / no banks".
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.ahb.burst import transaction_addresses
from repro.ahb.transaction import Transaction
from repro.errors import ConfigError


class TlmSlave(abc.ABC):
    """Interface every transaction-level slave implements."""

    name: str = "slave"

    @abc.abstractmethod
    def serve(self, txn: Transaction, start_cycle: int) -> int:
        """Serve *txn* whose address phase begins at *start_cycle*.

        Returns the cycle in which the last data beat completes; the bus
        is occupied from ``start_cycle`` to the returned cycle inclusive.
        Reads must populate ``txn.data``.
        """

    # -- AHB+ Bus Interface hooks (optional; see paper sections 2 and 3.4) ---

    def notify_next(self, txn: Transaction, cycle: int) -> None:
        """Receive next-transaction information ahead of the transfer.

        The AHB+ arbiter forwards the upcoming transaction over the BI so
        a DDR controller can pre-charge/activate the target bank early.
        Slaves without bank state ignore the hint.
        """

    def idle_banks(self, cycle: int) -> int:
        """Bitmap of banks able to accept a new row activation now.

        Slaves without banks report "all idle" (all bits set) so
        bank-aware arbitration filters become no-ops.
        """
        return ~0

    def access_permitted_at(self, txn: Transaction, cycle: int) -> int:
        """Earliest cycle the slave can accept *txn*'s address phase.

        This is the BI "access permission" channel; the default slave is
        always ready.
        """
        return cycle

    def idle_until(self, cycle: int) -> None:
        """The bus informs the slave that time advanced with no access.

        Lets stateful slaves (DDRC) age their bank timers/refresh state.
        The default slave has no time-dependent state.
        """


class SramSlave(TlmSlave):
    """A fixed-latency on-chip-memory slave with a real backing store.

    Timing: the address phase takes one cycle, the first data beat
    completes after ``wait_states`` extra cycles, and each subsequent
    beat completes after ``burst_wait_states`` extra cycles — the classic
    AHB slave with HREADY-stretched first access.
    """

    def __init__(
        self,
        name: str = "sram",
        size: int = 1 << 20,
        wait_states: int = 1,
        burst_wait_states: int = 0,
        base_addr: int = 0,
    ) -> None:
        if wait_states < 0 or burst_wait_states < 0:
            raise ConfigError("wait states must be non-negative")
        self.name = name
        self.size = size
        self.base_addr = base_addr
        self.wait_states = wait_states
        self.burst_wait_states = burst_wait_states
        self._store: dict = {}
        self.reads = 0
        self.writes = 0

    def _word_index(self, addr: int, size_bytes: int) -> int:
        offset = addr - self.base_addr
        if offset < 0 or offset + size_bytes > self.size:
            raise ConfigError(
                f"{self.name}: access {addr:#x} outside "
                f"[{self.base_addr:#x}, {self.base_addr + self.size:#x})"
            )
        return offset

    def serve(self, txn: Transaction, start_cycle: int) -> int:
        addresses = transaction_addresses(txn)
        cycle = start_cycle + 1  # address phase
        if txn.is_write:
            data = txn.data if txn.data else [0] * txn.beats
            for i, addr in enumerate(addresses):
                offset = self._word_index(addr, txn.size_bytes)
                self._store[offset] = data[i]
                cycle += (self.wait_states if i == 0 else self.burst_wait_states) + 1
            self.writes += 1
        else:
            txn.data = []
            for i, addr in enumerate(addresses):
                offset = self._word_index(addr, txn.size_bytes)
                txn.data.append(self._store.get(offset, 0))
                cycle += (self.wait_states if i == 0 else self.burst_wait_states) + 1
            self.reads += 1
        txn.started_at = start_cycle
        return cycle - 1

    def peek_word(self, addr: int, size_bytes: int = 4) -> Optional[int]:
        """Read the backing store without modelling timing (tests)."""
        return self._store.get(self._word_index(addr, size_bytes))


class ApbBridgeSlave(SramSlave):
    """Stub of an AHB→APB bridge with its register file behind it.

    Every beat pays the full bridge setup+access penalty — APB has no
    burst mode, so an AHB burst through the bridge degenerates into
    back-to-back single transfers.  Functionally it is a plain backing
    store (peripheral registers that hold what software wrote), which is
    all the multi-slave routing scenarios need from it.
    """

    def __init__(
        self,
        name: str = "apb",
        size: int = 1 << 16,
        setup_cycles: int = 4,
        base_addr: int = 0,
    ) -> None:
        if setup_cycles < 1:
            raise ConfigError("APB bridge setup must be at least one cycle")
        super().__init__(
            name=name,
            size=size,
            wait_states=setup_cycles,
            burst_wait_states=setup_cycles,
            base_addr=base_addr,
        )
