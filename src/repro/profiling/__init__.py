"""Profiling: bus/port monitors, statistics and report rendering."""

from repro.profiling.monitor import BusMonitor, PortProfile
from repro.profiling.report import (
    bus_summary,
    filter_report,
    format_table,
    port_report,
)
from repro.profiling.stats import Histogram, RunningStats, ThroughputWindow

__all__ = [
    "BusMonitor",
    "Histogram",
    "PortProfile",
    "RunningStats",
    "ThroughputWindow",
    "bus_summary",
    "filter_report",
    "format_table",
    "port_report",
]
