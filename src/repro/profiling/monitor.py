"""Bus and master-port profiling monitors.

Paper §3.6: *"we implemented bus and master port profiling features in
transaction-level ports and some internal functions such as arbiter,
write buffer and so on."*  A :class:`BusMonitor` attaches to any bus
engine's observer hook and accumulates the metrics the paper's
introduction calls out as essential: **bus contention, utilization and
throughput**, plus per-master port profiles (latency distribution,
bytes, wait cycles, deadline performance).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.profiling.stats import Histogram, RunningStats, ThroughputWindow


@dataclass
class PortProfile:
    """Per-master transaction-port statistics."""

    master: int
    reads: int = 0
    writes: int = 0
    bytes_moved: int = 0
    posted_writes: int = 0
    deadline_hits: int = 0
    deadline_misses: int = 0
    latency: RunningStats = field(default_factory=RunningStats)
    wait: RunningStats = field(default_factory=RunningStats)
    latency_hist: Histogram = field(default_factory=lambda: Histogram(bin_width=8))

    def record(self, txn: Transaction) -> None:
        if txn.is_write:
            self.writes += 1
        else:
            self.reads += 1
        self.bytes_moved += txn.total_bytes
        if txn.via_write_buffer:
            self.posted_writes += 1
        if txn.finished_at >= 0 and txn.issued_at >= 0:
            latency = txn.finished_at - txn.issued_at
            self.latency.add(latency)
            self.latency_hist.add(latency)
        if txn.granted_at >= 0 and txn.issued_at >= 0:
            self.wait.add(max(txn.granted_at - txn.issued_at, 0))
        met = txn.met_deadline
        if met is True:
            self.deadline_hits += 1
        elif met is False:
            self.deadline_misses += 1


class BusMonitor:
    """Observer accumulating bus-level and per-port metrics.

    Attach with ``bus.add_observer(monitor)``; every served transaction
    flows through :meth:`__call__`.

    Profiling is gated by :attr:`enabled`: a disabled monitor's observer
    hook returns immediately without touching a single counter, so a
    monitor can stay permanently wired into a platform at effectively
    zero cost and be switched on only for profiled runs (paper §3.7
    lists profiling among the switchable model parameters).
    """

    def __init__(
        self, name: str = "bus", window_cycles: int = 1024, enabled: bool = True
    ) -> None:
        self.name = name
        self.enabled = enabled
        self.transactions = 0
        self.bytes_moved = 0
        self.busy_cycles = 0
        self.contention_cycles = 0  # grant minus issue, summed
        self.last_finish = 0
        self._busy_through = -1
        self.ports: Dict[int, PortProfile] = {}
        self.throughput = ThroughputWindow(window_cycles)
        self.burst_beats = RunningStats()

    def enable(self) -> None:
        """Start accumulating (counters keep their current values)."""
        self.enabled = True

    def disable(self) -> None:
        """Stop accumulating; the observer hook becomes a no-op."""
        self.enabled = False

    def __call__(
        self, txn: Transaction, grant: int, start: int, finish: int
    ) -> None:
        if not self.enabled:
            return
        self.transactions += 1
        self.bytes_moved += txn.total_bytes
        covered_from = max(start, self._busy_through + 1)
        if finish >= covered_from:
            self.busy_cycles += finish - covered_from + 1
            self._busy_through = finish
        if txn.issued_at >= 0:
            self.contention_cycles += max(grant - txn.issued_at, 0)
        self.last_finish = max(self.last_finish, finish)
        self.throughput.add(finish, txn.total_bytes)
        self.burst_beats.add(txn.beats)
        port = self.ports.get(txn.master)
        if port is None:
            port = PortProfile(master=txn.master)
            self.ports[txn.master] = port
        port.record(txn)

    # -- derived metrics -----------------------------------------------------------

    def utilization(self, total_cycles: Optional[int] = None) -> float:
        """Fraction of cycles the data bus was occupied."""
        cycles = total_cycles if total_cycles is not None else self.last_finish
        if cycles <= 0:
            return 0.0
        return self.busy_cycles / cycles

    def throughput_bytes_per_cycle(
        self, total_cycles: Optional[int] = None
    ) -> float:
        """Average payload bandwidth over the run."""
        cycles = total_cycles if total_cycles is not None else self.last_finish
        if cycles <= 0:
            return 0.0
        return self.bytes_moved / cycles

    def average_contention(self) -> float:
        """Mean cycles a transaction waited for its grant."""
        if self.transactions == 0:
            return 0.0
        return self.contention_cycles / self.transactions

    def port(self, master: int) -> PortProfile:
        """Profile of one master (write buffer under its pseudo-index)."""
        return self.ports.setdefault(master, PortProfile(master=master))

    @property
    def write_buffer_port(self) -> PortProfile:
        return self.port(WRITE_BUFFER_MASTER)
