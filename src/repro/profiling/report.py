"""Render profiling results as plain-text reports.

The paper ties its model to "a good analysis environment ... to assess
the simulation results" (§1).  These renderers produce the tables an
architect reads after a run: bus summary, per-port profile and filter
activity.  All output is deterministic, plain ASCII.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ahb.transaction import WRITE_BUFFER_MASTER
from repro.profiling.monitor import BusMonitor, PortProfile


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Simple fixed-width table formatter used by every report."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def _port_name(master: int, names: Optional[Dict[int, str]]) -> str:
    if master == WRITE_BUFFER_MASTER:
        return "write-buffer"
    if names and master in names:
        return names[master]
    return f"master{master}"


def bus_summary(monitor: BusMonitor, total_cycles: int) -> str:
    """One-paragraph bus-level summary (utilization/contention/throughput)."""
    lines = [
        f"bus profile: {monitor.name}",
        f"  simulated cycles      : {total_cycles}",
        f"  transactions          : {monitor.transactions}",
        f"  bytes transferred     : {monitor.bytes_moved}",
        f"  data-bus utilization  : {monitor.utilization(total_cycles):.3f}",
        f"  throughput (B/cycle)  : {monitor.throughput_bytes_per_cycle(total_cycles):.3f}",
        f"  peak window (B/cycle) : {monitor.throughput.peak():.3f}",
        f"  avg grant contention  : {monitor.average_contention():.2f} cycles",
        f"  mean burst length     : {monitor.burst_beats.mean:.2f} beats",
    ]
    return "\n".join(lines)


def port_report(
    monitor: BusMonitor, names: Optional[Dict[int, str]] = None
) -> str:
    """Per-master port profile table (paper's master-port profiling)."""
    headers = [
        "port",
        "reads",
        "writes",
        "posted",
        "bytes",
        "lat.mean",
        "lat.max",
        "wait.mean",
        "ddl.miss",
    ]
    rows: List[List[str]] = []
    for master in sorted(monitor.ports):
        port = monitor.ports[master]
        rows.append(
            [
                _port_name(master, names),
                str(port.reads),
                str(port.writes),
                str(port.posted_writes),
                str(port.bytes_moved),
                f"{port.latency.mean:.1f}",
                str(port.latency.maximum or 0),
                f"{port.wait.mean:.1f}",
                str(port.deadline_misses),
            ]
        )
    return format_table(headers, rows)


def filter_report(filter_stats: Dict[str, Dict[str, int]]) -> str:
    """Arbitration-filter activity table (paper's arbiter profiling)."""
    headers = ["filter", "enabled", "applied", "narrowed"]
    rows = [
        [
            name,
            "yes" if stats.get("enabled") else "no",
            str(stats.get("applied", 0)),
            str(stats.get("narrowed", 0)),
        ]
        for name, stats in filter_stats.items()
    ]
    return format_table(headers, rows)
