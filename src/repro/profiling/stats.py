"""Statistics primitives used by the profiling monitors.

Small, dependency-free accumulators: streaming mean/min/max, fixed-bin
histograms and windowed throughput counters.  Integer-friendly — all
bus metrics are cycle counts or byte counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigError


class RunningStats:
    """Streaming count/mean/min/max without storing samples."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum: Optional[int] = None
        self.maximum: Optional[int] = None

    def add(self, value: int) -> None:
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum if self.minimum is not None else 0,
            "max": self.maximum if self.maximum is not None else 0,
        }


class Histogram:
    """Fixed-width-bin histogram of non-negative integers."""

    def __init__(self, bin_width: int = 8, max_bins: int = 64) -> None:
        if bin_width < 1 or max_bins < 1:
            raise ConfigError("histogram needs positive bin width and bin count")
        self.bin_width = bin_width
        self.max_bins = max_bins
        self._bins: List[int] = [0] * max_bins
        self.overflow = 0
        self.samples = 0

    def add(self, value: int) -> None:
        if value < 0:
            raise ConfigError(f"histogram sample {value} is negative")
        index = value // self.bin_width
        if index >= self.max_bins:
            self.overflow += 1
        else:
            self._bins[index] += 1
        self.samples += 1

    def nonzero_bins(self) -> List[Tuple[int, int, int]]:
        """List of (bin_low, bin_high_exclusive, count) for occupied bins."""
        result = []
        for index, count in enumerate(self._bins):
            if count:
                low = index * self.bin_width
                result.append((low, low + self.bin_width, count))
        return result

    def percentile(self, fraction: float) -> int:
        """Approximate percentile (upper bin edge); overflow counts last."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigError("percentile fraction must be in (0, 1]")
        target = fraction * self.samples
        seen = 0
        for index, count in enumerate(self._bins):
            seen += count
            if seen >= target:
                return (index + 1) * self.bin_width
        return (self.max_bins + 1) * self.bin_width


@dataclass
class ThroughputWindow:
    """Bytes moved per fixed window of cycles (bandwidth over time)."""

    window_cycles: int = 1024
    _windows: Dict[int, int] = field(default_factory=dict)

    def add(self, cycle: int, nbytes: int) -> None:
        index = cycle // self.window_cycles
        self._windows[index] = self._windows.get(index, 0) + nbytes

    def series(self) -> List[Tuple[int, float]]:
        """(window_start_cycle, bytes_per_cycle) in time order."""
        return [
            (index * self.window_cycles, total / self.window_cycles)
            for index, total in sorted(self._windows.items())
        ]

    def peak(self) -> float:
        """Highest bytes-per-cycle across windows."""
        if not self._windows:
            return 0.0
        return max(self._windows.values()) / self.window_cycles
