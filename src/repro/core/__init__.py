"""The AHB+ transaction-level model — the paper's core contribution.

Public surface:

* :class:`AhbPlusConfig` — every §3.7 parameter in one place.
* :class:`AhbPlusBusTlm` / :class:`ThreadedAhbPlusBus` — method-based
  and thread-based engines with identical bus semantics.
* :class:`AhbPlusArbiter` + the seven arbitration filters.
* :class:`QosRegisterFile` — the AHB+ QoS registers.
* :class:`WriteBuffer` — posted-write buffer (an extra bus master).
* :class:`BusInterface` — the arbiter↔DDRC side channel (BI).
* :class:`TransactionPort` / :class:`InteractiveAhbPlus` — the paper's
  CheckGrant()/Read()/Write() port API.
* :func:`build_tlm_platform` / :func:`build_plain_platform` — legacy
  one-call system assembly (deprecation shims; new code describes the
  system with :class:`repro.system.SystemSpec` and elaborates it via
  :class:`repro.system.PlatformBuilder`).
"""

from repro.core.arbiter import AhbPlusArbiter
from repro.core.bus import AhbPlusBusTlm, AhbPlusRunResult
from repro.core.bus_interface import BusInterface
from repro.core.config import SWITCHABLE_FILTERS, AhbPlusConfig
from repro.core.filters import (
    ArbitrationContext,
    ArbitrationFilter,
    BankFilter,
    Candidate,
    FILTER_NAMES,
    HazardFilter,
    PressureFilter,
    RealTimeFilter,
    RequestFilter,
    TieBreakFilter,
    UrgencyFilter,
    default_filter_chain,
)
from repro.core.platform import (
    PlainPlatform,
    TlmPlatform,
    build_plain_platform,
    build_tlm_platform,
    config_for_workload,
)
from repro.core.ports import InteractiveAhbPlus, PortStatus, TransactionPort
from repro.core.qos import QosRegisterFile, QosSetting, decode_setting, encode_setting
from repro.core.threaded import ThreadedAhbPlusBus
from repro.core.transaction import WRITE_BUFFER_MASTER, AccessKind, Transaction
from repro.core.write_buffer import WriteBuffer

__all__ = [
    "AccessKind",
    "AhbPlusArbiter",
    "AhbPlusBusTlm",
    "AhbPlusConfig",
    "AhbPlusRunResult",
    "ArbitrationContext",
    "ArbitrationFilter",
    "BankFilter",
    "BusInterface",
    "Candidate",
    "FILTER_NAMES",
    "HazardFilter",
    "InteractiveAhbPlus",
    "PlainPlatform",
    "PortStatus",
    "PressureFilter",
    "QosRegisterFile",
    "QosSetting",
    "RealTimeFilter",
    "RequestFilter",
    "SWITCHABLE_FILTERS",
    "ThreadedAhbPlusBus",
    "TieBreakFilter",
    "TlmPlatform",
    "TransactionPort",
    "Transaction",
    "UrgencyFilter",
    "WRITE_BUFFER_MASTER",
    "WriteBuffer",
    "build_plain_platform",
    "build_tlm_platform",
    "config_for_workload",
    "decode_setting",
    "default_filter_chain",
    "encode_setting",
]
