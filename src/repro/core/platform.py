"""Platform builders: assemble masters, bus and DDRC from one config.

``build_tlm_platform`` produces the paper's system — AHB+ main bus with
the DDR controller behind the Bus Interface — in either engine style
(method-based or thread-based).  ``build_plain_platform`` produces the
unextended AMBA 2.0 baseline on the same workload and memory subsystem,
which is what the QoS and throughput comparisons run against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Union

from repro.ahb.bus import BusRunResult, PlainAhbBus
from repro.ahb.decoder import AddressMap, single_slave_map
from repro.ahb.master import TlmMaster
from repro.core.bus import AhbPlusBusTlm, AhbPlusRunResult
from repro.core.config import AhbPlusConfig
from repro.core.threaded import ThreadedAhbPlusBus
from repro.ddr.controller import DdrControllerTlm
from repro.ddr.memory import MemoryModel
from repro.errors import ConfigError
from repro.traffic.workloads import Workload

EngineBus = Union[AhbPlusBusTlm, ThreadedAhbPlusBus]


@dataclass
class TlmPlatform:
    """An assembled transaction-level AHB+ system."""

    workload: Workload
    config: AhbPlusConfig
    masters: List[TlmMaster]
    ddrc: DdrControllerTlm
    bus: EngineBus

    @property
    def memory(self) -> MemoryModel:
        """The DDR backing store (for functional checks)."""
        return self.ddrc.memory

    def run(self, max_cycles: Optional[int] = None) -> AhbPlusRunResult:
        """Run the workload to completion."""
        return self.bus.run(max_cycles=max_cycles)


@dataclass
class PlainPlatform:
    """The unextended AMBA 2.0 baseline on the same substrate."""

    workload: Workload
    masters: List[TlmMaster]
    ddrc: DdrControllerTlm
    bus: PlainAhbBus

    @property
    def memory(self) -> MemoryModel:
        return self.ddrc.memory

    def run(self, max_cycles: Optional[int] = None) -> BusRunResult:
        return self.bus.run(max_cycles=max_cycles)


def config_for_workload(
    workload: Workload, base: Optional[AhbPlusConfig] = None
) -> AhbPlusConfig:
    """Derive a config matching the workload's master count and QoS map."""
    if base is None:
        return AhbPlusConfig(num_masters=workload.num_masters, qos=workload.qos_map())
    if base.num_masters != workload.num_masters:
        raise ConfigError(
            f"config is for {base.num_masters} masters but workload "
            f"{workload.name!r} has {workload.num_masters}"
        )
    merged_qos = dict(workload.qos_map())
    merged_qos.update(base.qos)
    return AhbPlusConfig(
        num_masters=base.num_masters,
        bus_width_bytes=base.bus_width_bytes,
        write_buffer_enabled=base.write_buffer_enabled,
        write_buffer_depth=base.write_buffer_depth,
        request_pipelining=base.request_pipelining,
        pipeline_lead=base.pipeline_lead,
        bus_interface_enabled=base.bus_interface_enabled,
        tie_break=base.tie_break,
        disabled_filters=base.disabled_filters,
        urgency_margin=base.urgency_margin,
        starvation_limit=base.starvation_limit,
        arbitration_cycles=base.arbitration_cycles,
        qos=merged_qos,
        ddr_timing=base.ddr_timing,
        refresh_enabled=base.refresh_enabled,
        memory_size=base.memory_size,
    )


def build_tlm_platform(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
    engine: str = "method",
) -> TlmPlatform:
    """Assemble the AHB+ TLM platform for *workload*.

    ``engine`` selects the paper's method-based style (``"method"``) or
    the thread-based comparison engine (``"thread"``).
    """
    cfg = config_for_workload(workload, config)
    masters = workload.build_masters()
    ddrc = DdrControllerTlm(
        timing=cfg.ddr_timing,
        bus_bytes=cfg.bus_width_bytes,
        refresh_enabled=cfg.refresh_enabled,
    )
    address_map = single_slave_map(cfg.memory_size)
    if engine == "method":
        bus: EngineBus = AhbPlusBusTlm(
            masters, [ddrc], config=cfg, address_map=address_map
        )
    elif engine == "thread":
        bus = ThreadedAhbPlusBus(
            masters, [ddrc], config=cfg, address_map=address_map
        )
    else:
        raise ConfigError(f"unknown engine {engine!r}; use 'method' or 'thread'")
    return TlmPlatform(
        workload=workload, config=cfg, masters=masters, ddrc=ddrc, bus=bus
    )


def build_plain_platform(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
) -> PlainPlatform:
    """Assemble the plain AMBA 2.0 baseline for *workload*.

    Same masters, same DDR device — but no QoS, no write buffer, no
    request pipelining and no Bus Interface, so the controller sees
    every transaction cold.
    """
    cfg = config_for_workload(workload, config)
    masters = workload.build_masters()
    ddrc = DdrControllerTlm(
        timing=cfg.ddr_timing,
        bus_bytes=cfg.bus_width_bytes,
        refresh_enabled=cfg.refresh_enabled,
    )
    bus = PlainAhbBus(
        masters,
        [ddrc],
        single_slave_map(cfg.memory_size),
        arbitration_cycles=max(cfg.arbitration_cycles, 1),
    )
    return PlainPlatform(workload=workload, masters=masters, ddrc=ddrc, bus=bus)
