"""Transaction-level platform records and the legacy builder shims.

The platform dataclasses (:class:`TlmPlatform`, :class:`PlainPlatform`)
are the engine-facing products of system elaboration; they satisfy the
:class:`repro.system.platform.Platform` protocol — ``run()`` plus
``attach(observer)`` — so analysis code never reaches into the bus.

``build_tlm_platform``/``build_plain_platform`` are **deprecation
shims**: new code should describe the system once with
:class:`repro.system.SystemSpec` (or pick a registry entry from
:mod:`repro.system.scenarios`) and elaborate it through
:class:`repro.system.PlatformBuilder`.  The shims wrap the given
workload/config in the equivalent paper-topology spec and delegate, so
their output is bit-for-bit identical to what they built before the
spec layer existed.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Union

from repro.ahb.bus import BusRunResult, PlainAhbBus, TransactionObserver
from repro.ahb.master import TlmMaster
from repro.ahb.slave import TlmSlave
from repro.core.bus import AhbPlusBusTlm, AhbPlusRunResult
from repro.core.config import AhbPlusConfig
from repro.core.threaded import ThreadedAhbPlusBus
from repro.ddr.controller import DdrControllerTlm
from repro.ddr.memory import MemoryModel
from repro.errors import ConfigError

if TYPE_CHECKING:  # traffic.workloads itself imports repro.core.qos —
    # a runtime import here would close an import cycle whenever
    # repro.traffic loads first, so Workload stays annotation-only.
    from repro.traffic.workloads import Workload

EngineBus = Union[AhbPlusBusTlm, ThreadedAhbPlusBus]


@dataclass
class TlmPlatform:
    """An assembled transaction-level AHB+ system."""

    workload: Workload
    config: AhbPlusConfig
    masters: List[TlmMaster]
    ddrc: DdrControllerTlm
    bus: EngineBus
    #: All slaves in address-map order (``[ddrc]`` on the paper topology).
    slaves: List[TlmSlave] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.slaves:
            self.slaves = [self.ddrc]

    @property
    def memory(self) -> MemoryModel:
        """The DDR backing store (for functional checks)."""
        return self.ddrc.memory

    def run(self, max_cycles: Optional[int] = None) -> AhbPlusRunResult:
        """Run the workload to completion."""
        return self.bus.run(max_cycles=max_cycles)

    def attach(self, observer: TransactionObserver) -> None:
        """Register a ``(txn, grant, start, finish)`` observer."""
        self.bus.add_observer(observer)


@dataclass
class PlainPlatform:
    """The unextended AMBA 2.0 baseline on the same substrate."""

    workload: Workload
    masters: List[TlmMaster]
    ddrc: DdrControllerTlm
    bus: PlainAhbBus
    config: Optional[AhbPlusConfig] = None
    slaves: List[TlmSlave] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.slaves:
            self.slaves = [self.ddrc]

    @property
    def memory(self) -> MemoryModel:
        return self.ddrc.memory

    def run(self, max_cycles: Optional[int] = None) -> BusRunResult:
        return self.bus.run(max_cycles=max_cycles)

    def attach(self, observer: TransactionObserver) -> None:
        """Register a ``(txn, grant, start, finish)`` observer."""
        self.bus.add_observer(observer)


def config_for_workload(
    workload: Workload, base: Optional[AhbPlusConfig] = None
) -> AhbPlusConfig:
    """Derive a config matching the workload's master count and QoS map."""
    if base is None:
        return AhbPlusConfig(num_masters=workload.num_masters, qos=workload.qos_map())
    if base.num_masters != workload.num_masters:
        raise ConfigError(
            f"config is for {base.num_masters} masters but workload "
            f"{workload.name!r} has {workload.num_masters}"
        )
    merged_qos = dict(workload.qos_map())
    merged_qos.update(base.qos)
    return AhbPlusConfig(
        num_masters=base.num_masters,
        bus_width_bytes=base.bus_width_bytes,
        write_buffer_enabled=base.write_buffer_enabled,
        write_buffer_depth=base.write_buffer_depth,
        request_pipelining=base.request_pipelining,
        pipeline_lead=base.pipeline_lead,
        bus_interface_enabled=base.bus_interface_enabled,
        tie_break=base.tie_break,
        disabled_filters=base.disabled_filters,
        urgency_margin=base.urgency_margin,
        starvation_limit=base.starvation_limit,
        arbitration_cycles=base.arbitration_cycles,
        qos=merged_qos,
        ddr_timing=base.ddr_timing,
        refresh_enabled=base.refresh_enabled,
        memory_size=base.memory_size,
    )


def _paper_spec(workload: Workload, config: Optional[AhbPlusConfig]):
    """The paper-topology spec equivalent to a legacy builder call.

    Delegates to the scenario registry's canonical constructor so every
    entry point (registry, TLM shims, RTL shim) builds the *same* spec
    — one place to evolve the paper topology, one serialised name.
    """
    from repro.system.scenarios import paper_topology

    return paper_topology(workload=workload, config=config)


def build_tlm_platform(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
    engine: str = "method",
) -> TlmPlatform:
    """Assemble the AHB+ TLM platform for *workload*.

    .. deprecated::
        Thin shim over :class:`repro.system.PlatformBuilder`; prefer
        ``PlatformBuilder(spec).build("tlm")`` with a
        :class:`~repro.system.SystemSpec` (the ``engine="thread"``
        variant is the ``"tlm-threaded"`` level).  Output is
        bit-for-bit identical to the pre-spec builder.
    """
    from repro.system.platform import PlatformBuilder

    warnings.warn(
        "build_tlm_platform is deprecated; describe the system as a "
        "repro.system.SystemSpec and elaborate it via "
        "PlatformBuilder(spec).build('tlm') / .build('tlm-threaded')",
        DeprecationWarning,
        stacklevel=2,
    )
    if engine == "method":
        level = "tlm"
    elif engine == "thread":
        level = "tlm-threaded"
    else:
        raise ConfigError(f"unknown engine {engine!r}; use 'method' or 'thread'")
    platform = PlatformBuilder(_paper_spec(workload, config)).build(level)
    assert isinstance(platform, TlmPlatform)
    return platform


def build_plain_platform(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
) -> PlainPlatform:
    """Assemble the plain AMBA 2.0 baseline for *workload*.

    Same masters, same DDR device — but no QoS, no write buffer, no
    request pipelining and no Bus Interface, so the controller sees
    every transaction cold.

    .. deprecated::
        Thin shim over :class:`repro.system.PlatformBuilder`; prefer
        ``PlatformBuilder(spec).build("plain")``.
    """
    from repro.system.platform import PlatformBuilder

    warnings.warn(
        "build_plain_platform is deprecated; describe the system as a "
        "repro.system.SystemSpec and elaborate it via "
        "PlatformBuilder(spec).build('plain')",
        DeprecationWarning,
        stacklevel=2,
    )
    platform = PlatformBuilder(_paper_spec(workload, config)).build("plain")
    assert isinstance(platform, PlainPlatform)
    return platform
