"""The AHB+ arbiter: filter pipeline plus request pipelining.

The arbiter runs the seven-filter chain over the candidate set each
round and exposes per-filter narrowing statistics (the paper's §3.6
"profiling features ... in some internal functions such as arbiter").

Request pipelining (paper §2: *"AHB+ hides the latencies incurred
between the requests of masters by pipelining the master requests"*)
lives in the bus engine, which asks the arbiter for the *next* winner a
few cycles before the current transfer ends and forwards the decision to
the DDRC over the Bus Interface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.filters import (
    ArbitrationContext,
    ArbitrationFilter,
    Candidate,
    TieBreakFilter,
    default_filter_chain,
)
from repro.errors import ConfigError, SimulationError


class AhbPlusArbiter:
    """Filter-pipeline arbiter of the AHB+ main bus."""

    def __init__(
        self,
        filters: Optional[Sequence[ArbitrationFilter]] = None,
        tie_break: str = "fixed",
        num_masters: int = 16,
    ) -> None:
        if filters is None:
            filters = default_filter_chain(tie_break, num_masters)
        self.filters: List[ArbitrationFilter] = list(filters)
        if not self.filters or not isinstance(self.filters[-1], TieBreakFilter):
            raise ConfigError("the filter chain must end with the tie-break filter")
        self._tie_break: TieBreakFilter = self.filters[-1]
        self.rounds = 0

    # -- configuration -----------------------------------------------------------

    def set_filter_enabled(self, name: str, enabled: bool) -> None:
        """Toggle one filter by name (paper §3.7 per-algorithm on/off)."""
        for filt in self.filters:
            if filt.name == name:
                if isinstance(filt, TieBreakFilter) and not enabled:
                    raise ConfigError("the tie-break filter cannot be disabled")
                filt.enabled = enabled
                return
        raise ConfigError(f"no arbitration filter named {name!r}")

    def filter_by_name(self, name: str) -> ArbitrationFilter:
        for filt in self.filters:
            if filt.name == name:
                return filt
        raise ConfigError(f"no arbitration filter named {name!r}")

    # -- arbitration ----------------------------------------------------------------

    def choose(
        self, candidates: Sequence[Candidate], ctx: ArbitrationContext
    ) -> Candidate:
        """Run the filter chain; returns the single winner."""
        if not candidates:
            raise SimulationError("arbitration invoked with no candidates")
        self.rounds += 1
        if len(candidates) == 1:
            # Fast path: a lone candidate passes every narrowing filter
            # untouched (they skip singleton sets without counting an
            # application), so only the mandatory tie-break runs — its
            # apply() keeps the profiling counters and the round-robin
            # rotation state exactly as the full chain would.
            return self._tie_break.apply(list(candidates), ctx)[0]
        survivors = list(candidates)
        for filt in self.filters:
            survivors = filt.apply(survivors, ctx)
        if len(survivors) != 1:
            raise SimulationError(
                f"filter chain left {len(survivors)} survivors; "
                f"the tie-break must leave exactly one"
            )
        return survivors[0]

    # -- profiling --------------------------------------------------------------------

    def filter_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-filter application/narrowing counts."""
        return {
            filt.name: {
                "applied": filt.rounds_applied,
                "narrowed": filt.rounds_narrowed,
                "enabled": int(filt.enabled),
            }
            for filt in self.filters
        }
