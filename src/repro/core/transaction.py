"""Canonical re-export of the transaction-port datatype.

The :class:`~repro.ahb.transaction.Transaction` object *is* the payload
of the AHB+ transaction-level ports, so the core package exposes it
under its own name; the definition lives with the generic AHB substrate
because the plain baseline bus exchanges the same objects.
"""

from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.ahb.types import AccessKind

__all__ = ["AccessKind", "Transaction", "WRITE_BUFFER_MASTER"]
