"""Thread-based variant of the AHB+ TLM (the style the paper avoided).

Paper §4: *"To increase simulation speed, we used method-based modeling
method rather than thread-based method."*  To measure what that choice
buys, this module models every master as a suspended generator
("thread") that the kernel resumes through events — the ``sc_thread``
style — while the bus itself is one more thread.  Arbitration, QoS,
write-buffer and BI semantics are **identical** to the method-based
engine (:mod:`repro.core.bus`); the equivalence test suite asserts the
two produce the same cycle counts and transaction streams, so any speed
difference is pure engine overhead: generator frame switches, event
subscription and scheduler traffic.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.ahb.bus import TransactionObserver
from repro.ahb.decoder import AddressMap, single_slave_map
from repro.ahb.master import TlmMaster
from repro.ahb.slave import TlmSlave
from repro.ahb.transaction import Transaction
from repro.ahb.types import HResp
from repro.core.arbiter import AhbPlusArbiter
from repro.core.bus import AhbPlusRunResult
from repro.core.bus_interface import BusInterface, make_routed_score
from repro.core.config import AhbPlusConfig
from repro.core.filters import ArbitrationContext, Candidate
from repro.core.qos import QosRegisterFile
from repro.core.write_buffer import WriteBuffer
from repro.errors import ConfigError, SimulationError
from repro.kernel.events import Event
from repro.kernel.process import ThreadProcess, WaitCycles, WaitEvent
from repro.kernel.simulator import Simulator


class _RequestBoard:
    """The HBUSREQ register bank: posted requests awaiting grant."""

    def __init__(self) -> None:
        self.entries: Dict[int, Transaction] = {}
        self.posted = Event("board.posted")

    def post(self, master: int, txn: Transaction) -> None:
        if master in self.entries:
            raise SimulationError(f"master {master} double-posted a request")
        self.entries[master] = txn
        self.posted.notify()

    def remove(self, master: int) -> None:
        del self.entries[master]


class ThreadedAhbPlusBus:
    """Generator-process implementation of the AHB+ main bus."""

    def __init__(
        self,
        masters: Sequence[TlmMaster],
        slaves: Sequence[TlmSlave],
        config: Optional[AhbPlusConfig] = None,
        address_map: Optional[AddressMap] = None,
        qos: Optional[QosRegisterFile] = None,
    ) -> None:
        if not masters:
            raise ConfigError("bus needs at least one master")
        self.config = config if config is not None else AhbPlusConfig(
            num_masters=len(masters)
        )
        if self.config.request_pipelining and self.config.pipeline_lead < 1:
            raise ConfigError(
                "the threaded engine needs pipeline_lead >= 1 "
                "(a zero-lead decision races master completion)"
            )
        self.masters = list(masters)
        self.slaves = list(slaves)
        self.address_map = (
            address_map if address_map is not None else single_slave_map()
        )
        self.qos = qos if qos is not None else self._default_qos()
        self.write_buffer = WriteBuffer(
            depth=self.config.write_buffer_depth,
            enabled=self.config.write_buffer_enabled,
        )
        self.arbiter = AhbPlusArbiter(
            tie_break=self.config.tie_break,
            num_masters=self.config.num_masters,
        )
        for name in self.config.disabled_filters:
            self.arbiter.set_filter_enabled(name, False)
        self.bus_interfaces = [
            BusInterface(slave, enabled=self.config.bus_interface_enabled)
            for slave in self.slaves
        ]
        # BI off -> no oracle, so the bank filter abstains (see
        # make_routed_score); matches AhbPlusBusTlm and the RTL arbiter.
        self._routed_score_at = (
            make_routed_score(self.bus_interfaces, self.address_map)
            if len(self.slaves) > 1 and self.config.bus_interface_enabled
            else None
        )
        self.sim = Simulator()
        self.board = _RequestBoard()
        self.done_events = [
            Event(f"master{m.index}.done") for m in self.masters
        ]
        self._observers: List[TransactionObserver] = []
        self._busy_cycles = 0
        self._busy_through = -1
        self._transactions = 0
        self._bytes = 0
        self._pipelined_grants = 0
        self._final_cycle = 0

    def _default_qos(self) -> QosRegisterFile:
        qos = QosRegisterFile(self.config.num_masters)
        for master, setting in self.config.qos.items():
            qos.configure(master, setting)
        return qos

    def add_observer(self, observer: TransactionObserver) -> None:
        self._observers.append(observer)

    # -- master threads ------------------------------------------------------------

    def _master_body(self, agent: TlmMaster) -> Iterator:
        """One suspended frame per master — the thread-based style."""
        while True:
            issue = agent.earliest_request()
            if issue is None:
                return
            if issue > self.sim.now:
                yield WaitCycles(issue - self.sim.now)
            txn = agent.pending(self.sim.now)
            assert txn is not None
            self.board.post(agent.index, txn)
            yield WaitEvent(self.done_events[agent.index])

    # -- shared decision logic (kept textually parallel to core.bus) ------------------

    def _collect(self, now: int) -> List[Candidate]:
        candidates: List[Candidate] = []
        for master_index in sorted(self.board.entries):
            txn = self.board.entries[master_index]
            candidates.append(
                Candidate(
                    txn=txn,
                    from_write_buffer=False,
                    real_time=self.qos.is_real_time(master_index),
                    deadline=self.qos.deadline_for(txn),
                )
            )
        head = self.write_buffer.head()
        if head is not None:
            candidates.append(Candidate(txn=head, from_write_buffer=True))
        return candidates

    def _route(self, txn: Transaction) -> Tuple[TlmSlave, BusInterface]:
        index = self.address_map.slave_for(txn.addr)
        return self.slaves[index], self.bus_interfaces[index]

    def _make_ctx(self, now: int, candidates: Sequence[Candidate]) -> ArbitrationContext:
        hazard = self.write_buffer.read_hazard(candidates)
        if self._routed_score_at is not None:
            # Multi-slave: score every address via its own region's BI
            # (a bank-less slave scores 0); mirrors AhbPlusBusTlm.
            access_score = self._routed_score_at(now)
        else:
            _slave, bi = self._route(candidates[0].txn)
            access_score = bi.access_score_fn(now)
        return ArbitrationContext(
            now=now,
            write_buffer_occupancy=self.write_buffer.occupancy,
            write_buffer_depth=(
                self.write_buffer.depth if self.write_buffer.enabled else 0
            ),
            read_hazard=hazard,
            access_score=access_score,
            urgency_margin=self.config.urgency_margin,
            starvation_limit=self.config.starvation_limit,
        )

    def _absorb_losers(
        self, candidates: Sequence[Candidate], winner: Candidate, cycle: int
    ) -> None:
        for cand in candidates:
            if cand is winner or cand.from_write_buffer:
                continue
            txn = cand.txn
            if self.write_buffer.can_absorb(txn):
                self.write_buffer.absorb(txn, cycle)
                self.board.remove(txn.master)
                self.masters[txn.master].absorb(txn, cycle)
                self.qos.record_completion(txn)
                self.done_events[txn.master].notify()

    # -- bus thread -----------------------------------------------------------------------

    def _finished(self) -> bool:
        return (
            all(master.done for master in self.masters)
            and not self.board.entries
            and self.write_buffer.is_empty
        )

    def _bus_body(self) -> Iterator:
        pipelined: Optional[Tuple[Candidate, int]] = None
        while True:
            if pipelined is not None:
                cand, grant_at = pipelined
                pipelined = None
                if grant_at > self.sim.now:
                    yield WaitCycles(grant_at - self.sim.now)
                pipelined = yield from self._serve_gen(cand)
                continue
            candidates = self._collect(self.sim.now)
            if not candidates:
                if self._finished():
                    self._final_cycle = self.sim.now
                    return
                yield WaitEvent(self.board.posted)
                # Re-queue after same-cycle posters so the round sees
                # every request of this cycle, as the method engine does.
                yield WaitCycles(0)
                continue
            ctx = self._make_ctx(self.sim.now, candidates)
            winner = self.arbiter.choose(candidates, ctx)
            self._absorb_losers(candidates, winner, self.sim.now)
            if self.config.arbitration_cycles:
                yield WaitCycles(self.config.arbitration_cycles)
            pipelined = yield from self._serve_gen(winner)

    def _serve_gen(
        self, cand: Candidate
    ) -> Iterator:
        """Serve one transfer; returns the pipelined next decision."""
        txn = cand.txn
        grant_cycle = self.sim.now
        txn.granted_at = grant_cycle
        if cand.from_write_buffer:
            self.write_buffer.pop_head(txn)
        else:
            self.board.remove(txn.master)
        if txn.fault_step < len(txn.fault_plan):
            yield from self._serve_fault_gen(txn, grant_cycle)
            yield WaitCycles(1)
            return None
        slave, bi = self._route(txn)
        slave.idle_until(grant_cycle)
        start = bi.access_permitted_at(txn, grant_cycle)
        finish = slave.serve(txn, start)
        next_decision: Optional[Tuple[Candidate, int]] = None
        if self.config.request_pipelining:
            decide = max(start, finish - self.config.pipeline_lead)
            if decide > self.sim.now:
                yield WaitCycles(decide - self.sim.now)
            next_decision = self._try_lock(finish)
        if finish > self.sim.now:
            yield WaitCycles(finish - self.sim.now)
        if next_decision is None and self.config.request_pipelining:
            # Late sampling point at `finish`, before the winner's
            # completion is published — mirrors the method engine.
            next_decision = self._try_lock(finish)
        if cand.from_write_buffer:
            txn.finished_at = finish
            if txn.origin is not None:
                txn.origin.drained_at = finish
        else:
            self.masters[txn.master].complete(txn, finish)
            self.qos.record_completion(txn)
            self.done_events[txn.master].notify()
        self._transactions += 1
        self._bytes += txn.total_bytes
        covered_from = max(start, self._busy_through + 1)
        if finish >= covered_from:
            self._busy_cycles += finish - covered_from + 1
            self._busy_through = finish
        for observer in self._observers:
            observer(txn, grant_cycle, start, finish)
        if next_decision is None:
            yield WaitCycles(1)
        return next_decision

    def _serve_fault_gen(self, txn: Transaction, grant_cycle: int) -> Iterator:
        """One faulted presentation (mirrors ``AhbPlusBusTlm._serve_fault``).

        The response occupies the bus for one cycle and no data moves:
        no pipelined decision, no throughput/busy accounting.  The
        master's done event is notified either way — on RETRY the master
        thread wakes and re-posts the same transaction, on a final
        response it moves on to its next item.
        """
        code = txn.fault_plan[txn.fault_step]
        txn.fault_step += 1
        start = grant_cycle
        finish = grant_cycle + 1
        txn.started_at = start
        if finish > self.sim.now:
            yield WaitCycles(finish - self.sim.now)
        owner = self.masters[txn.master]
        if code == int(HResp.RETRY):
            if owner.retry(txn, finish):
                self.done_events[txn.master].notify()
                return
        else:
            txn.resp = code
            owner.fail(txn, finish)
        self.qos.record_completion(txn)
        self.done_events[txn.master].notify()
        for observer in self._observers:
            observer(txn, grant_cycle, start, finish)

    def _try_lock(self, finish: int) -> Optional[Tuple[Candidate, int]]:
        """One pipelined sampling point at the current simulation time."""
        candidates = self._collect(self.sim.now)
        if not candidates:
            return None
        ctx = self._make_ctx(self.sim.now, candidates)
        winner = self.arbiter.choose(candidates, ctx)
        self._absorb_losers(candidates, winner, self.sim.now)
        _nslave, nbi = self._route(winner.txn)
        nbi.send_next_info(winner.txn, self.sim.now)
        self._pipelined_grants += 1
        return (winner, finish)

    # -- run ---------------------------------------------------------------------------------

    def run(self, max_cycles: Optional[int] = None) -> AhbPlusRunResult:
        """Spawn all threads and run the kernel to completion."""
        for master in self.masters:
            ThreadProcess(
                self.sim, f"master{master.index}", self._master_body(master)
            ).start()
        bus_thread = ThreadProcess(self.sim, "bus", self._bus_body())
        bus_thread.start()
        self.sim.run(until=max_cycles)
        if not bus_thread.finished and max_cycles is None:
            raise SimulationError("bus thread deadlocked before traffic drained")
        return AhbPlusRunResult(
            cycles=self._final_cycle if bus_thread.finished else self.sim.now,
            transactions=self._transactions,
            bytes_transferred=self._bytes,
            busy_cycles=self._busy_cycles,
            per_master_transactions=[
                master.transactions_completed for master in self.masters
            ],
            error_responses=sum(m.error_aborts for m in self.masters),
            retry_responses=sum(m.retry_responses for m in self.masters),
            absorbed_writes=self.write_buffer.absorbed,
            drained_writes=self.write_buffer.drained,
            max_buffer_occupancy=self.write_buffer.max_occupancy,
            rt_deadline_hits=self.qos.deadline_hits,
            rt_deadline_misses=self.qos.deadline_misses,
            pipelined_grants=self._pipelined_grants,
            bi_next_info=sum(bi.next_info_sent for bi in self.bus_interfaces),
            filter_stats=self.arbiter.filter_stats(),
        )
