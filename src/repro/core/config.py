"""AHB+ platform configuration.

Paper §3.7: *"For the flexibility and reusability, AHB+ TLM has several
parameters, such as bus width, write buffer depth, arbitration algorithm
on/off, and etc.  Other parameters are selection of real-time/non-real
time type of a master, write buffer on/off, and QoS value."*

Every one of those knobs appears here; the platform builders (TLM and
RTL) consume the same object, so an experiment varies one configuration
and runs it at both abstraction levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Optional, Tuple

from repro.core.qos import QosSetting
from repro.ddr.timing import DDR_266, DdrTiming
from repro.errors import ConfigError

#: Filters that may be switched off (the tie-break must stay).
SWITCHABLE_FILTERS = ("request", "hazard", "urgency", "real-time", "pressure", "bank")


@dataclass
class AhbPlusConfig:
    """Complete parameter set of an AHB+ platform instance."""

    # Bus geometry.
    num_masters: int = 4
    bus_width_bytes: int = 4

    # Write buffer (paper: on/off + depth).
    write_buffer_enabled: bool = True
    write_buffer_depth: int = 4

    # Request pipelining and its decision lead time (cycles before the
    # current transfer ends at which the next winner is locked in).
    request_pipelining: bool = True
    pipeline_lead: int = 2

    # Bus Interface to the memory controller (bank interleaving).
    bus_interface_enabled: bool = True

    # Arbitration.
    tie_break: str = "fixed"  # or "round_robin"
    disabled_filters: Tuple[str, ...] = ()
    urgency_margin: int = 32
    #: Anti-starvation bound of the bank filter (cycles a candidate may
    #: wait before bank cost can no longer filter it out).
    starvation_limit: int = 32
    #: Dead cycles HBUSREQ→HGRANT when the bus was idle (pipelining
    #: hides this between back-to-back transfers).
    arbitration_cycles: int = 1

    # QoS registers: master index -> setting; unlisted masters are NRT.
    qos: Dict[int, QosSetting] = field(default_factory=dict)

    # Memory subsystem.
    ddr_timing: DdrTiming = field(default_factory=lambda: DDR_266)
    refresh_enabled: bool = True
    memory_size: int = 1 << 26

    def __post_init__(self) -> None:
        if self.num_masters < 1:
            raise ConfigError("need at least one master")
        if self.bus_width_bytes not in (1, 2, 4, 8, 16):
            raise ConfigError(
                f"unsupported bus width {self.bus_width_bytes} bytes"
            )
        if self.write_buffer_depth < 1:
            raise ConfigError("write buffer depth must be >= 1")
        if self.pipeline_lead < 0:
            raise ConfigError("pipeline lead cannot be negative")
        if self.arbitration_cycles < 0:
            raise ConfigError("arbitration cycles cannot be negative")
        if self.tie_break not in ("fixed", "round_robin"):
            raise ConfigError(f"unknown tie-break {self.tie_break!r}")
        for name in self.disabled_filters:
            if name not in SWITCHABLE_FILTERS:
                raise ConfigError(
                    f"filter {name!r} is unknown or cannot be disabled"
                )
        for master in self.qos:
            if not 0 <= master < self.num_masters:
                raise ConfigError(
                    f"QoS setting for out-of-range master {master}"
                )

    def qos_setting(self, master: int) -> QosSetting:
        """Setting for *master*; defaults to NRT with no objective."""
        return self.qos.get(master, QosSetting())

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping of the full configuration.

        QoS keys become strings (JSON objects cannot key on integers)
        and nested dataclasses serialise through their own ``to_dict``;
        :meth:`from_dict` reverses both, so
        ``AhbPlusConfig.from_dict(json.loads(json.dumps(cfg.to_dict())))``
        is the identity.
        """
        data: Dict[str, object] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "qos":
                data[f.name] = {
                    str(master): setting.to_dict()
                    for master, setting in value.items()
                }
            elif f.name == "ddr_timing":
                data[f.name] = value.to_dict()
            elif f.name == "disabled_filters":
                data[f.name] = list(value)
            else:
                data[f.name] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AhbPlusConfig":
        """Rebuild a configuration from :meth:`to_dict` output.

        Construction runs ``__post_init__``, so every validation rule
        (filter names, QoS ranges, bus width, ...) applies to
        deserialised configs exactly as to hand-built ones.
        """
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown AhbPlusConfig fields {sorted(unknown)}")
        kwargs: Dict[str, object] = dict(data)
        if "qos" in kwargs:
            kwargs["qos"] = {
                int(master): QosSetting.from_dict(setting)
                for master, setting in kwargs["qos"].items()  # type: ignore[union-attr]
            }
        if "ddr_timing" in kwargs:
            kwargs["ddr_timing"] = DdrTiming.from_dict(kwargs["ddr_timing"])  # type: ignore[arg-type]
        if "disabled_filters" in kwargs:
            kwargs["disabled_filters"] = tuple(kwargs["disabled_filters"])  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]

    def without_extensions(self) -> "AhbPlusConfig":
        """A copy with every AHB+ extension off — plain-AHB behaviour.

        Used by comparisons that ask "what does the unextended bus do
        on this workload": no write buffer, no pipelining, no BI, and
        only the tie-break filter deciding.
        """
        return AhbPlusConfig(
            num_masters=self.num_masters,
            bus_width_bytes=self.bus_width_bytes,
            write_buffer_enabled=False,
            write_buffer_depth=1,
            request_pipelining=False,
            pipeline_lead=0,
            bus_interface_enabled=False,
            tie_break=self.tie_break,
            disabled_filters=tuple(SWITCHABLE_FILTERS),
            urgency_margin=self.urgency_margin,
            starvation_limit=self.starvation_limit,
            arbitration_cycles=self.arbitration_cycles,
            qos=dict(self.qos),
            ddr_timing=self.ddr_timing,
            refresh_enabled=self.refresh_enabled,
            memory_size=self.memory_size,
        )
