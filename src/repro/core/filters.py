"""The seven AHB+ arbitration filters.

Paper §3.3: *"In the design of AHB+, seven arbitration filters are
implemented and they are always activated without the consideration of
master / slave combinations."*

Each filter narrows the candidate set; a filter that would eliminate
every candidate **abstains** (returns its input unchanged), so the chain
always ends with at least one survivor and the final tie-break filter
reduces it to exactly one winner.  Filters are individually switchable
(paper §3.7 lists "arbitration algorithm on/off" among the model
parameters), which the ablation benchmark exercises.

Filter order (first applied first):

1. :class:`RequestFilter`       — only candidates whose request is live.
2. :class:`HazardFilter`        — force write-buffer drain when a read
                                  hits a buffered write (RAW hazard).
3. :class:`UrgencyFilter`       — RT transactions whose QoS slack ran
                                  low pre-empt everything else.
4. :class:`RealTimeFilter`      — RT class outranks NRT class.
5. :class:`PressureFilter`      — a nearly full write buffer must drain.
6. :class:`BankFilter`          — prefer accesses the DDRC can serve
                                  cheapest (row hit > bank idle > conflict).
7. :class:`TieBreakFilter`      — fixed-priority or round-robin; reduces
                                  to a single winner.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.errors import ConfigError


@dataclass(slots=True)
class Candidate:
    """One contender in an arbitration round."""

    txn: Transaction
    #: True when the candidate is the write buffer draining, not a master.
    from_write_buffer: bool = False
    #: Master's QoS class (write-buffer drains are never RT).
    real_time: bool = False
    #: Absolute completion deadline derived by the QoS register file.
    deadline: Optional[int] = None

    @property
    def master(self) -> int:
        return self.txn.master

    def slack(self, now: int) -> Optional[int]:
        """Cycles of QoS slack left; ``None`` when no deadline applies."""
        if self.deadline is None:
            return None
        return self.deadline - now


@dataclass(slots=True)
class ArbitrationContext:
    """Round-shared state the filters consult.

    The bus engines keep one instance alive and refresh its fields each
    round (see ``AhbPlusBusTlm._make_ctx``) instead of allocating a new
    context per arbitration — filters must treat it as read-only.
    """

    now: int
    #: Occupancy / depth of the write buffer (0/1 when disabled).
    write_buffer_occupancy: int = 0
    write_buffer_depth: int = 1
    #: True when a candidate read overlaps a buffered write.
    read_hazard: bool = False
    #: Cost of an access for the bank filter: ``access_score(addr) ->``
    #: 0 row-hit / 1 bank-idle / 2 row-conflict, or ``None`` when the
    #: BI does not supply bank information (plain slaves / BI disabled).
    access_score: Optional[Callable[[int], int]] = None
    #: Urgency margin: RT slack at or below this is "urgent".
    urgency_margin: int = 32
    #: Anti-starvation bound for the bank filter: a candidate that has
    #: waited this long can no longer be filtered out on bank cost.
    starvation_limit: int = 64


class ArbitrationFilter(abc.ABC):
    """Base class: narrows candidates, abstaining instead of emptying."""

    #: Short name used in profiling reports and config switches.
    name: str = "filter"

    def __init__(self) -> None:
        self.enabled = True
        self.rounds_applied = 0
        self.rounds_narrowed = 0

    def apply(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        """Run the filter; guaranteed to return a non-empty subset."""
        if not self.enabled or len(candidates) <= 1:
            return candidates
        self.rounds_applied += 1
        narrowed = self._narrow(candidates, ctx)
        if not narrowed:
            return candidates  # abstain rather than starve the bus
        if len(narrowed) < len(candidates):
            self.rounds_narrowed += 1
        return narrowed

    @abc.abstractmethod
    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        """Return the surviving candidates (may be empty = abstain)."""


class RequestFilter(ArbitrationFilter):
    """Filter 1 — keep only candidates whose request is live *now*.

    The TLM engine normally collects only live requests, so this filter
    is a consistency guard; at RTL it corresponds to masking HGRANT by
    HBUSREQ.
    """

    name = "request"

    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        return [c for c in candidates if c.txn.issued_at <= ctx.now]


class HazardFilter(ArbitrationFilter):
    """Filter 2 — read-after-write hazard forces the buffer to drain.

    When a candidate read overlaps an address held in the write buffer,
    ordinary arbitration could serve the read stale data.  The filter
    keeps only the write-buffer candidate until the hazard clears.
    """

    name = "hazard"

    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        if not ctx.read_hazard:
            return candidates
        return [c for c in candidates if c.from_write_buffer]


class UrgencyFilter(ArbitrationFilter):
    """Filter 3 — QoS urgency pre-emption.

    RT candidates whose slack is at or below the urgency margin form an
    exclusive set; among multiple urgent candidates the smallest slack
    survives (earliest-deadline-first).
    """

    name = "urgency"

    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        now = ctx.now
        margin = ctx.urgency_margin
        urgent: List[Tuple[int, Candidate]] = []
        for c in candidates:
            deadline = c.deadline
            if deadline is not None and deadline - now <= margin:
                urgent.append((deadline - now, c))
        if not urgent:
            return candidates
        best = min(slack for slack, _c in urgent)
        return [c for slack, c in urgent if slack == best]


class RealTimeFilter(ArbitrationFilter):
    """Filter 4 — the RT class outranks the NRT class."""

    name = "real-time"

    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        return [c for c in candidates if c.real_time]


class PressureFilter(ArbitrationFilter):
    """Filter 5 — a write buffer at its high watermark must drain.

    Prevents buffer-full stalls: once occupancy reaches the watermark
    (depth - 1 by default), the drain candidate wins unless an earlier
    filter already excluded it.
    """

    name = "pressure"

    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        if ctx.write_buffer_depth <= 0:
            return candidates
        if ctx.write_buffer_occupancy < max(ctx.write_buffer_depth - 1, 1):
            return candidates
        return [c for c in candidates if c.from_write_buffer]


class BankFilter(ArbitrationFilter):
    """Filter 6 — prefer accesses the memory controller serves cheapest.

    Uses the BI's bank information: row hits (score 0) beat idle banks
    (1) beat row conflicts (2).  Without bank information (BI off or a
    bankless slave) the filter abstains, which is exactly the behaviour
    lost when the BI ablation turns the interface off.
    """

    name = "bank"

    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        if ctx.access_score is None:
            return candidates
        # Anti-starvation: bank preference is a throughput optimisation
        # and must never hold a master off the bus indefinitely.  Aged
        # candidates bypass the cost comparison entirely.
        aged = [
            c
            for c in candidates
            if ctx.now - c.txn.issued_at >= ctx.starvation_limit
        ]
        if aged:
            return aged
        scores = [(ctx.access_score(c.txn.addr), c) for c in candidates]
        best = min(score for score, _c in scores)
        return [c for score, c in scores if score == best]


class TieBreakFilter(ArbitrationFilter):
    """Filter 7 — deterministic final selection (exactly one survivor).

    ``fixed`` keeps the lowest master index (the write buffer's
    pseudo-index ranks last so real masters win ties); ``round_robin``
    rotates priority after each grant.
    """

    name = "tie-break"

    def __init__(self, policy: str = "fixed", num_masters: int = 16) -> None:
        super().__init__()
        if policy not in ("fixed", "round_robin"):
            raise ConfigError(f"unknown tie-break policy {policy!r}")
        self.policy = policy
        self.num_masters = num_masters
        self._last_winner = num_masters - 1

    def apply(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        # The tie-break may not abstain and may not be disabled — the
        # chain must end with a single winner.
        self.rounds_applied += 1
        if len(candidates) > 1:
            self.rounds_narrowed += 1
        return self._narrow(candidates, ctx)

    def _rank_fixed(self, candidate: Candidate) -> int:
        if candidate.from_write_buffer:
            return WRITE_BUFFER_MASTER
        return candidate.master

    def _rank_round_robin(self, candidate: Candidate) -> int:
        if candidate.from_write_buffer:
            return WRITE_BUFFER_MASTER
        return (candidate.master - self._last_winner - 1) % self.num_masters

    def _narrow(
        self, candidates: List[Candidate], ctx: ArbitrationContext
    ) -> List[Candidate]:
        if self.policy == "fixed":
            winner = min(candidates, key=self._rank_fixed)
        else:
            winner = min(candidates, key=self._rank_round_robin)
            if not winner.from_write_buffer:
                self._last_winner = winner.master
        return [winner]


def default_filter_chain(
    tie_break: str = "fixed", num_masters: int = 16
) -> List[ArbitrationFilter]:
    """The seven always-active AHB+ filters, in canonical order."""
    return [
        RequestFilter(),
        HazardFilter(),
        UrgencyFilter(),
        RealTimeFilter(),
        PressureFilter(),
        BankFilter(),
        TieBreakFilter(policy=tie_break, num_masters=num_masters),
    ]


FILTER_NAMES = (
    "request",
    "hazard",
    "urgency",
    "real-time",
    "pressure",
    "bank",
    "tie-break",
)
