"""AHB+ QoS registers.

Paper §2: *"In order to guarantee QoS of IPs, AHB+ has special internal
registers.  These registers store QoS objective value and the type of
real-time/Non-real time master."*

:class:`QosRegisterFile` is that register block.  Each master has a
:class:`QosSetting` holding its class (RT / NRT) and its latency
objective in cycles.  The arbiter derives an absolute deadline for every
transaction — either the explicit deadline carried by the traffic
(streaming sources know their own deadlines) or ``issue + objective``
for RT masters — and the urgency filter promotes transactions whose
slack has shrunk below the urgency margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.ahb.transaction import Transaction
from repro.errors import ConfigError


@dataclass(frozen=True)
class QosSetting:
    """QoS register contents for one master.

    Attributes
    ----------
    real_time:
        RT masters participate in deadline-based arbitration; NRT
        masters never pre-empt on urgency.
    objective_cycles:
        Latency objective: an RT transaction should complete within this
        many cycles of issue.  Ignored for NRT masters.
    """

    real_time: bool = False
    objective_cycles: int = 0

    def __post_init__(self) -> None:
        if self.real_time and self.objective_cycles <= 0:
            raise ConfigError(
                "a real-time master needs a positive QoS objective"
            )
        if self.objective_cycles < 0:
            raise ConfigError("QoS objective cannot be negative")

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view of the register contents."""
        return {
            "real_time": self.real_time,
            "objective_cycles": self.objective_cycles,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "QosSetting":
        """Rebuild a setting; the constructor re-validates it."""
        return cls(
            real_time=bool(data.get("real_time", False)),
            objective_cycles=int(data.get("objective_cycles", 0)),
        )


#: Register-file encoding used by the memory-mapped view: bit 31 = RT
#: flag, low 24 bits = objective.  Mirrors how the proprietary bus
#: exposes its internal registers to software.
_RT_BIT = 1 << 31
_OBJECTIVE_MASK = (1 << 24) - 1


def encode_setting(setting: QosSetting) -> int:
    """Pack a :class:`QosSetting` into its register word."""
    word = setting.objective_cycles & _OBJECTIVE_MASK
    if setting.real_time:
        word |= _RT_BIT
    return word


def decode_setting(word: int) -> QosSetting:
    """Unpack a register word into a :class:`QosSetting`."""
    return QosSetting(
        real_time=bool(word & _RT_BIT),
        objective_cycles=word & _OBJECTIVE_MASK,
    )


class QosRegisterFile:
    """The AHB+ internal QoS register block.

    Settings may be installed programmatically (:meth:`configure`) or
    through the register-word view (:meth:`write_word`), which is how a
    memory-mapped configuration port would drive it.
    """

    def __init__(self, num_masters: int) -> None:
        if num_masters < 1:
            raise ConfigError("register file needs at least one master")
        self.num_masters = num_masters
        self._settings: Dict[int, QosSetting] = {
            index: QosSetting() for index in range(num_masters)
        }
        # Flat RT-class cache: is_real_time() runs per candidate per
        # arbitration round, so it reads a list instead of the dict.
        self._rt_flags: List[bool] = [False] * num_masters
        self.deadline_misses = 0
        self.deadline_hits = 0

    # -- configuration ----------------------------------------------------------

    def configure(self, master: int, setting: QosSetting) -> None:
        """Install *setting* for *master*."""
        self._check_master(master)
        self._settings[master] = setting
        self._rt_flags[master] = setting.real_time

    def write_word(self, master: int, word: int) -> None:
        """Register-word write path (software-visible encoding)."""
        self.configure(master, decode_setting(word))

    def read_word(self, master: int) -> int:
        """Register-word read path."""
        self._check_master(master)
        return encode_setting(self._settings[master])

    def setting(self, master: int) -> QosSetting:
        self._check_master(master)
        return self._settings[master]

    def is_real_time(self, master: int) -> bool:
        if 0 <= master < self.num_masters:
            return self._rt_flags[master]
        self._check_master(master)
        return False  # pragma: no cover - _check_master always raises

    def _check_master(self, master: int) -> None:
        if master not in self._settings:
            raise ConfigError(
                f"master {master} outside register file "
                f"(0..{self.num_masters - 1})"
            )

    # -- deadline derivation -------------------------------------------------------

    def deadline_for(self, txn: Transaction) -> Optional[int]:
        """Absolute completion deadline for *txn*, or ``None`` for NRT.

        Explicit per-transaction deadlines (streaming traffic) win over
        the register objective.
        """
        if txn.deadline is not None:
            return txn.deadline
        setting = self._settings.get(txn.master)
        if setting is None or not setting.real_time:
            return None
        return txn.issued_at + setting.objective_cycles

    def record_completion(self, txn: Transaction) -> None:
        """Track deadline satisfaction for completed RT transactions."""
        deadline = self.deadline_for(txn)
        if deadline is None:
            return
        if txn.finished_at <= deadline:
            self.deadline_hits += 1
        else:
            self.deadline_misses += 1

    @property
    def rt_masters(self) -> List[int]:
        """Indices of masters configured as real-time."""
        return [m for m, s in self._settings.items() if s.real_time]

    def miss_rate(self) -> float:
        """Fraction of RT transactions that missed their deadline."""
        total = self.deadline_hits + self.deadline_misses
        if total == 0:
            return 0.0
        return self.deadline_misses / total
