"""Method-based transaction-level model of the AHB+ main bus.

This is the model the paper builds and evaluates: a callback-driven
engine (no threads — paper §4 credits method-based modeling for much of
the simulation speed) that advances an integer cycle counter from
transaction boundary to transaction boundary.

Per arbitration round the engine:

1. collects live candidates — pending master transactions plus the
   write buffer's head when occupied ("the write buffer behaves as
   another master", §3.3);
2. runs the seven-filter arbiter to pick the winner;
3. lets the write buffer absorb the *losing* writes ("stores the
   information of write transactions when a master cannot get a bus
   grant at the right time", §3.3), freeing those masters immediately;
4. serves the winner through the Bus Interface (refresh permission,
   then the DDRC's analytic bank timing); and
5. while the transfer drains, makes the *pipelined* decision for the
   next winner and forwards it over the BI so the DDRC can open the
   next bank early (request pipelining + bank interleaving, §2) — the
   next address phase then overlaps the current last data beat.

Everything observable (grants, per-filter narrowing, BI messages,
buffer occupancy, QoS misses) is counted, feeding the profiling layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ahb.bus import BusRunResult, TransactionObserver
from repro.ahb.decoder import AddressMap, single_slave_map
from repro.ahb.master import TlmMaster
from repro.ahb.slave import TlmSlave
from repro.ahb.transaction import Transaction
from repro.ahb.types import HResp
from repro.core.arbiter import AhbPlusArbiter
from repro.core.bus_interface import BusInterface, make_routed_score
from repro.core.config import AhbPlusConfig
from repro.core.filters import ArbitrationContext, Candidate
from repro.core.qos import QosRegisterFile
from repro.core.write_buffer import WriteBuffer
from repro.errors import ConfigError, SimulationError


@dataclass
class AhbPlusRunResult(BusRunResult):
    """Run summary with the AHB+-specific counters added."""

    absorbed_writes: int = 0
    drained_writes: int = 0
    max_buffer_occupancy: int = 0
    rt_deadline_hits: int = 0
    rt_deadline_misses: int = 0
    pipelined_grants: int = 0
    bi_next_info: int = 0
    filter_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)

    @property
    def rt_miss_rate(self) -> float:
        total = self.rt_deadline_hits + self.rt_deadline_misses
        if total == 0:
            return 0.0
        return self.rt_deadline_misses / total


class AhbPlusBusTlm:
    """The AHB+ main bus, memory controller attached over the BI."""

    def __init__(
        self,
        masters: Sequence[TlmMaster],
        slaves: Sequence[TlmSlave],
        config: Optional[AhbPlusConfig] = None,
        address_map: Optional[AddressMap] = None,
        qos: Optional[QosRegisterFile] = None,
    ) -> None:
        if not masters:
            raise ConfigError("bus needs at least one master")
        if not slaves:
            raise ConfigError("bus needs at least one slave")
        self.config = config if config is not None else AhbPlusConfig(
            num_masters=len(masters)
        )
        self.masters = list(masters)
        self.slaves = list(slaves)
        self.address_map = (
            address_map if address_map is not None else single_slave_map()
        )
        self.qos = qos if qos is not None else self._default_qos()
        self.write_buffer = WriteBuffer(
            depth=self.config.write_buffer_depth,
            enabled=self.config.write_buffer_enabled,
        )
        self.arbiter = AhbPlusArbiter(
            tie_break=self.config.tie_break,
            num_masters=self.config.num_masters,
        )
        for name in self.config.disabled_filters:
            self.arbiter.set_filter_enabled(name, False)
        self.bus_interfaces = [
            BusInterface(slave, enabled=self.config.bus_interface_enabled)
            for slave in self.slaves
        ]
        self._observers: List[TransactionObserver] = []
        self._now = 0
        self._busy_cycles = 0
        self._busy_through = -1
        self._transactions = 0
        self._bytes = 0
        self._pipelined: Optional[Tuple[Candidate, int]] = None
        self._pipelined_grants = 0
        # One context reused across rounds: every field is refreshed by
        # _make_ctx, so per-round allocation is avoided on the hot path.
        self._ctx = ArbitrationContext(
            now=0,
            urgency_margin=self.config.urgency_margin,
            starvation_limit=self.config.starvation_limit,
        )
        # Multi-slave maps need the address-routed bank-score oracle
        # (see make_routed_score); BI off means no oracle at all so the
        # bank filter abstains, matching single-slave and RTL semantics.
        # Single-slave platforms keep the direct single-BI closure — the
        # original hot path, byte-identical.
        self._routed_score_at = (
            make_routed_score(self.bus_interfaces, self.address_map)
            if len(self.slaves) > 1 and self.config.bus_interface_enabled
            else None
        )

    def _default_qos(self) -> QosRegisterFile:
        qos = QosRegisterFile(self.config.num_masters)
        for master, setting in self.config.qos.items():
            qos.configure(master, setting)
        return qos

    # -- instrumentation ---------------------------------------------------------

    def add_observer(self, observer: TransactionObserver) -> None:
        """Register a ``(txn, grant, start, finish)`` callback."""
        self._observers.append(observer)

    @property
    def now(self) -> int:
        return self._now

    # -- candidate handling ---------------------------------------------------------

    def _collect(
        self, now: int, exclude: Optional[Transaction] = None
    ) -> List[Candidate]:
        candidates: List[Candidate] = []
        qos = self.qos
        for master in self.masters:
            txn = master.pending(now)
            if txn is None or txn is exclude:
                continue
            candidates.append(
                Candidate(
                    txn=txn,
                    from_write_buffer=False,
                    real_time=qos.is_real_time(master.index),
                    deadline=qos.deadline_for(txn),
                )
            )
        head = self.write_buffer.head()
        if head is not None:
            candidates.append(Candidate(txn=head, from_write_buffer=True))
        return candidates

    def _route(self, txn: Transaction) -> Tuple[TlmSlave, BusInterface]:
        index = self.address_map.slave_for(txn.addr)
        return self.slaves[index], self.bus_interfaces[index]

    def _make_ctx(self, now: int, candidates: Sequence[Candidate]) -> ArbitrationContext:
        buffer = self.write_buffer
        ctx = self._ctx
        ctx.now = now
        ctx.write_buffer_occupancy = buffer.occupancy
        ctx.write_buffer_depth = buffer.depth if buffer.enabled else 0
        ctx.read_hazard = buffer.read_hazard(candidates)
        if self._routed_score_at is not None:
            # Multi-slave: score every address via its own region's BI.
            ctx.access_score = self._routed_score_at(now)
        else:
            # Single slave: the one BI serves every candidate (the paper
            # topology, where the DDRC is the only region).
            _slave, bi = self._route(candidates[0].txn)
            ctx.access_score = bi.access_score_fn(now)
        return ctx

    def _absorb_losers(
        self, candidates: Sequence[Candidate], winner: Candidate, cycle: int
    ) -> None:
        """Post losing writes into the buffer, freeing their masters."""
        for cand in candidates:
            if cand is winner or cand.from_write_buffer:
                continue
            txn = cand.txn
            if self.write_buffer.can_absorb(txn):
                self.write_buffer.absorb(txn, cycle)
                self.masters[txn.master].absorb(txn, cycle)
                self.qos.record_completion(txn)

    # -- serving ----------------------------------------------------------------------

    def _serve_fault(self, txn: Transaction, grant_cycle: int) -> None:
        """One faulted presentation: ERROR/RETRY instead of data beats.

        The response occupies the bus for one cycle; no data moves, so
        neither the throughput counters nor the busy accounting change,
        and no pipelined decision is locked in (the faulted address
        phase carries no data beats to overlap with).
        """
        code = txn.fault_plan[txn.fault_step]
        txn.fault_step += 1
        start = grant_cycle
        finish = grant_cycle + 1
        txn.started_at = start
        self._pipelined = None
        self._now = finish + 1
        owner = self.masters[txn.master]
        if code == int(HResp.RETRY):
            if owner.retry(txn, finish):
                return  # master re-requests; the next round re-arbitrates
        else:
            txn.resp = code
            owner.fail(txn, finish)
        self.qos.record_completion(txn)
        for observer in self._observers:
            observer(txn, grant_cycle, start, finish)

    def _serve(self, cand: Candidate, grant_cycle: int) -> None:
        txn = cand.txn
        txn.granted_at = grant_cycle
        if cand.from_write_buffer:
            # The head leaves the FIFO as its transfer starts, so the
            # pipelined decision made mid-transfer sees the next entry.
            self.write_buffer.pop_head(txn)
        if txn.fault_step < len(txn.fault_plan):
            self._serve_fault(txn, grant_cycle)
            return
        slave, bi = self._route(txn)
        slave.idle_until(grant_cycle)
        start = bi.access_permitted_at(txn, grant_cycle)
        finish = slave.serve(txn, start)
        if finish < start:
            raise SimulationError(
                f"slave {slave.name} finished {finish} before start {start}"
            )
        # The pipelined decision samples requests that existed *before*
        # this transfer's completion side effects, as the RTL arbiter
        # does — so it runs before the winner's agent is advanced.
        self._decide_pipelined(start, finish, exclude=txn)
        if cand.from_write_buffer:
            txn.finished_at = finish
            if txn.origin is not None:
                txn.origin.drained_at = finish
        else:
            self.masters[txn.master].complete(txn, finish)
            self.qos.record_completion(txn)
        self._transactions += 1
        self._bytes += txn.total_bytes
        # Busy accounting must not double-count the pipelined overlap
        # cycle (next address phase atop the previous last data beat).
        covered_from = max(start, self._busy_through + 1)
        if finish >= covered_from:
            self._busy_cycles += finish - covered_from + 1
            self._busy_through = finish
        for observer in self._observers:
            observer(txn, grant_cycle, start, finish)

    def _decide_pipelined(
        self, start: int, finish: int, exclude: Optional[Transaction]
    ) -> None:
        """Lock in the next winner before the current transfer ends.

        Two sampling points model the RTL arbiter's per-cycle lock
        window: the early point at ``finish - pipeline_lead`` and, if it
        found nobody, a late point at ``finish`` itself.
        """
        self._pipelined = None
        if not self.config.request_pipelining:
            self._now = finish + 1
            return
        for sample in (max(start, finish - self.config.pipeline_lead), finish):
            candidates = self._collect(sample, exclude=exclude)
            if not candidates:
                continue
            ctx = self._make_ctx(sample, candidates)
            winner = self.arbiter.choose(candidates, ctx)
            self._absorb_losers(candidates, winner, sample)
            _slave, bi = self._route(winner.txn)
            bi.send_next_info(winner.txn, sample)
            # The pipelined address phase overlaps the final data beat,
            # so the next transfer may begin at `finish` with no dead cycle.
            self._pipelined = (winner, finish)
            self._pipelined_grants += 1
            self._now = finish
            return
        self._now = finish + 1

    # -- run loop ------------------------------------------------------------------------

    def _all_done(self) -> bool:
        return (
            all(master.done for master in self.masters)
            and self.write_buffer.is_empty
            and self._pipelined is None
        )

    def _advance_to_next_request(self) -> bool:
        upcoming = [
            cycle
            for master in self.masters
            if (cycle := master.earliest_request()) is not None
        ]
        if not upcoming:
            return False
        self._now = max(self._now, min(upcoming))
        return True

    def run(self, max_cycles: Optional[int] = None) -> AhbPlusRunResult:
        """Run to completion of all traffic (or *max_cycles*)."""
        while not self._all_done():
            if max_cycles is not None and self._now >= max_cycles:
                break
            if self._pipelined is not None:
                winner, grant_at = self._pipelined
                self._pipelined = None
                self._serve(winner, max(self._now, grant_at))
                continue
            candidates = self._collect(self._now)
            if not candidates:
                if not self._advance_to_next_request():
                    break
                continue
            ctx = self._make_ctx(self._now, candidates)
            winner = self.arbiter.choose(candidates, ctx)
            self._absorb_losers(candidates, winner, self._now)
            grant = self._now + self.config.arbitration_cycles
            self._serve(winner, grant)
        return self._result()

    def _result(self) -> AhbPlusRunResult:
        return AhbPlusRunResult(
            cycles=self._now,
            transactions=self._transactions,
            bytes_transferred=self._bytes,
            busy_cycles=self._busy_cycles,
            per_master_transactions=[
                master.transactions_completed for master in self.masters
            ],
            error_responses=sum(m.error_aborts for m in self.masters),
            retry_responses=sum(m.retry_responses for m in self.masters),
            absorbed_writes=self.write_buffer.absorbed,
            drained_writes=self.write_buffer.drained,
            max_buffer_occupancy=self.write_buffer.max_occupancy,
            rt_deadline_hits=self.qos.deadline_hits,
            rt_deadline_misses=self.qos.deadline_misses,
            pipelined_grants=self._pipelined_grants,
            bi_next_info=sum(bi.next_info_sent for bi in self.bus_interfaces),
            filter_stats=self.arbiter.filter_stats(),
        )
