"""Transaction-level ports: the paper's signal-to-method mapping.

Paper §3.1–3.2 redefine the AHB+ signal protocol as transaction-level
ports: *"a master can immediately get 'HGRANT' ... is represented as the
transaction port of a master calls CheckGrant() and receives 'true' ...
the master calls 'Read(addr, *data, *ctrl)' function and receives 'OK'
as a return value."*

:class:`TransactionPort` is that port.  It offers the blocking,
software-driver style of use — call ``read``/``write`` and get a status
back — on top of an :class:`InteractiveAhbPlus` system that advances the
shared clock as calls are made.  The batch engines in
:mod:`repro.core.bus` drive the same arbitration and memory machinery
from recorded traffic instead; the port API is what a user integrating
an instruction-set simulator or a hand-written test stimulus uses.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Sequence, Tuple

from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.core.arbiter import AhbPlusArbiter
from repro.core.bus_interface import BusInterface
from repro.core.config import AhbPlusConfig
from repro.core.filters import ArbitrationContext, Candidate
from repro.core.qos import QosRegisterFile
from repro.core.write_buffer import WriteBuffer
from repro.ahb.slave import TlmSlave
from repro.errors import ConfigError


class PortStatus(enum.Enum):
    """Return codes of the transaction-port calls (the paper's 'OK')."""

    OK = "OK"
    POSTED = "POSTED"  # write absorbed by the write buffer


class InteractiveAhbPlus:
    """A synchronously driven AHB+ system for port-style stimulus.

    One shared clock advances as ports issue transactions.  Multiple
    ports may be created; each call arbitrates against the write
    buffer's pending drains (ports themselves are serialized by the
    calling code — Python callers are sequential by construction).
    """

    def __init__(
        self,
        slave: TlmSlave,
        config: Optional[AhbPlusConfig] = None,
    ) -> None:
        self.config = config if config is not None else AhbPlusConfig()
        self.slave = slave
        self.qos = QosRegisterFile(self.config.num_masters)
        for master, setting in self.config.qos.items():
            self.qos.configure(master, setting)
        self.write_buffer = WriteBuffer(
            depth=self.config.write_buffer_depth,
            enabled=self.config.write_buffer_enabled,
        )
        self.arbiter = AhbPlusArbiter(
            tie_break=self.config.tie_break,
            num_masters=self.config.num_masters,
        )
        for name in self.config.disabled_filters:
            self.arbiter.set_filter_enabled(name, False)
        self.bi = BusInterface(slave, enabled=self.config.bus_interface_enabled)
        self._now = 0
        self._ports: List[TransactionPort] = []

    @property
    def now(self) -> int:
        """Current cycle of the shared bus clock."""
        return self._now

    def port(self, master_index: int) -> "TransactionPort":
        """Create (or fetch) the transaction port of *master_index*."""
        if not 0 <= master_index < self.config.num_masters:
            raise ConfigError(f"master index {master_index} out of range")
        for existing in self._ports:
            if existing.master_index == master_index:
                return existing
        port = TransactionPort(self, master_index)
        self._ports.append(port)
        return port

    # -- engine ---------------------------------------------------------------

    def _ctx(self, candidates: Sequence[Candidate]) -> ArbitrationContext:
        hazard = self.write_buffer.read_hazard(candidates)
        return ArbitrationContext(
            now=self._now,
            write_buffer_occupancy=self.write_buffer.occupancy,
            write_buffer_depth=(
                self.write_buffer.depth if self.write_buffer.enabled else 0
            ),
            read_hazard=hazard,
            access_score=self.bi.access_score_fn(self._now),
            urgency_margin=self.config.urgency_margin,
            starvation_limit=self.config.starvation_limit,
        )

    def _candidates_for(self, txn: Optional[Transaction]) -> List[Candidate]:
        candidates: List[Candidate] = []
        if txn is not None:
            candidates.append(
                Candidate(
                    txn=txn,
                    real_time=self.qos.is_real_time(txn.master),
                    deadline=self.qos.deadline_for(txn),
                )
            )
        head = self.write_buffer.head()
        if head is not None:
            candidates.append(Candidate(txn=head, from_write_buffer=True))
        return candidates

    def would_grant(self, master_index: int) -> bool:
        """The CheckGrant() of the paper: would this master win right now?

        Non-committal — no clock advance, no state change beyond filter
        statistics.
        """
        probe = Transaction(
            master=master_index, kind=AccessKind.READ, addr=0, beats=1
        )
        probe.issued_at = self._now
        candidates = self._candidates_for(probe)
        winner = self.arbiter.choose(candidates, self._ctx(candidates))
        return winner.txn is probe

    def _serve_on_bus(self, txn: Transaction) -> int:
        """Grant + serve one transaction; advances the clock."""
        grant = self._now + self.config.arbitration_cycles
        txn.granted_at = grant
        self.slave.idle_until(grant)
        start = self.bi.access_permitted_at(txn, grant)
        finish = self.slave.serve(txn, start)
        txn.finished_at = finish
        if txn.origin is not None:
            txn.origin.drained_at = finish
        self._now = finish + 1
        return finish

    def execute(self, txn: Transaction) -> PortStatus:
        """Run *txn* to completion, draining the buffer as arbitration demands."""
        txn.issued_at = self._now
        while True:
            candidates = self._candidates_for(txn)
            winner = self.arbiter.choose(candidates, self._ctx(candidates))
            if winner.txn is txn:
                # A losing write would be posted; a winning one rides the bus.
                self._serve_on_bus(txn)
                self.qos.record_completion(txn)
                return PortStatus.OK
            if winner.from_write_buffer:
                drain = winner.txn
                self._serve_on_bus(drain)
                self.write_buffer.pop_head(drain)
                continue
            raise ConfigError("unexpected arbitration outcome")  # pragma: no cover

    def post_write(self, txn: Transaction) -> Optional[PortStatus]:
        """Try to absorb a write; returns POSTED or ``None`` if not possible."""
        txn.issued_at = self._now
        if not self.write_buffer.can_absorb(txn):
            return None
        self.write_buffer.absorb(txn, self._now)
        txn.finished_at = self._now
        txn.via_write_buffer = True
        return PortStatus.POSTED

    def drain_write_buffer(self) -> int:
        """Flush all posted writes; returns the cycle after the last drain."""
        while True:
            head = self.write_buffer.head()
            if head is None:
                return self._now
            self._serve_on_bus(head)
            self.write_buffer.pop_head(head)

    def idle(self, cycles: int) -> None:
        """Advance the clock with the bus idle (think time)."""
        if cycles < 0:
            raise ConfigError("cannot idle a negative number of cycles")
        self._now += cycles
        self.slave.idle_until(self._now)


class TransactionPort:
    """Master-side transaction-level port (CheckGrant / Read / Write)."""

    def __init__(self, system: InteractiveAhbPlus, master_index: int) -> None:
        self.system = system
        self.master_index = master_index
        self.reads = 0
        self.writes = 0
        self.posted_writes = 0

    def check_grant(self) -> bool:
        """Paper §3.2: returns ``True`` when the bus would grant now."""
        return self.system.would_grant(self.master_index)

    def read(
        self, addr: int, beats: int = 1, size_bytes: int = 4, wrapping: bool = False
    ) -> Tuple[PortStatus, List[int]]:
        """Blocking burst read; returns ``(OK, data)``."""
        txn = Transaction(
            master=self.master_index,
            kind=AccessKind.READ,
            addr=addr,
            beats=beats,
            size_bytes=size_bytes,
            wrapping=wrapping,
        )
        status = self.system.execute(txn)
        self.reads += 1
        return status, txn.data

    def write(
        self,
        addr: int,
        data: Sequence[int],
        size_bytes: int = 4,
        wrapping: bool = False,
        posted: bool = True,
    ) -> PortStatus:
        """Blocking (or posted) burst write.

        With ``posted=True`` (the default) the write lands in the write
        buffer when space allows — the call returns ``POSTED`` without
        consuming bus cycles, exactly the latency-hiding behaviour the
        buffer exists for.
        """
        txn = Transaction(
            master=self.master_index,
            kind=AccessKind.WRITE,
            addr=addr,
            beats=len(data),
            size_bytes=size_bytes,
            wrapping=wrapping,
            data=list(data),
        )
        if posted:
            status = self.system.post_write(txn)
            if status is not None:
                self.posted_writes += 1
                return status
        result = self.system.execute(txn)
        self.writes += 1
        return result
