"""The Bus Interface (BI) between the AHB+ arbiter and the DDRC.

Paper §2: *"BI is designed for transferring special information between
arbiter and memory controller such as the next transaction information,
idle bank, access permission and so on."*  And §3.4: *"This interface is
designed to support the bank interleaving feature for throughput
enhancement."*

At transaction level the BI is a thin typed channel wrapping the slave's
hooks; the value of modelling it explicitly is (a) the on/off ablation —
disabling the BI removes advance bank preparation and bank-aware
arbitration, exactly the paper's throughput feature — and (b) profiling
of the traffic crossing it.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.ahb.decoder import AddressMap
from repro.ahb.slave import TlmSlave
from repro.ahb.transaction import Transaction


class BusInterface:
    """Typed arbiter↔memory-controller side channel."""

    def __init__(self, slave: TlmSlave, enabled: bool = True) -> None:
        self.slave = slave
        self.enabled = enabled
        # Profiling counters for the three BI message classes.
        self.next_info_sent = 0
        self.idle_bank_queries = 0
        self.permission_queries = 0
        self.preparations_effective = 0
        # Cached bank-cost closure (see access_score_fn): rebuilt never,
        # re-aimed at the current cycle once per arbitration round.
        self._score_cycle = 0
        self._score_fn: Optional[Callable[[int], int]] = None

    # -- next transaction information -------------------------------------------

    def send_next_info(self, txn: Transaction, cycle: int) -> None:
        """Forward the pipelined next transaction to the controller.

        The DDRC uses it to pre-charge/activate the target bank while
        the current transfer still owns the data bus (bank interleaving).
        A disabled BI silently drops the message — the controller then
        sees every transaction cold.
        """
        if not self.enabled:
            return
        before = getattr(self.slave, "prepared_banks", None)
        self.slave.notify_next(txn, cycle)
        self.next_info_sent += 1
        after = getattr(self.slave, "prepared_banks", None)
        if before is not None and after is not None and after > before:
            self.preparations_effective += 1

    # -- idle bank map ---------------------------------------------------------------

    def idle_banks(self, cycle: int) -> Optional[int]:
        """Idle-bank bitmap, or ``None`` when the BI is disabled."""
        if not self.enabled:
            return None
        self.idle_bank_queries += 1
        return self.slave.idle_banks(cycle)

    def access_score_fn(self, cycle: int) -> Optional[Callable[[int], int]]:
        """Bank-cost oracle for the arbiter's bank filter.

        Returns ``None`` when the BI is disabled or the slave has no
        bank structure, which makes the bank filter abstain.  The
        returned closure is cached; only the cycle it reports against is
        refreshed, so calling this per round costs no allocation.  The
        closure is only valid for the round it was handed out for.
        """
        if not self.enabled:
            return None
        self._score_cycle = cycle
        lookup = self._score_fn
        if lookup is None:
            score = getattr(self.slave, "access_score", None)
            if score is None:
                return None

            def lookup(addr: int) -> int:
                self.idle_bank_queries += 1
                return score(addr, self._score_cycle)

            self._score_fn = lookup
        return lookup

    # -- access permission ----------------------------------------------------------

    def access_permitted_at(self, txn: Transaction, cycle: int) -> int:
        """Earliest cycle the controller accepts *txn*'s address phase.

        Permission is a correctness channel (refresh windows must be
        respected), so it works even with the BI disabled — a real
        system would fall back to HREADY stalling; the model returns the
        same cycle either way.
        """
        self.permission_queries += 1
        return self.slave.access_permitted_at(txn, cycle)


def make_routed_score(
    bus_interfaces: Sequence[BusInterface], address_map: AddressMap
) -> Callable[[int], Callable[[int], int]]:
    """Address-routed bank-score oracle for multi-slave maps.

    On a multi-slave platform one arbitration round's candidates may
    target different slaves, so each address must be scored by *its*
    region's BI; a bank-less slave (SRAM, APB bridge) scores 0 — the
    best — so the bank filter only differentiates DDR candidates.

    Returns an ``at(now)`` re-aimer mirroring
    :meth:`BusInterface.access_score_fn`'s cached-closure shape: the
    lookup closure is built once, only the cycle it reports against is
    refreshed per round.  Callers must gate on
    ``config.bus_interface_enabled`` — with the BI off the oracle must
    be ``None`` so the bank filter abstains, exactly as on the
    single-slave platform and in the RTL arbiter.
    """
    cycle_cell: List[int] = [0]

    def lookup(addr: int) -> int:
        fn = bus_interfaces[address_map.slave_for(addr)].access_score_fn(
            cycle_cell[0]
        )
        return 0 if fn is None else fn(addr)

    def at(now: int) -> Callable[[int], int]:
        cycle_cell[0] = now
        return lookup

    return at
