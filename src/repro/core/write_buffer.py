"""The AHB+ write buffer.

Paper §3.3: *"The write buffer stores the information of write
transactions when a master cannot get a bus grant at the right time.
The write buffer behaves as another master when it is occupied by
waiting transactions."*

Absorbing a write frees the issuing master immediately (posted-write
semantics); the buffered copy later drains onto the bus as a
pseudo-master transaction with index
:data:`~repro.ahb.transaction.WRITE_BUFFER_MASTER`.  The buffer also
answers read-hazard queries so the arbiter's hazard filter can force a
drain before a read observes stale memory.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.ahb.burst import transaction_footprint
from repro.ahb.transaction import WRITE_BUFFER_MASTER, Transaction
from repro.errors import ConfigError, SimulationError


class WriteBuffer:
    """FIFO of posted writes acting as an extra bus master."""

    def __init__(self, depth: int = 4, enabled: bool = True) -> None:
        if depth < 1:
            raise ConfigError(f"write buffer depth must be >= 1, got {depth}")
        self.depth = depth
        self.enabled = enabled
        self._drains: Deque[Transaction] = deque()
        # Statistics (paper §3.6 profiles the write buffer explicitly).
        self.absorbed = 0
        self.drained = 0
        self.rejected_full = 0
        self.max_occupancy = 0
        self.hazard_hits = 0

    # -- occupancy ---------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        """Writes currently waiting to drain."""
        return len(self._drains)

    @property
    def is_empty(self) -> bool:
        return not self._drains

    @property
    def is_full(self) -> bool:
        return len(self._drains) >= self.depth

    # -- absorb path -----------------------------------------------------------------

    def can_absorb(self, txn: Transaction) -> bool:
        """Whether *txn* qualifies for posting.

        Only plain (unlocked) writes are buffered; locked transfers must
        observe the bus directly.  Writes with an unconsumed fault plan
        are never posted: the slave still owes them ERROR/RETRY
        responses, which only exist on the bus — absorbing them would
        make the outcome engine-dependent.
        """
        if not self.enabled or txn.locked or not txn.is_write:
            return False
        if txn.fault_step < len(txn.fault_plan):
            return False
        if self.is_full:
            self.rejected_full += 1
            return False
        return True

    def absorb(self, txn: Transaction, cycle: int) -> Transaction:
        """Post *txn*; returns the drain copy that will replay on the bus."""
        if not self.can_absorb(txn):
            raise SimulationError("absorb() called for an unbufferable write")
        drain = Transaction(
            master=WRITE_BUFFER_MASTER,
            kind=txn.kind,
            addr=txn.addr,
            beats=txn.beats,
            size_bytes=txn.size_bytes,
            wrapping=txn.wrapping,
            locked=False,
            data=list(txn.data),
        )
        drain.issued_at = cycle
        drain.via_write_buffer = True
        drain.origin = txn
        self._drains.append(drain)
        self.absorbed += 1
        self.max_occupancy = max(self.max_occupancy, self.occupancy)
        return drain

    # -- drain path --------------------------------------------------------------------

    def head(self) -> Optional[Transaction]:
        """The next write to replay (the buffer's bus request)."""
        if not self._drains:
            return None
        return self._drains[0]

    def pop_head(self, txn: Transaction) -> None:
        """Remove the head after the bus served it."""
        if not self._drains or self._drains[0] is not txn:
            raise SimulationError("write buffer drained out of order")
        self._drains.popleft()
        self.drained += 1

    # -- hazard detection ---------------------------------------------------------------

    def read_hazard(self, candidates) -> bool:
        """True when any non-buffer read candidate overlaps a buffered write.

        The shared RAW-hazard predicate every bus engine feeds into
        :class:`~repro.core.filters.ArbitrationContext` — occupancy is
        checked once up front so the common empty-buffer round costs a
        single test.  *candidates* is any iterable of
        :class:`~repro.core.filters.Candidate`.
        """
        if not self._drains:
            return False
        for cand in candidates:
            if (
                not cand.from_write_buffer
                and not cand.txn.is_write
                and self.conflicts_with(cand.txn)
            ):
                return True
        return False

    def conflicts_with(self, txn: Transaction) -> bool:
        """True when *txn* (a read) overlaps any buffered write's bytes.

        Footprints come from :func:`~repro.ahb.burst.transaction_footprint`
        so wrapping bursts count the bytes below their wrap point — a
        linear ``[addr, addr+total)`` range would miss those and let a
        wrapped read sail past a buffered write it depends on.
        """
        if txn.is_write or not self._drains:
            return False
        lo, hi = transaction_footprint(txn)
        for pending in self._drains:
            p_lo, p_hi = transaction_footprint(pending)
            if lo < p_hi and p_lo < hi:
                self.hazard_hits += 1
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteBuffer(depth={self.depth}, occupancy={self.occupancy}, "
            f"absorbed={self.absorbed})"
        )
