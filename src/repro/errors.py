"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting genuine bugs (``TypeError`` and friends) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistent state."""


class CombinationalLoopError(SimulationError):
    """Combinational signals failed to settle within the iteration bound.

    Raised by the 2-step cycle engine when the evaluate phase keeps
    producing signal changes, which indicates a combinational feedback
    loop in the modelled netlist.
    """


class SchedulingError(SimulationError):
    """An event was scheduled in the past or the queue was corrupted."""


class ProtocolError(ReproError):
    """A bus protocol rule was violated (assertion layer)."""


class PropertyViolation(ReproError):
    """A high-level property check failed (QoS deadline, ordering, ...)."""


class ConfigError(ReproError):
    """An invalid platform or component configuration was supplied."""


class MemoryError_(ReproError):
    """An access fell outside the modelled memory or was malformed."""


class TrafficError(ReproError):
    """A traffic pattern or trace was malformed."""
