"""Bus-protocol assertion checkers (paper §3.5, functional debugging).

Two deployment styles:

* :class:`TransactionChecker` — attaches to any TLM bus observer hook
  and validates each served transaction (alignment, burst legality,
  bookkeeping sanity, timing monotonicity).
* :class:`RtlProtocolChecker` — attaches to the RTL cycle engine as an
  end-of-cycle hook and watches the actual signals: at most one HGRANT,
  at most one address-phase driver, NONSEQ only when the bus is
  available.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ahb.burst import crosses_kb_boundary
from repro.ahb.transaction import Transaction
from repro.ahb.types import HTrans
from repro.assertions.base import Checker
from repro.rtl.signals import MasterSignals, SharedBusSignals


class TransactionChecker(Checker):
    """Validates every transaction a TLM bus serves."""

    def __init__(self, strict: bool = False) -> None:
        super().__init__("tlm-protocol", strict)
        self._last_finish: Optional[int] = None

    def __call__(
        self, txn: Transaction, grant: int, start: int, finish: int
    ) -> None:
        """Observer hook: ``bus.add_observer(checker)``."""
        self.checks_run += 1
        who = dict(master=txn.master, txn_uid=txn.uid)
        if txn.addr % txn.size_bytes:
            self.flag(start, "alignment", f"{txn!r} misaligned", **who)
        if not txn.wrapping and crosses_kb_boundary(
            txn.addr, txn.beats, txn.size_bytes
        ):
            self.flag(start, "kb-boundary", f"{txn!r} crosses 1KB", **who)
        if txn.wrapping and txn.beats not in (4, 8, 16):
            self.flag(
                start, "burst-encoding", f"{txn!r} illegal wrap length", **who
            )
        if grant < txn.issued_at:
            self.flag(grant, "causality", f"{txn!r} granted before issue", **who)
        if start < grant:
            self.flag(start, "causality", f"{txn!r} started before grant", **who)
        if finish < start:
            self.flag(finish, "causality", f"{txn!r} finished before start", **who)
        if txn.is_write and txn.data and len(txn.data) != txn.beats:
            self.flag(start, "data-shape", f"{txn!r} beat/data mismatch", **who)
        if not txn.is_write and txn.resp == 0 and len(txn.data) != txn.beats:
            # An errored/aborted read legitimately returns no data —
            # the shape rule only applies to OKAY completions.
            self.flag(
                finish, "data-shape", f"{txn!r} read returned wrong beats", **who
            )
        if self._last_finish is not None and start < self._last_finish:
            # Transfers may overlap by exactly the pipelined address
            # phase (start == previous finish); more is a protocol error.
            if start < self._last_finish - 1:
                self.flag(
                    start,
                    "overlap",
                    f"{txn!r} starts {self._last_finish - start} cycles "
                    f"inside the previous transfer",
                    **who,
                )
        self._last_finish = max(self._last_finish or 0, finish)


class RtlProtocolChecker(Checker):
    """Watches RTL signals each cycle for AHB legality."""

    def __init__(
        self,
        master_signals: Sequence[MasterSignals],
        bus: SharedBusSignals,
        strict: bool = False,
    ) -> None:
        super().__init__("rtl-protocol", strict)
        self.master_signals = list(master_signals)
        self.bus = bus

    def sample(self, cycle: int) -> None:
        """Cycle hook: ``engine.add_cycle_hook(checker.sample)``."""
        self.checks_run += 1
        grants = [sig for sig in self.master_signals if sig.hgrant.value]
        if len(grants) > 1:
            owners = ", ".join(sig.prefix for sig in grants)
            self.flag(cycle, "grant-unique", f"multiple HGRANTs: {owners}")
        drivers = [
            sig
            for sig in self.master_signals
            if sig.htrans.value == int(HTrans.NONSEQ)
        ]
        if len(drivers) > 1:
            owners = ", ".join(sig.prefix for sig in drivers)
            self.flag(cycle, "addr-unique", f"multiple address drivers: {owners}")
        if drivers and not self.bus.bus_available.value:
            self.flag(
                cycle,
                "addr-when-unavailable",
                f"{drivers[0].prefix} drove NONSEQ while bus unavailable",
            )
        if drivers and not drivers[0].hgrant.value:
            self.flag(
                cycle,
                "addr-without-grant",
                f"{drivers[0].prefix} drove NONSEQ without HGRANT",
            )
