"""Assertions: protocol checkers and system-property checkers."""

from repro.assertions.base import Checker, PropertyChecker, Violation
from repro.assertions.properties import (
    BankFsmChecker,
    OrderingChecker,
    QosPropertyChecker,
)
from repro.assertions.protocol import RtlProtocolChecker, TransactionChecker

__all__ = [
    "BankFsmChecker",
    "Checker",
    "OrderingChecker",
    "PropertyChecker",
    "QosPropertyChecker",
    "RtlProtocolChecker",
    "TransactionChecker",
    "Violation",
]
