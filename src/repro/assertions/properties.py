"""System-property checkers (paper §3.5, property checking).

These run during performance analysis and catch architectural — not
protocol — mistakes:

* :class:`QosPropertyChecker` — RT transactions must meet their
  deadlines (with a configurable tolerated miss rate for saturation
  studies).
* :class:`OrderingChecker` — per-master writes must commit to memory in
  issue order even when posted through the write buffer, and a read
  must never observe a value older than the last write the same master
  completed to that address.
* :class:`BankFsmChecker` — the DDR bank machines only make legal
  state transitions (hooked into the RTL engine).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ahb.burst import transaction_addresses
from repro.ahb.transaction import Transaction
from repro.assertions.base import PropertyChecker
from repro.ddr.bank import BankFsm, BankState

#: Legal bank FSM transitions as observed at once-per-cycle sampling.
#: A transitional state may complete and the next command issue within
#: the same cycle, so e.g. PRECHARGING can appear to step directly to
#: ACTIVATING (through an invisible IDLE).
_LEGAL_BANK_TRANSITIONS = {
    BankState.IDLE: {BankState.IDLE, BankState.ACTIVATING, BankState.REFRESHING},
    BankState.ACTIVATING: {BankState.ACTIVATING, BankState.ACTIVE},
    BankState.ACTIVE: {BankState.ACTIVE, BankState.PRECHARGING},
    BankState.PRECHARGING: {
        BankState.PRECHARGING,
        BankState.IDLE,
        BankState.ACTIVATING,
        BankState.REFRESHING,
    },
    BankState.REFRESHING: {
        BankState.REFRESHING,
        BankState.IDLE,
        BankState.ACTIVATING,
    },
}


class QosPropertyChecker(PropertyChecker):
    """Every RT transaction completes by its deadline."""

    def __init__(self, strict: bool = False) -> None:
        super().__init__("qos-property", strict)
        self.rt_transactions = 0
        self.misses = 0

    def __call__(
        self, txn: Transaction, grant: int, start: int, finish: int
    ) -> None:
        self.checks_run += 1
        met = txn.met_deadline
        if met is None:
            return
        self.rt_transactions += 1
        if not met:
            self.misses += 1
            assert txn.deadline is not None
            self.flag(
                finish,
                "deadline",
                f"{txn!r} finished {finish - txn.deadline} cycles late",
                master=txn.master,
                txn_uid=txn.uid,
            )

    def miss_rate(self) -> float:
        if self.rt_transactions == 0:
            return 0.0
        return self.misses / self.rt_transactions


class OrderingChecker(PropertyChecker):
    """Per-master write ordering and read freshness through the buffer.

    Maintains a shadow memory updated in *completion* order; a read that
    returns data older than the issuing master's last completed write to
    the same address indicates the hazard interlock failed.  (Shadow
    state is per-master, so the checker stays valid under the library's
    disjoint-window workloads.)
    """

    def __init__(self, strict: bool = False) -> None:
        super().__init__("ordering", strict)
        self._shadow: Dict[Tuple[int, int], int] = {}  # (master, addr) -> value

    def __call__(
        self, txn: Transaction, grant: int, start: int, finish: int
    ) -> None:
        self.checks_run += 1
        if txn.resp:
            # An errored/aborted transfer never committed (write) or
            # returned data (read); it neither updates the shadow nor
            # can it violate freshness.
            return
        owner = txn.master
        addresses = transaction_addresses(txn)
        if txn.is_write:
            for addr, value in zip(addresses, txn.data or [0] * txn.beats):
                self._shadow[(owner, addr)] = value
            return
        for addr, value in zip(addresses, txn.data):
            expected = self._shadow.get((owner, addr))
            if expected is not None and value != expected:
                self.flag(
                    finish,
                    "stale-read",
                    f"{txn!r} read {value:#x} at {addr:#x}, last completed "
                    f"write by master {owner} was {expected:#x}",
                    master=owner,
                    txn_uid=txn.uid,
                )

    def observe_drain(self, txn: Transaction) -> None:
        """Optional hook to track buffer drains under their true master."""
        # Drains carry WRITE_BUFFER_MASTER; the absorbing master already
        # recorded the data when the write was posted, so nothing to do.


class BankFsmChecker(PropertyChecker):
    """Watches DDR bank FSMs for illegal transitions (RTL hook)."""

    def __init__(self, banks: Sequence[BankFsm], strict: bool = False) -> None:
        super().__init__("bank-fsm", strict)
        self.banks = list(banks)
        self._last: List[BankState] = [bank.state for bank in self.banks]

    def sample(self, cycle: int) -> None:
        """Cycle hook for the RTL engine."""
        self.checks_run += 1
        for bank, previous in zip(self.banks, self._last):
            if bank.state not in _LEGAL_BANK_TRANSITIONS[previous]:
                self.flag(
                    cycle,
                    "bank-transition",
                    f"bank {bank.index}: {previous.value} -> {bank.state.value}",
                )
        self._last = [bank.state for bank in self.banks]
