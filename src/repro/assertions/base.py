"""Assertion infrastructure.

Paper §3.5 inserts two kinds of assertions into the models: checks for
*functional debugging of the model itself* and *property checking* used
during performance analysis.  Checkers here follow that split:
:mod:`repro.assertions.protocol` watches bus-protocol legality, and
:mod:`repro.assertions.properties` watches system-level properties
(QoS, ordering, bank-FSM legality).

A checker collects :class:`Violation` records; ``strict=True`` raises
on the first violation instead, which is how the test suite uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import PropertyViolation, ProtocolError


@dataclass(frozen=True)
class Violation:
    """One recorded assertion failure.

    The provenance fields tell a triager *which run* and *which
    transaction* produced the failure — a fuzzer report that says
    "ordering violated" is useless without the engine, the seed and the
    offending master/transaction.  All default to "unknown" so existing
    checkers keep working unchanged.
    """

    cycle: int
    rule: str
    detail: str
    #: Engine level the run used (``""`` when not bound).
    engine: str = ""
    #: Workload seed of the run (``None`` when not bound).
    seed: Optional[int] = None
    #: Index of the master involved (``None`` for bus-global rules).
    master: Optional[int] = None
    #: uid of the transaction involved, when one is identifiable.
    txn_uid: Optional[int] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        where = ""
        context = [
            part
            for part in (
                self.engine or None,
                None if self.seed is None else f"seed {self.seed}",
                None if self.master is None else f"master {self.master}",
                None if self.txn_uid is None else f"txn {self.txn_uid}",
            )
            if part is not None
        ]
        if context:
            where = f" ({', '.join(context)})"
        return f"[cycle {self.cycle}] {self.rule}: {self.detail}{where}"


class Checker:
    """Base class: accumulate or raise on violations."""

    #: Error type raised in strict mode; subclasses override.
    error_type = ProtocolError

    def __init__(self, name: str, strict: bool = False) -> None:
        self.name = name
        self.strict = strict
        self.violations: List[Violation] = []
        self.checks_run = 0
        # Run provenance stamped onto every violation (see bind()).
        self.engine = ""
        self.seed: Optional[int] = None

    def bind(self, engine: str = "", seed: Optional[int] = None) -> "Checker":
        """Attach run provenance (engine level, workload seed).

        Returns ``self`` so harnesses can bind at attach time:
        ``platform.attach(TransactionChecker().bind("rtl", seed=7))``.
        """
        self.engine = engine
        self.seed = seed
        return self

    def flag(
        self,
        cycle: int,
        rule: str,
        detail: str,
        master: Optional[int] = None,
        txn_uid: Optional[int] = None,
    ) -> None:
        """Record (or raise) a violation."""
        violation = Violation(
            cycle=cycle,
            rule=rule,
            detail=detail,
            engine=self.engine,
            seed=self.seed,
            master=master,
            txn_uid=txn_uid,
        )
        if self.strict:
            raise self.error_type(f"{self.name}: {violation}")
        self.violations.append(violation)

    @property
    def clean(self) -> bool:
        """True when no violation has been recorded."""
        return not self.violations

    def summary(self) -> str:
        """Human-readable status line."""
        status = "clean" if self.clean else f"{len(self.violations)} violations"
        return f"{self.name}: {self.checks_run} checks, {status}"


class PropertyChecker(Checker):
    """Checker whose strict mode raises :class:`PropertyViolation`."""

    error_type = PropertyViolation
