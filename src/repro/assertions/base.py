"""Assertion infrastructure.

Paper §3.5 inserts two kinds of assertions into the models: checks for
*functional debugging of the model itself* and *property checking* used
during performance analysis.  Checkers here follow that split:
:mod:`repro.assertions.protocol` watches bus-protocol legality, and
:mod:`repro.assertions.properties` watches system-level properties
(QoS, ordering, bank-FSM legality).

A checker collects :class:`Violation` records; ``strict=True`` raises
on the first violation instead, which is how the test suite uses them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import PropertyViolation, ProtocolError


@dataclass(frozen=True)
class Violation:
    """One recorded assertion failure."""

    cycle: int
    rule: str
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[cycle {self.cycle}] {self.rule}: {self.detail}"


class Checker:
    """Base class: accumulate or raise on violations."""

    #: Error type raised in strict mode; subclasses override.
    error_type = ProtocolError

    def __init__(self, name: str, strict: bool = False) -> None:
        self.name = name
        self.strict = strict
        self.violations: List[Violation] = []
        self.checks_run = 0

    def flag(self, cycle: int, rule: str, detail: str) -> None:
        """Record (or raise) a violation."""
        violation = Violation(cycle=cycle, rule=rule, detail=detail)
        if self.strict:
            raise self.error_type(f"{self.name}: {violation}")
        self.violations.append(violation)

    @property
    def clean(self) -> bool:
        """True when no violation has been recorded."""
        return not self.violations

    def summary(self) -> str:
        """Human-readable status line."""
        status = "clean" if self.clean else f"{len(self.violations)} violations"
        return f"{self.name}: {self.checks_run} checks, {status}"


class PropertyChecker(Checker):
    """Checker whose strict mode raises :class:`PropertyViolation`."""

    error_type = PropertyViolation
