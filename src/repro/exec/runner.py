"""Sharded sweep execution: map ``point.build().run()`` over a grid.

:class:`SweepRunner` is the one execution engine behind every
experiment: it takes the :class:`~repro.system.spec.SweepPoint` grid a
:func:`~repro.system.spec.sweep` call produced and returns one
:class:`RunRecord` per point, **ordered as the grid**, regardless of
backend:

* ``serial`` — run in-process, point by point (also the timing-faithful
  backend: wall clocks see no pool overhead);
* ``process`` — shard the grid over a ``multiprocessing`` pool.  Specs
  are plain picklable data (PR 2), so a worker rebuilds the platform
  from the point alone; each point's traffic regenerates in-worker from
  its own spec seed, and ``Pool.map`` with explicit chunking merges the
  records back in grid order.  Records compare equal to the serial
  backend's because wall time is excluded from record equality; and
* ``batch`` — lockstep the grid's eligible single-master TLM points
  through one structure-of-arrays program (:mod:`repro.exec.batch`),
  paying the Python interpreter once per simulation round for the whole
  grid instead of once per round per point.  Ineligible points fall
  back to the serial executor transparently; either way the records are
  bit-identical to ``backend="serial"``, and :attr:`SweepRunner.dispatch_log`
  says which path served each point.

``collect`` extracts extra metrics while the platform is still alive
(the process backend tears platforms down inside the worker).  It must
be a *module-level* callable — it is pickled by reference — with the
signature ``collect(point, platform, result) -> Dict[str, object]``.

``repeats`` gives best-of-N wall timing with the exact methodology of
the speed harness: every repeat rebuilds the platform untimed and times
only ``run()``; counters are checked identical across repeats.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConfigError, SimulationError
from repro.exec.records import RunRecord
from repro.system.spec import SweepPoint

#: Supported execution backends.
BACKENDS = ("serial", "process", "batch")

#: Error policies: ``"raise"`` propagates the first failing point's
#: exception (losing the rest of the grid); ``"record"`` turns crashes
#: (and, on the process backend, timeouts) into error rows.
ON_ERROR = ("raise", "record")

#: Collector signature: ``(point, platform, result) -> metrics dict``.
Collector = Callable[[SweepPoint, object, object], Dict[str, object]]

#: Per-point completion callback: ``(grid_index, record) -> None``.
OnResult = Callable[[int, RunRecord], None]

#: Per-point dispatch callback: ``(grid_index, point) -> None``, fired
#: when an execution attempt for the point begins (serial: immediately
#: before it runs; process: when its job is handed to the pool; batch:
#: when the lockstep program containing it starts).  The serving layer
#: journals these as write-ahead ``start`` marks.
OnStart = Callable[[int, SweepPoint], None]


def default_workers(grid_size: Optional[int] = None) -> int:
    """Worker count for the process backend: CPUs, capped by the grid."""
    cpus = os.cpu_count() or 1
    if grid_size is None:
        return cpus
    return max(1, min(cpus, grid_size))


#: Lazily created pools keyed by worker count, reused across runs.
_SHARED_POOLS: Dict[int, "multiprocessing.pool.Pool"] = {}


def _close_shared_pools() -> None:
    """Terminate every cached pool (registered atexit; callable in tests)."""
    for pool in _SHARED_POOLS.values():
        pool.terminate()
        pool.join()
    _SHARED_POOLS.clear()


def shared_pool(workers: Optional[int] = None) -> "multiprocessing.pool.Pool":
    """A process pool reused across :class:`SweepRunner` invocations.

    Pool start-up (fork + interpreter bookkeeping per worker) dominates
    small sweeps — on a 1-CPU host it single-handedly made the process
    backend slower than serial.  Callers that run many grids (benchmark
    repeats, experiment batteries) share one pool per worker count; the
    pools are torn down atexit.  Pass the pool to
    ``SweepRunner(backend="process", pool=shared_pool(n))``.
    """
    count = workers if workers is not None else default_workers()
    pool = _SHARED_POOLS.get(count)
    if pool is None:
        if not _SHARED_POOLS:
            atexit.register(_close_shared_pools)
        pool = multiprocessing.Pool(processes=count)
        _SHARED_POOLS[count] = pool
    return pool


@dataclass(frozen=True)
class _PointJob:
    """Everything a worker needs to run one grid point (picklable)."""

    point: SweepPoint
    collect: Optional[Collector]
    repeats: int
    max_cycles: Optional[int]
    on_error: str = "raise"


def _execute(job: _PointJob) -> RunRecord:
    """Run one point (best-of-``repeats``) and build its record.

    Module-level so the process backend can ship it by reference.
    Under ``on_error="record"`` any exception the point raises —
    build-time config errors, drain-limit SimulationErrors, checker
    crashes inside collectors — becomes an error row instead of killing
    the sweep (and, on the process backend, the whole pool map).
    """
    if job.on_error == "record":
        start = time.perf_counter()
        try:
            return _execute_point(job)
        except Exception as exc:  # noqa: BLE001 - the policy is "record"
            return RunRecord.from_error(
                job.point,
                f"{type(exc).__name__}: {exc}",
                wall_seconds=time.perf_counter() - start,
            )
    return _execute_point(job)


def _execute_point(job: _PointJob) -> RunRecord:
    best_wall: Optional[float] = None
    record: Optional[RunRecord] = None
    for _ in range(max(job.repeats, 1)):
        platform = job.point.build()  # untimed, like the speed harness
        start = time.perf_counter()
        result = platform.run(max_cycles=job.max_cycles)
        wall = time.perf_counter() - start
        metrics = (
            job.collect(job.point, platform, result) if job.collect else None
        )
        fresh = RunRecord.from_run(
            job.point, result, wall_seconds=wall, metrics=metrics
        )
        if record is not None and fresh != record:
            raise SimulationError(
                f"non-deterministic run: point {job.point.label!r} produced "
                f"different counters on repeat"
            )
        if best_wall is None or wall < best_wall:
            best_wall = wall
            record = fresh
    assert record is not None
    return record


class SweepRunner:
    """Maps a sweep grid to :class:`RunRecord` rows via a backend."""

    def __init__(
        self,
        backend: str = "serial",
        workers: Optional[int] = None,
        chunksize: Optional[int] = None,
        repeats: int = 1,
        pool: Optional["multiprocessing.pool.Pool"] = None,
        on_error: str = "raise",
        timeout: Optional[float] = None,
    ) -> None:
        """``pool`` lends the process backend an externally owned pool
        (see :func:`shared_pool`): the runner maps over it but never
        closes it, so repeated runs skip the per-run fork cost.

        ``on_error="record"`` makes the sweep crash-tolerant: a point
        that raises (or, with ``timeout=``, takes too long) yields an
        error row (:meth:`RunRecord.from_error`) in its grid slot and
        the remaining points still run.

        ``timeout`` (seconds, process backend only — an in-process
        point cannot be interrupted) bounds each point's *result
        delivery*: dispatch switches to per-point ``apply_async`` and
        a point whose record has not arrived ``timeout`` seconds after
        the runner starts waiting on it is abandoned.  The stuck worker
        is not killed — an owned pool is terminated when the run
        returns; a borrowed ``pool=`` keeps its worker busy until the
        abandoned point finishes on its own.
        """
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown sweep backend {backend!r}; choose from {BACKENDS}"
            )
        if workers is not None and workers < 1:
            raise ConfigError(f"workers must be positive, got {workers}")
        if chunksize is not None and chunksize < 1:
            raise ConfigError(f"chunksize must be positive, got {chunksize}")
        if repeats < 1:
            raise ConfigError(f"repeats must be positive, got {repeats}")
        if pool is not None and backend != "process":
            raise ConfigError("pool= only applies to the process backend")
        if on_error not in ON_ERROR:
            raise ConfigError(
                f"unknown on_error policy {on_error!r}; choose from {ON_ERROR}"
            )
        if timeout is not None and timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {timeout}")
        if timeout is not None and backend != "process":
            raise ConfigError(
                "timeout= needs the process backend (a point running "
                "in-process cannot be interrupted)"
            )
        self.backend = backend
        self.workers = workers
        self.chunksize = chunksize
        self.repeats = repeats
        self.pool = pool
        self.on_error = on_error
        self.timeout = timeout
        #: How the last :meth:`run` served each point, in grid order:
        #: ``"serial"``/``"process"`` on those backends; on the batch
        #: backend ``"batch"`` for lockstepped points and
        #: ``"serial-fallback"`` for points the array program could not
        #: take (the serving layer reports these per burst).
        self.dispatch_log: List[str] = []

    def _chunksize(self, jobs: int, workers: int) -> int:
        if self.chunksize is not None:
            return self.chunksize
        if workers == 1:
            # One worker gains nothing from small tasks — ship the whole
            # grid in a single dispatch and pay IPC once.
            return jobs
        # Small grids: one point per task keeps all workers busy;
        # large grids: ~4 tasks per worker amortises pool dispatch.
        return max(1, jobs // (workers * 4))

    def run(
        self,
        grid: Iterable[SweepPoint],
        collect: Optional[Collector] = None,
        max_cycles: Optional[object] = None,
        on_result: Optional[OnResult] = None,
        on_start: Optional[OnStart] = None,
    ) -> List[RunRecord]:
        """Run every point of *grid*; records come back in grid order.

        ``max_cycles`` bounds every point's ``run()``; pass a callable
        ``point -> Optional[int]`` for per-point ceilings (e.g. bound
        only the slow RTL points of a mixed-engine grid).  Callables
        are resolved here, before jobs ship to pool workers, so they
        need not be picklable.

        ``on_result(index, record)`` fires once per completed point —
        error rows included under ``on_error="record"`` — *in grid
        order*, before ``run`` returns, on every backend (the process
        backend switches from ``Pool.map`` to the order-preserving
        ``imap`` so earlier points surface while later ones still
        run).  It executes in the calling process, so unlike a
        collector it need not be picklable; the sweep server uses it
        to stream per-point progress without polling.  An exception it
        raises propagates and abandons the rest of the sweep.

        ``on_start(index, point)`` fires when an attempt for a point
        *begins* (see :data:`OnStart` for per-backend timing).  The
        serving layer journals these as write-ahead ``start`` marks so
        a crash mid-point is attributable to the point that was
        running.
        """
        if on_result is not None and not callable(on_result):
            raise ConfigError(
                f"on_result must be callable, got {type(on_result).__name__}"
            )
        if on_start is not None and not callable(on_start):
            raise ConfigError(
                f"on_start must be callable, got {type(on_start).__name__}"
            )
        points = list(grid)
        if not points:
            return []
        jobs = [
            _PointJob(
                point=point,
                collect=collect,
                repeats=self.repeats,
                max_cycles=(
                    max_cycles(point) if callable(max_cycles) else max_cycles  # type: ignore[arg-type]
                ),
                on_error=self.on_error,
            )
            for point in points
        ]
        self.dispatch_log = []
        if self.backend == "serial":
            records: List[RunRecord] = []
            for index, job in enumerate(jobs):
                if on_start is not None:
                    on_start(index, job.point)
                record = _execute(job)
                self.dispatch_log.append("serial")
                if on_result is not None:
                    on_result(len(records), record)
                records.append(record)
            return records
        if self.backend == "batch":
            from repro.exec.batch import run_batch

            return run_batch(
                jobs,
                execute_serial=_execute,
                on_result=on_result,
                on_start=on_start,
                dispatch_log=self.dispatch_log,
            )
        if on_start is not None:
            # Pool dispatch ships every job up front; each point's
            # attempt effectively begins when the map is submitted.
            for index, job in enumerate(jobs):
                on_start(index, job.point)
        records = self._run_pool(jobs, on_result)
        self.dispatch_log = ["process"] * len(records)
        return records

    def _run_pool(
        self, jobs: Sequence[_PointJob], on_result: Optional[OnResult] = None
    ) -> List[RunRecord]:
        workers = (
            self.workers
            if self.workers is not None
            else default_workers(len(jobs))
        )
        if self.timeout is not None:
            return self._run_pool_deadline(jobs, workers, on_result)
        chunksize = self._chunksize(len(jobs), workers)
        # Pool.map/imap preserve input order, so the merge is
        # deterministic no matter which worker finished first.
        if self.pool is not None:
            return self._pool_map(self.pool, jobs, chunksize, on_result)
        with multiprocessing.Pool(processes=workers) as pool:
            return self._pool_map(pool, jobs, chunksize, on_result)

    @staticmethod
    def _pool_map(
        pool: "multiprocessing.pool.Pool",
        jobs: Sequence[_PointJob],
        chunksize: int,
        on_result: Optional[OnResult],
    ) -> List[RunRecord]:
        if on_result is None:
            return pool.map(_execute, jobs, chunksize=chunksize)
        records: List[RunRecord] = []
        for record in pool.imap(_execute, jobs, chunksize=chunksize):
            on_result(len(records), record)
            records.append(record)
        return records

    def _run_pool_deadline(
        self,
        jobs: Sequence[_PointJob],
        workers: int,
        on_result: Optional[OnResult] = None,
    ) -> List[RunRecord]:
        """Per-point ``apply_async`` dispatch with a delivery deadline.

        Results are still merged in grid order.  A point whose result
        has not arrived within ``timeout`` seconds of the runner
        starting to wait on it is treated per the ``on_error`` policy;
        points already finished while the runner waited on an earlier
        one collect instantly, so only genuinely stuck points pay.
        ``on_result`` fires per collected row — timeout rows included —
        as the grid-order walk reaches it.
        """
        pool = self.pool
        owned = pool is None
        if owned:
            pool = multiprocessing.Pool(processes=workers)
        try:
            pending = [pool.apply_async(_execute, (job,)) for job in jobs]
            records: List[RunRecord] = []
            for job, handle in zip(jobs, pending):
                try:
                    record = handle.get(timeout=self.timeout)
                except multiprocessing.TimeoutError:
                    if self.on_error != "record":
                        raise SimulationError(
                            f"sweep point {job.point.label!r} exceeded the "
                            f"{self.timeout}s timeout"
                        ) from None
                    record = RunRecord.from_error(
                        job.point,
                        f"timeout: no result within {self.timeout}s",
                        wall_seconds=float(self.timeout),
                    )
                if on_result is not None:
                    on_result(len(records), record)
                records.append(record)
            return records
        finally:
            if owned:
                # terminate(), not close(): a timed-out worker may still
                # be grinding through its abandoned point.
                pool.terminate()
                pool.join()


def run_grid(
    grid: Iterable[SweepPoint],
    backend: str = "serial",
    collect: Optional[Collector] = None,
    **runner_kwargs: object,
) -> List[RunRecord]:
    """One-call sweep execution: ``run_grid(sweep(...), "process")``."""
    return SweepRunner(backend=backend, **runner_kwargs).run(  # type: ignore[arg-type]
        grid, collect=collect
    )
