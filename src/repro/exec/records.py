"""The mergeable result row every experiment emits.

A :class:`RunRecord` is one ``(sweep point, engine) → counters`` row:
plain frozen data, picklable (process-backend workers ship them back
over the pool) and JSON round-trippable (experiment tables persist
them).  Equality deliberately ignores ``wall_seconds`` — two backends
that simulate the same point must produce *equal* records even though
their wall clocks differ, which is exactly the property the
serial-vs-process determinism tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING, Dict, Mapping, Optional, Tuple

from repro.canonical import register_content_schema, stable_hash
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (spec → exec)
    from repro.system.spec import SystemSpec
    from repro.traffic.workloads import Workload

#: Extra per-point metrics: sorted ``(name, value)`` pairs so the record
#: stays hashable and order-independent.
MetricItems = Tuple[Tuple[str, object], ...]


def _freeze_value(value: object) -> object:
    """Recursively turn lists/tuples into tuples and dicts into sorted
    item tuples.

    JSON serialisation lowers tuples to lists; freezing on the way in
    makes ``from_dict(json.loads(json.dumps(r.to_dict())))`` compare
    equal to the original record and keeps records hashable whatever
    nested shape a collector returned.
    """
    if isinstance(value, Mapping):
        return tuple(
            (key, _freeze_value(item)) for key, item in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    return value


def _freeze_metrics(metrics: Optional[Mapping[str, object]]) -> MetricItems:
    if not metrics:
        return ()
    return tuple(
        (key, _freeze_value(value)) for key, value in sorted(metrics.items())
    )


_MISSING = object()

#: Schema tags mixed into the content hashes (bumping one invalidates
#: every key of that kind at once — the cache invalidation story).
POINT_KEY_SCHEMA = register_content_schema(
    "ahbplus-point-v1", "repro.exec.records.point_key"
)
RECORD_KEY_SCHEMA = register_content_schema(
    "ahbplus-record-v1", "repro.exec.records.RunRecord"
)


def point_key(
    spec: "SystemSpec",
    workload: Optional["Workload"] = None,
    seed: Optional[int] = None,
    engine: str = "tlm",
    max_cycles: Optional[int] = None,
) -> str:
    """Canonical content address of one simulation request.

    The key covers everything that determines a run's counters — the
    full :class:`~repro.system.spec.SystemSpec` (which embeds the
    workload and its seed), the engine level and the cycle ceiling —
    and nothing else: sweep bookkeeping (labels, axis names) does not
    participate, so two grids that request the same simulation under
    different labels share one key.  Simulations are deterministic, so
    a key hit in a result store is provably the same record a fresh
    run would produce.

    *workload* and *seed* rebind the spec before hashing (the sweep
    axes that replace the workload rather than the config), so callers
    can key a variant without constructing the replacement spec first.
    Stability is pinned by tests: the same key falls out across dict
    key ordering, ``to_dict`` → JSON → ``from_dict`` round-trips and
    serial- vs process-backend execution.
    """
    from repro.system.spec import LEVELS

    if engine not in LEVELS:
        raise ConfigError(f"unknown engine {engine!r}; choose from {LEVELS}")
    if max_cycles is not None and int(max_cycles) <= 0:
        raise ConfigError(f"max_cycles must be positive, got {max_cycles}")
    if workload is not None:
        spec = spec.with_workload(workload)
    if seed is not None:
        spec = spec.with_seed(int(seed))
    payload = {
        "spec": spec.to_dict(),
        "engine": engine,
        "max_cycles": None if max_cycles is None else int(max_cycles),
    }
    return stable_hash(payload, POINT_KEY_SCHEMA)


@dataclass(frozen=True)
class RunRecord:
    """One experiment row: identity, counters, optional extra metrics."""

    # -- identity: which grid point produced this row -------------------------
    label: str
    axis: str
    value: str  #: ``repr()`` of the swept value (JSON-safe, stable)
    engine: str
    system: str  #: the spec's name
    workload: str
    seed: int
    # -- counters (shared across all engines) ---------------------------------
    cycles: int
    transactions: int
    bytes_transferred: int
    busy_cycles: int
    # -- AHB+-specific counters (zero on the plain engine) --------------------
    absorbed_writes: int = 0
    drained_writes: int = 0
    rt_deadline_hits: int = 0
    rt_deadline_misses: int = 0
    #: Fault-injection outcomes: transactions aborted with ERROR (or an
    #: exhausted RETRY budget) and RETRY responses taken.
    error_responses: int = 0
    retry_responses: int = 0
    #: Collector output (see ``SweepRunner.run(collect=...)``).
    metrics: MetricItems = ()
    #: Non-empty when the point crashed or timed out instead of running
    #: to completion (``SweepRunner(on_error="record")``); every counter
    #: is zero on such rows.
    error: str = ""
    #: Wall time of the (best) run — excluded from equality.
    wall_seconds: float = field(compare=False, default=0.0)

    @property
    def failed(self) -> bool:
        """True when this row records a crash/timeout, not a run."""
        return bool(self.error)

    @property
    def utilization(self) -> float:
        """Fraction of cycles the data bus carried a transfer."""
        if self.cycles == 0:
            return 0.0
        return self.busy_cycles / self.cycles

    def content_key(self) -> str:
        """Canonical content address of this record's *result*.

        Hashes every compared field — identity, counters, metrics and
        the error marker — but not ``wall_seconds`` (excluded from
        equality for the same reason: two runs of the same point are
        the same result however long they took).  Equal records always
        share a key, across dict ordering, JSON round-trips and
        execution backends, which is what lets the serving layer assert
        a cache replay is bit-identical to a fresh run.
        """
        payload = self.to_dict()
        del payload["wall_seconds"]
        return stable_hash(payload, RECORD_KEY_SCHEMA)

    def metric(self, name: str, default: object = _MISSING) -> object:
        """Look up one collector metric by name."""
        for key, value in self.metrics:
            if key == name:
                return value
        if default is not _MISSING:
            return default
        raise ConfigError(
            f"record {self.label!r} has no metric {name!r}; "
            f"available: {[key for key, _v in self.metrics]}"
        )

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_run(
        cls,
        point,
        result,
        wall_seconds: float = 0.0,
        metrics: Optional[Mapping[str, object]] = None,
    ) -> "RunRecord":
        """Build a record from a sweep point and its run result.

        Works for every engine: AHB+-specific counters missing from a
        plain :class:`~repro.ahb.bus.BusRunResult` default to zero.
        """
        spec = point.spec
        return cls(
            label=point.label,
            axis=point.axis,
            value=repr(point.value),
            engine=point.engine,
            system=spec.name,
            workload=spec.workload.name,
            seed=spec.workload.seed,
            cycles=result.cycles,
            transactions=result.transactions,
            bytes_transferred=result.bytes_transferred,
            busy_cycles=result.busy_cycles,
            absorbed_writes=getattr(result, "absorbed_writes", 0),
            drained_writes=getattr(result, "drained_writes", 0),
            rt_deadline_hits=getattr(result, "rt_deadline_hits", 0),
            rt_deadline_misses=getattr(result, "rt_deadline_misses", 0),
            error_responses=getattr(result, "error_responses", 0),
            retry_responses=getattr(result, "retry_responses", 0),
            metrics=_freeze_metrics(metrics),
            wall_seconds=wall_seconds,
        )

    @classmethod
    def from_error(
        cls, point, error: str, wall_seconds: float = 0.0
    ) -> "RunRecord":
        """An error row: the point's identity plus what killed it.

        Crash-tolerant sweeps (``SweepRunner(on_error="record")``) emit
        these instead of losing the whole grid to one bad point; all
        counters are zero and :attr:`failed` is true.
        """
        spec = point.spec
        return cls(
            label=point.label,
            axis=point.axis,
            value=repr(point.value),
            engine=point.engine,
            system=spec.name,
            workload=spec.workload.name,
            seed=spec.workload.seed,
            cycles=0,
            transactions=0,
            bytes_transferred=0,
            busy_cycles=0,
            error=error,
            wall_seconds=wall_seconds,
        )

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (metrics become a plain dict)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["metrics"] = dict(self.metrics)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigError(f"unknown RunRecord fields {sorted(unknown)}")
        kwargs = dict(data)
        kwargs["metrics"] = _freeze_metrics(kwargs.get("metrics"))  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]
