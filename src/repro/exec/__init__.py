"""Experiment execution: sweep grids → mergeable result records.

The runner layer between the declarative platform API and the analysis
tables.  :class:`SweepRunner` maps ``point.build().run()`` over a
:func:`~repro.system.spec.sweep` grid with pluggable backends (in-process
``serial`` or multiprocess-sharded ``process``) and emits one
:class:`RunRecord` per point — plain, picklable, order-deterministic
rows every experiment and benchmark consumes.  A third backend,
``batch``, lockstep-executes eligible single-master TLM grids through
one structure-of-arrays numpy program (:mod:`repro.exec.batch`) and
falls back to serial execution per ineligible point.

    from repro.exec import SweepRunner
    from repro.system import paper_topology, sweep

    grid = sweep(paper_topology(200), axis="write_buffer_depth",
                 values=(1, 2, 4, 8))
    records = SweepRunner(backend="process").run(grid)

Determinism guarantees: records come back ordered as the grid; each
point's traffic regenerates from its own spec seed (in-worker on the
process backend); and record equality excludes wall time, so
``SweepRunner("process").run(g) == SweepRunner("serial").run(g)``.
"""

from repro.exec.batch import HAVE_NUMPY, batch_precheck
from repro.exec.records import RunRecord, point_key
from repro.exec.runner import (
    BACKENDS,
    ON_ERROR,
    Collector,
    OnResult,
    OnStart,
    SweepRunner,
    default_workers,
    run_grid,
    shared_pool,
)

__all__ = [
    "BACKENDS",
    "Collector",
    "HAVE_NUMPY",
    "ON_ERROR",
    "OnResult",
    "OnStart",
    "RunRecord",
    "SweepRunner",
    "batch_precheck",
    "default_workers",
    "point_key",
    "run_grid",
    "shared_pool",
]
