"""Structure-of-arrays lockstep sweep backend (``backend="batch"``).

The serial backend runs a sweep one point at a time: each point builds
its platform and the method-based TLM advances it round by round in
pure Python.  For the sweep shapes that dominate the experiment layer —
*many same-topology points that differ only in seed or one config
knob* — that spends almost all of its time re-interpreting the same
handful of bytecode paths N times over.

This backend runs N **single-master** TLM simulations in lockstep
inside one process.  Per simulation round (one arbitration round = one
served transaction on a single-master bus) it advances *every* live
simulation with a fixed number of numpy array operations, so the
Python-interpreter cost is paid once per round instead of once per
round *per point*.  State lives in structure-of-arrays form: one array
per scalar of the reference engine's state, indexed by simulation.

Exactness, not approximation
----------------------------
The emulation replays :class:`~repro.core.bus.AhbPlusBusTlm`'s run loop
specialised to its single-master guarantees (proved by the batch-vs-
serial equality tests):

* one master means every arbitration round has exactly one candidate,
  so the write buffer never absorbs (only *losing* writes are posted)
  and the pipelined decision never fires (the only requester is always
  the excluded just-served transaction) — each round is
  ``issue → grant → refresh catch-up → bank timing → completion`` with
  ``now = finish + 1``;
* the DDR arithmetic is :class:`~repro.ddr.timeline.BankTimeline`'s,
  transcribed operation for operation (including the subtle points: a
  refresh drain discovered *after* ``start`` was fixed does not re-delay
  the transfer, precharge-all honours only *open* lanes, and the busy
  accounting never double-counts overlap cycles);
* QoS deadlines follow :meth:`~repro.core.qos.QosRegisterFile.deadline_for`
  exactly: an explicit transaction deadline wins, an RT master falls
  back to ``issue + objective``, NRT transactions go unscored.

Anything the array program does not model — multiple masters, extra
slaves, fault plans, threaded/plain/RTL engines, collectors, traffic
that fails to materialise — is detected per point and **falls back to
the serial executor transparently**, so ``backend="batch"`` is always
safe to request: records are bit-identical to ``backend="serial"``
either way, only the wall clock changes.  The same holds when numpy is
missing entirely (:data:`HAVE_NUMPY`); the backend then degrades to
serial execution for every point.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.exec.records import RunRecord

try:  # pragma: no cover - exercised via the HAVE_NUMPY gate tests
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the container always has numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False

#: ``max_cycles=None`` sentinel: far beyond any simulated horizon while
#: leaving int64 headroom for ``now + arbitration_cycles`` arithmetic.
_NO_CEILING = 1 << 62

#: "Minus infinity" for masked maxima (closed lanes in precharge-all).
_NEG = -(1 << 62)

#: Dispatch-log labels (see ``SweepRunner.dispatch_log``).
BATCHED = "batch"
FELL_BACK = "serial-fallback"


def batch_precheck(point) -> bool:
    """Cheap spec-level eligibility test — no platform build.

    True when *point* plausibly fits the lockstep program: the method
    TLM engine, one master, the single-DDR paper topology and no fault
    injection at either the workload or slave scope.  The extractor
    re-checks everything against the *built* platform (and inspects the
    materialised traffic), so a precheck pass is advisory; the serving
    layer uses it to route coalesced batches without paying a build.
    """
    if point.engine != "tlm":
        return False
    spec = point.spec
    workload = spec.workload
    if workload.num_masters != 1 or workload.fault is not None:
        return False
    try:
        slaves = spec.resolved_slaves()
    except Exception:  # noqa: BLE001 - a broken spec is "not eligible"
        return False
    if len(slaves) != 1 or slaves[0].kind != "ddr":
        return False
    return slaves[0].fault is None


@dataclass
class _Extracted:
    """One eligible simulation, flattened to plain numbers.

    Per-transaction sequences are grid-order lists; the batch builder
    pads them into the shared (sims × transactions × segments) arrays.
    """

    job: object  # the runner's _PointJob (duck-typed to avoid a cycle)
    max_cycles: int
    # -- per-simulation scalars ------------------------------------------------
    arbitration_cycles: int
    real_time: bool
    objective: int
    refresh_enabled: bool
    next_refresh_at: int
    refresh_ready_at: int
    t_rp: int
    t_rcd: int
    t_ras: int
    t_rrd: int
    t_wr: int
    t_rfc: int
    t_refi: int
    cas_latency: int
    write_latency: int
    # -- initial timeline state ------------------------------------------------
    open_row: List[int]  # -1 = closed
    cas_ready: List[int]
    pre_ready: List[int]
    idle_at: List[int]
    wr_recover: List[int]
    data_busy: int
    last_activate: int
    # -- per-transaction data --------------------------------------------------
    think: List[int]
    not_before: List[int]
    deadline_abs: List[int]  # -1 = unset
    deadline_off: List[int]  # -1 = unset
    is_write: List[bool]
    total_bytes: List[int]
    #: Per transaction: ``[(bank, row, beats), ...]`` in service order.
    segments: List[List[Tuple[int, int, int]]]


def _extract(job) -> Optional[_Extracted]:
    """Build *job*'s platform and flatten it, or ``None`` if ineligible.

    The platform is consumed (its traffic iterator is drained), so a
    ``None`` return — or any later failure — must re-build from the
    point; the serial fallback does exactly that.
    """
    from repro.core.bus import AhbPlusBusTlm
    from repro.core.platform import TlmPlatform
    from repro.ddr.controller import DdrControllerTlm

    point = job.point
    if point.engine != "tlm" or job.collect is not None:
        return None
    platform = point.build()
    if not isinstance(platform, TlmPlatform):
        return None
    bus = platform.bus
    if not isinstance(bus, AhbPlusBusTlm):
        return None
    if len(platform.masters) != 1 or len(platform.slaves) != 1:
        return None
    ddrc = platform.slaves[0]
    if not isinstance(ddrc, DdrControllerTlm):
        return None
    master = platform.masters[0]
    qos = bus.qos
    timing = ddrc.timing
    timeline = ddrc.timeline
    setting = qos.setting(0)
    out = _Extracted(
        job=job,
        max_cycles=_NO_CEILING if job.max_cycles is None else job.max_cycles,
        arbitration_cycles=bus.config.arbitration_cycles,
        real_time=qos.is_real_time(0),
        objective=setting.objective_cycles,
        refresh_enabled=ddrc.refresh_enabled,
        next_refresh_at=ddrc._next_refresh_at,
        refresh_ready_at=ddrc._refresh_ready_at,
        t_rp=timing.t_rp,
        t_rcd=timing.t_rcd,
        t_ras=timing.t_ras,
        t_rrd=timing.t_rrd,
        t_wr=timing.t_wr,
        t_rfc=timing.t_rfc,
        t_refi=timing.t_refi,
        cas_latency=timing.cas_latency,
        write_latency=timing.write_latency,
        open_row=[
            -1 if lane.open_row is None else lane.open_row
            for lane in timeline.banks
        ],
        cas_ready=[lane.cas_ready_at for lane in timeline.banks],
        pre_ready=[lane.pre_ready_at for lane in timeline.banks],
        idle_at=[lane.idle_at for lane in timeline.banks],
        wr_recover=[lane.wr_recover_at for lane in timeline.banks],
        data_busy=timeline.data_busy_until,
        last_activate=timeline.last_activate_at,
        think=[],
        not_before=[],
        deadline_abs=[],
        deadline_off=[],
        is_write=[],
        total_bytes=[],
        segments=[],
    )
    # The agent pre-fetched the first item in its constructor, fixing
    # its issue cycle and deadline against last_finish=0 — both final.
    txn = master._pending
    if txn is not None:
        if not _append_txn(
            out,
            ddrc,
            txn,
            think=master._pending_issue,
            not_before=0,
            deadline_abs=-1 if txn.deadline is None else txn.deadline,
            deadline_off=-1,
        ):
            return None
    # The rest of the source is still raw TrafficItems: think/not_before
    # stay relative, deadlines resolve at (emulated) fetch time.
    for item in master._items:
        txn = item.txn
        if item.absolute_deadline is not None:
            deadline_abs, deadline_off = item.absolute_deadline, -1
        elif item.deadline_offset is not None:
            deadline_abs, deadline_off = -1, item.deadline_offset
        elif txn.deadline is not None:
            # A deadline pre-stamped on the transaction itself survives
            # the agent's fetch untouched (trace replay does this).
            deadline_abs, deadline_off = txn.deadline, -1
        else:
            deadline_abs = deadline_off = -1
        if not _append_txn(
            out,
            ddrc,
            txn,
            think=item.think_cycles,
            not_before=item.not_before or 0,
            deadline_abs=deadline_abs,
            deadline_off=deadline_off,
        ):
            return None
    return out


def _decode_segments(txn, timing, bus_bytes: int):
    """Arithmetic (bank, row, beats) split of one burst — no beat loop.

    Reproduces ``DdrControllerTlm._segments`` in O(row windows) instead
    of O(beats): an incrementing burst's beat addresses are
    ``addr + i*size``, so its same-(bank, row) runs are exactly its
    chunks between row-window byte boundaries (the window is a power of
    two, so bank/row bits are constant inside it and change across it);
    a wrapping burst permutes addresses inside its span-aligned block,
    which lives inside a single row window whenever the span fits, so it
    is one segment.  Returns ``None`` for anything it cannot prove
    equivalent — misalignment, addresses outside the device, a wrap
    span wider than the row window — and the caller takes the per-beat
    reference path (whose errors then disqualify the point).
    """
    addr = txn.addr
    size = txn.size_bytes
    beats = txn.beats
    if addr < 0 or addr % size:
        return None
    bank_shift = timing._bank_shift
    bank_mask = timing._bank_mask
    row_shift = timing._row_shift
    window = (timing._col_mask + 1) * bus_bytes
    if txn.wrapping:
        span = beats * size
        base = (addr // span) * span
        if base // window != (base + span - 1) // window:
            return None  # wrap block straddles a row window
        word = addr // bus_bytes
        row = word >> row_shift
        if row >= timing._row_limit:
            return None
        return [((word >> bank_shift) & bank_mask, row, beats)]
    last = addr + (beats - 1) * size
    if (last // bus_bytes) >> row_shift >= timing._row_limit:
        return None  # rows are monotone, so the last beat bounds them
    first_chunk = addr // window
    last_chunk = last // window
    if first_chunk == last_chunk:
        word = addr // bus_bytes
        return [((word >> bank_shift) & bank_mask, word >> row_shift, beats)]
    segments = []
    for chunk in range(first_chunk, last_chunk + 1):
        # Beats i with addr + i*size inside [chunk*window, (chunk+1)*window).
        lo = 0 if chunk == first_chunk else -((chunk * window - addr) // -size)
        hi = (
            beats
            if chunk == last_chunk
            else -(((chunk + 1) * window - addr) // -size)
        )
        if hi <= lo:
            continue  # beat stride wider than the window skips it
        word = (addr + lo * size) // bus_bytes
        segments.append(
            ((word >> bank_shift) & bank_mask, word >> row_shift, hi - lo)
        )
    return segments


def _append_txn(
    out: _Extracted,
    ddrc,
    txn,
    think: int,
    not_before: int,
    deadline_abs: int,
    deadline_off: int,
) -> bool:
    """Flatten one transaction into *out*; ``False`` means ineligible.

    A transaction the array program cannot reproduce exactly — a fault
    plan, a master-index mismatch the agent would reject mid-run, write
    data the memory model would reject, an address the decode would
    reject — disqualifies the whole point (the serial fallback then
    reproduces the reference behaviour, error and all).
    """
    if txn.fault_plan or txn.master != 0:
        return False
    if txn.is_write and txn.data:
        if len(txn.data) < txn.beats:
            return False  # serial would IndexError mid-serve
        limit = 8 * txn.size_bytes
        for value in txn.data:
            if value < 0 or value >> limit:
                return False  # memory model rejects the beat
    segments = _decode_segments(txn, ddrc.timing, ddrc.bus_bytes)
    if segments is None:
        # Geometry the arithmetic split cannot prove: take the per-beat
        # reference walk, whose decode errors disqualify the point.
        try:
            segments = [
                (baddr.bank, baddr.row, len(addrs))
                for baddr, addrs in ddrc._segments(txn)
            ]
        except Exception:  # noqa: BLE001 - decode errors surface serially
            return False
    out.think.append(think)
    out.not_before.append(not_before)
    out.deadline_abs.append(deadline_abs)
    out.deadline_off.append(deadline_off)
    out.is_write.append(txn.is_write)
    out.total_bytes.append(txn.total_bytes)
    out.segments.append(segments)
    return True


class _Batch:
    """The SoA program: shared arrays over N extracted simulations."""

    def __init__(self, sims: Sequence[_Extracted]) -> None:
        n = len(sims)
        self.n = n
        as_i64 = lambda values: np.asarray(values, dtype=np.int64)  # noqa: E731
        per_sim = lambda attr: as_i64([getattr(s, attr) for s in sims])  # noqa: E731
        self.max_cycles = per_sim("max_cycles")
        self.arb = per_sim("arbitration_cycles")
        self.objective = per_sim("objective")
        self.t_rp = per_sim("t_rp")
        self.t_rcd = per_sim("t_rcd")
        self.t_ras = per_sim("t_ras")
        self.t_rrd = per_sim("t_rrd")
        self.t_wr = per_sim("t_wr")
        self.t_rfc = per_sim("t_rfc")
        self.t_refi = per_sim("t_refi")
        self.cas_latency = per_sim("cas_latency")
        self.write_latency = per_sim("write_latency")
        self.real_time = np.asarray([s.real_time for s in sims], dtype=bool)
        self.refresh_enabled = np.asarray(
            [s.refresh_enabled for s in sims], dtype=bool
        )
        # Bank lanes, padded to the widest device: a padded lane starts
        # closed and no transaction ever addresses it (the decode bounds
        # banks per device), so precharge-all treats it as idle residue.
        banks = max(len(s.open_row) for s in sims)
        lane = lambda attr, fill: np.stack(  # noqa: E731
            [
                as_i64(getattr(s, attr) + [fill] * (banks - len(s.open_row)))
                for s in sims
            ]
        )
        self.open_row0 = lane("open_row", -1)
        self.cas_ready0 = lane("cas_ready", 0)
        self.pre_ready0 = lane("pre_ready", 0)
        self.idle_at0 = lane("idle_at", 0)
        self.wr_recover0 = lane("wr_recover", 0)
        self.data_busy0 = per_sim("data_busy")
        self.last_activate0 = per_sim("last_activate")
        self.next_refresh0 = per_sim("next_refresh_at")
        self.refresh_ready0 = per_sim("refresh_ready_at")
        # Per-transaction tables, padded to the longest stream.
        self.txn_count = as_i64([len(s.think) for s in sims])
        txns = max(int(self.txn_count.max()), 1) if n else 1
        pad = lambda attr, dtype=np.int64: np.stack(  # noqa: E731
            [
                np.asarray(
                    getattr(s, attr) + [0] * (txns - len(getattr(s, attr))),
                    dtype=dtype,
                )
                for s in sims
            ]
        )
        self.think = pad("think")
        self.not_before = pad("not_before")
        self.deadline_abs = pad("deadline_abs")
        self.deadline_off = pad("deadline_off")
        self.is_write = pad("is_write", dtype=bool)
        self.total_bytes = pad("total_bytes")
        self.seg_count = np.zeros((n, txns), dtype=np.int64)
        segs = 1
        for s in sims:
            for seg_list in s.segments:
                segs = max(segs, len(seg_list))
        self.seg_bank = np.zeros((n, txns, segs), dtype=np.int32)
        self.seg_row = np.zeros((n, txns, segs), dtype=np.int32)
        self.seg_beats = np.zeros((n, txns, segs), dtype=np.int32)
        for i, s in enumerate(sims):
            for t, seg_list in enumerate(s.segments):
                self.seg_count[i, t] = len(seg_list)
                for k, (bank, row, beats) in enumerate(seg_list):
                    self.seg_bank[i, t, k] = bank
                    self.seg_row[i, t, k] = row
                    self.seg_beats[i, t, k] = beats

    # -- emulation --------------------------------------------------------------

    def emulate(self) -> dict:
        """Run every simulation to completion; returns the counters.

        One outer iteration serves one transaction on every live
        simulation — the whole batch marches through its arbitration
        rounds in lockstep, diverging only through the masks.
        """
        # Mutable state (fresh per call, so repeats re-run identically).
        self.open_row = self.open_row0.copy()
        self.cas_ready = self.cas_ready0.copy()
        self.pre_ready = self.pre_ready0.copy()
        self.idle_at = self.idle_at0.copy()
        self.wr_recover = self.wr_recover0.copy()
        self.data_busy = self.data_busy0.copy()
        self.last_activate = self.last_activate0.copy()
        self.next_refresh = self.next_refresh0.copy()
        self.refresh_ready = self.refresh_ready0.copy()
        n = self.n
        now = np.zeros(n, dtype=np.int64)
        last_finish = np.zeros(n, dtype=np.int64)
        txn_i = np.zeros(n, dtype=np.int64)
        transactions = np.zeros(n, dtype=np.int64)
        bytes_moved = np.zeros(n, dtype=np.int64)
        busy_cycles = np.zeros(n, dtype=np.int64)
        busy_through = np.full(n, -1, dtype=np.int64)
        hits = np.zeros(n, dtype=np.int64)
        misses = np.zeros(n, dtype=np.int64)
        while True:
            live = (txn_i < self.txn_count) & (now < self.max_cycles)
            if not live.any():
                break
            i = np.nonzero(live)[0]
            t = txn_i[i]
            # Issue timing: max(prev finish + think, not_before); the
            # reference loop advances now to the issue cycle and then
            # re-checks the ceiling before arbitrating.
            issue = np.maximum(last_finish[i] + self.think[i, t], self.not_before[i, t])
            now[i] = np.maximum(now[i], issue)
            serving = now[i] < self.max_cycles[i]
            i = i[serving]
            if i.size == 0:
                continue
            t = t[serving]
            issue = issue[serving]
            # Grant, refresh permission, bank timing.  The catch-up runs
            # once at grant (idle aging + access permission) and again at
            # start (serve); a refresh discovered in (grant, start] does
            # not push start further — the reference serve path never
            # re-raises start after access_permitted_at fixed it.
            grant = now[i] + self.arb[i]
            self._refresh_catchup(i, grant)
            start = np.maximum(grant, self.refresh_ready[i])
            self._refresh_catchup(i, start)
            command_from = start + 1
            finish = command_from.copy()
            write = self.is_write[i, t]
            seg_count = self.seg_count[i, t]
            for s in range(int(seg_count.max())):
                seg = seg_count > s
                finish_s, command_s = self._schedule_access(
                    i[seg],
                    self.seg_bank[i[seg], t[seg], s],
                    self.seg_row[i[seg], t[seg], s],
                    self.seg_beats[i[seg], t[seg], s].astype(np.int64),
                    write[seg],
                    command_from[seg],
                )
                finish[seg] = finish_s
                command_from[seg] = command_s
            # Completion: agent bookkeeping, QoS scoring, bus counters.
            last_finish[i] = finish
            deadline = self.deadline_abs[i, t]
            offset = self.deadline_off[i, t]
            deadline = np.where(
                deadline >= 0,
                deadline,
                np.where(
                    offset >= 0,
                    issue + offset,
                    np.where(self.real_time[i], issue + self.objective[i], -1),
                ),
            )
            scored = deadline >= 0
            met = scored & (finish <= deadline)
            hits[i] += met
            misses[i] += scored & ~met
            transactions[i] += 1
            bytes_moved[i] += self.total_bytes[i, t]
            covered_from = np.maximum(start, busy_through[i] + 1)
            busy = finish >= covered_from
            busy_cycles[i] += np.where(busy, finish - covered_from + 1, 0)
            busy_through[i] = np.where(busy, finish, busy_through[i])
            now[i] = finish + 1
            txn_i[i] = t + 1
        return {
            "cycles": now,
            "transactions": transactions,
            "bytes": bytes_moved,
            "busy_cycles": busy_cycles,
            "hits": hits,
            "misses": misses,
        }

    def _schedule_access(self, i, bank, row, beats, write, command_from):
        """Vectorised ``BankTimeline.schedule_access`` over subset *i*.

        Returns ``(finish, next_command_from)`` for the subset; lane and
        global state update in place.  *i* holds distinct simulations,
        so the fancy-indexed scatters never collide.
        """
        open_row = self.open_row[i, bank]
        cas_ready = self.cas_ready[i, bank]
        pre_ready = self.pre_ready[i, bank]
        hit = open_row == row
        # _open_row, both branches at once: a conflict precharges first
        # (tRP after tRAS/tWR clear), a closed bank activates from idle;
        # either way tRRD serialises activates device-wide.
        conflict = ~hit & (open_row >= 0)
        pre_at = np.maximum(
            np.maximum(command_from, pre_ready), self.wr_recover[i, bank]
        )
        act_earliest = np.where(
            conflict,
            pre_at + self.t_rp[i],
            np.maximum(command_from, self.idle_at[i, bank]),
        )
        act_at = np.maximum(act_earliest, self.last_activate[i] + self.t_rrd[i])
        cas_ready = np.where(hit, cas_ready, act_at + self.t_rcd[i])
        pre_ready = np.where(hit, pre_ready, act_at + self.t_ras[i])
        self.last_activate[i] = np.where(hit, self.last_activate[i], act_at)
        self.open_row[i, bank] = row
        cas_at = np.maximum(command_from, cas_ready)
        latency = np.where(write, self.write_latency[i], self.cas_latency[i])
        first_data = np.maximum(cas_at + latency, self.data_busy[i] + 1)
        finish = first_data + beats - 1
        self.data_busy[i] = finish
        self.cas_ready[i, bank] = np.maximum(cas_ready, first_data)
        self.wr_recover[i, bank] = np.where(
            write, finish + self.t_wr[i], self.wr_recover[i, bank]
        )
        self.pre_ready[i, bank] = np.maximum(pre_ready, finish + 1)
        return finish, cas_at + 1

    def _refresh_catchup(self, i, upto) -> None:
        """Vectorised ``DdrControllerTlm._refresh_catchup`` over *i*.

        Each pass precharges-all at the due cycle (only open lanes delay
        the precharge) and blocks the lanes for tRP+tRFC; the loop drains
        every interval due at or before *upto*, exactly as the serial
        while-loop does.
        """
        enabled = self.refresh_enabled[i]
        due = enabled & (self.next_refresh[i] <= upto)
        while due.any():
            k = i[due]
            at = self.next_refresh[k]
            lanes_open = self.open_row[k] >= 0
            blocked = np.where(
                lanes_open,
                np.maximum(self.pre_ready[k], self.wr_recover[k]),
                _NEG,
            )
            pre_at = np.maximum(at, blocked.max(axis=1))
            ready = pre_at + self.t_rp[k] + self.t_rfc[k]
            self.open_row[k] = -1
            self.idle_at[k] = ready[:, None]
            self.cas_ready[k] = ready[:, None]
            self.pre_ready[k] = ready[:, None]
            self.wr_recover[k] = 0
            self.refresh_ready[k] = np.maximum(self.refresh_ready[k], ready)
            self.next_refresh[k] = at + self.t_refi[k]
            due = enabled & (self.next_refresh[i] <= upto)


def _records_from(sims: Sequence[_Extracted], results: dict, wall: float) -> List[RunRecord]:
    """One :class:`RunRecord` per simulation, mirroring ``from_run``.

    Counters pass through ``int()`` — numpy scalars would poison the
    JSON canonicalisation behind ``content_key`` and the result store.
    Wall time (excluded from equality) is apportioned evenly: the batch
    ran as one program, so per-point attribution is an estimate.
    """
    share = wall / max(len(sims), 1)
    records = []
    for index, sim in enumerate(sims):
        point = sim.job.point
        spec = point.spec
        records.append(
            RunRecord(
                label=point.label,
                axis=point.axis,
                value=repr(point.value),
                engine=point.engine,
                system=spec.name,
                workload=spec.workload.name,
                seed=spec.workload.seed,
                cycles=int(results["cycles"][index]),
                transactions=int(results["transactions"][index]),
                bytes_transferred=int(results["bytes"][index]),
                busy_cycles=int(results["busy_cycles"][index]),
                absorbed_writes=0,  # single-master: the buffer never absorbs
                drained_writes=0,
                rt_deadline_hits=int(results["hits"][index]),
                rt_deadline_misses=int(results["misses"][index]),
                error_responses=0,  # fault-free by eligibility
                retry_responses=0,
                wall_seconds=share,
            )
        )
    return records


def run_batch(
    jobs: Sequence,
    execute_serial: Callable,
    on_result=None,
    on_start=None,
    dispatch_log: Optional[List[str]] = None,
) -> List[RunRecord]:
    """Execute *jobs*, lockstepping the eligible ones.

    *execute_serial* is the runner's per-job serial executor — the
    fallback path for ineligible points (and the error-policy owner: a
    point whose build or traffic crashes is re-run serially so the
    reference engine raises, or records, the reference error).  Records
    return in grid order; ``on_result`` fires in grid order after the
    batch completes (lockstep has no per-point completion moment until
    the whole program finishes).  ``on_start`` fires when a point's
    attempt begins: for lockstepped points that is the program start
    (they genuinely run together), for fallback points immediately
    before their serial run.  ``dispatch_log``, when given, receives
    one :data:`BATCHED`/:data:`FELL_BACK` label per job, in grid order.
    """
    extracted: List[_Extracted] = []
    order: List[Tuple[str, int]] = []  # ("batch"|"serial", index into pool)
    fallback_jobs: List = []
    for job in jobs:
        sim = None
        if HAVE_NUMPY:
            try:
                sim = _extract(job)
            except Exception:  # noqa: BLE001 - rebuilt (and re-raised) serially
                sim = None
        if sim is None:
            order.append((FELL_BACK, len(fallback_jobs)))
            fallback_jobs.append(job)
        else:
            order.append((BATCHED, len(extracted)))
            extracted.append(sim)
    batch_records: List[RunRecord] = []
    if on_start is not None and extracted:
        # Lockstepped points all start when the shared program does.
        for grid_index, (kind, _pool_index) in enumerate(order):
            if kind is BATCHED:
                on_start(grid_index, jobs[grid_index].point)
    if extracted:
        batch = _Batch(extracted)
        repeats = max(max(sim.job.repeats for sim in extracted), 1)
        best_wall: Optional[float] = None
        results = None
        for _ in range(repeats):
            begin = time.perf_counter()
            fresh = batch.emulate()
            wall = time.perf_counter() - begin
            if results is not None and any(
                not np.array_equal(results[key], fresh[key]) for key in fresh
            ):
                raise SimulationError(
                    "non-deterministic batch: lockstep emulation produced "
                    "different counters on repeat"
                )
            if best_wall is None or wall < best_wall:
                best_wall, results = wall, fresh
        assert results is not None and best_wall is not None
        batch_records = _records_from(extracted, results, best_wall)
    fallback_records: List[RunRecord] = []
    if fallback_jobs:
        fallback_grid_index = [
            grid_index
            for grid_index, (kind, _pool_index) in enumerate(order)
            if kind is FELL_BACK
        ]
        for pool_index, job in enumerate(fallback_jobs):
            if on_start is not None:
                on_start(fallback_grid_index[pool_index], job.point)
            fallback_records.append(execute_serial(job))
    records = [
        batch_records[index] if kind is BATCHED else fallback_records[index]
        for kind, index in order
    ]
    if dispatch_log is not None:
        dispatch_log.extend(kind for kind, _index in order)
    if on_result is not None:
        for index, record in enumerate(records):
            on_result(index, record)
    return records
