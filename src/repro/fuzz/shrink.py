"""Greedy trace shrinking (delta debugging over offered records).

Given a failing record list and a ``still_fails`` oracle, the shrinker
first removes records ddmin-style (chunks of halving granularity, then
singles), then simplifies the survivors field-wise (truncate fault
plans, drop deadlines, collapse bursts to single beats).  Every
accepted candidate re-validates through
:func:`~repro.traffic.trace.record_from_payload`, so the minimal trace
is guaranteed to load back from its JSON-lines repro file.

The oracle is called with a *candidate list* and must return ``True``
only when the candidate reproduces the **same** failure (signature
equality, not mere "something failed") — otherwise shrinking can walk
to a different bug and archive a mislabelled repro.
"""

from __future__ import annotations

from dataclasses import asdict, replace
from typing import Callable, List, Sequence, Tuple

from repro.errors import TrafficError
from repro.traffic.trace import TraceRecord, record_from_payload

#: Oracle signature: candidate records -> "still the same failure".
StillFails = Callable[[Sequence[TraceRecord]], bool]


def _valid(record: TraceRecord) -> bool:
    try:
        record_from_payload(asdict(record), "shrink candidate")
    except TrafficError:
        return False
    return True


def _simplified_variants(record: TraceRecord) -> List[TraceRecord]:
    """Strictly-simpler versions of one record, most aggressive first."""
    variants: List[TraceRecord] = []
    if record.fault_plan:
        # No fault at all beats a shorter plan; try both.
        variants.append(replace(record, fault_plan=(), resp=0))
        if len(record.fault_plan) > 1:
            variants.append(replace(record, fault_plan=record.fault_plan[:1]))
    if record.deadline is not None:
        variants.append(replace(record, deadline=None))
    if record.beats > 1:
        variants.append(
            replace(
                record,
                beats=1,
                wrapping=False,
                data=list(record.data[:1]),
            )
        )
    return [variant for variant in variants if _valid(variant)]


def _drop_pass(
    records: List[TraceRecord], still_fails: StillFails
) -> List[TraceRecord]:
    """ddmin-style removal: chunks of halving size down to singles."""
    granularity = 2
    while len(records) >= 2:
        chunk = max(1, len(records) // granularity)
        removed = False
        start = 0
        while start < len(records):
            candidate = records[:start] + records[start + chunk :]
            if candidate and still_fails(candidate):
                records = candidate
                removed = True
                # Same start: the next chunk shifted into place.
            else:
                start += chunk
        if removed:
            # Finer granularity often unlocks after a removal round.
            granularity = max(2, min(granularity, len(records)))
            if chunk == 1:
                continue
        if chunk == 1:
            break
        granularity = min(granularity * 2, len(records))
    return records


def _simplify_pass(
    records: List[TraceRecord], still_fails: StillFails
) -> List[TraceRecord]:
    """Per-record field simplification, greedy and order-stable."""
    for index in range(len(records)):
        for variant in _simplified_variants(records[index]):
            candidate = list(records)
            candidate[index] = variant
            if still_fails(candidate):
                records = candidate
                # Re-derive variants from the accepted simpler record.
                for again in _simplified_variants(records[index]):
                    candidate = list(records)
                    candidate[index] = again
                    if still_fails(candidate):
                        records = candidate
                break
    return records


def shrink_records(
    records: Sequence[TraceRecord], still_fails: StillFails
) -> Tuple[TraceRecord, ...]:
    """Minimise a failing record list under the *still_fails* oracle.

    Returns the input unchanged when the failure does not reproduce
    from the full list (e.g. a host-flaky crash): a repro that cannot
    replay is not worth "minimising" into noise.
    """
    current = list(records)
    if not current or not still_fails(current):
        return tuple(records)
    current = _drop_pass(current, still_fails)
    current = _simplify_pass(current, still_fails)
    # Simplification may have unlocked further removals (e.g. dropping
    # a fault plan made a retry-storm filler record redundant).
    if len(current) >= 2:
        current = _drop_pass(current, still_fails)
    return tuple(current)
