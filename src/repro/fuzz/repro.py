"""Repro files: a shrunk failing trace plus everything replay needs.

Format — JSON-lines, one file per failure:

* line 1: metadata object (``format`` marker, failure signature and
  detail, the engines/checks that were armed, the pinned bus config,
  master count, and the originating fuzz seed);
* lines 2..N: one :class:`~repro.traffic.trace.TraceRecord` per line,
  exactly the schema :func:`~repro.traffic.trace.load_trace` reads.

Repro files live in ``tests/data/repros/`` and are auto-discovered by
``tests/test_repro_regressions.py``: each must replay to the same
failure signature it archived, forever.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import List, Tuple

from repro.canonical import register_content_schema
from repro.core.config import AhbPlusConfig
from repro.errors import TrafficError
from repro.fuzz.fuzzer import (
    DEFAULT_MAX_CYCLES,
    FuzzFailure,
    Fuzzer,
    Observation,
)
from repro.traffic.trace import TraceRecord, record_from_payload

#: Format marker of the metadata line; bump on incompatible change.
REPRO_FORMAT = register_content_schema(
    "ahbplus-fuzz-repro-v1", "repro.fuzz.repro.Repro"
)


@dataclass(frozen=True)
class Repro:
    """One archived minimal failure."""

    kind: str
    engine: str
    signature: Tuple[str, ...]
    detail: str
    seed: int
    engines: Tuple[str, ...]
    checks: Tuple[str, ...]
    config: AhbPlusConfig
    num_masters: int
    records: Tuple[TraceRecord, ...]

    @classmethod
    def from_failure(cls, failure: FuzzFailure) -> "Repro":
        if not failure.records:
            raise TrafficError(
                f"seed {failure.seed}: a crash before any capture has no "
                f"trace to archive — keep the seed, not a repro file"
            )
        obs = failure.observation
        return cls(
            kind=obs.kind,
            engine=obs.engine,
            signature=obs.signature,
            detail=obs.detail,
            seed=failure.seed,
            engines=failure.engines,
            checks=failure.checks,
            config=failure.config,
            num_masters=failure.num_masters,
            records=failure.records,
        )


def save_repro(repro: Repro, path) -> int:
    """Write *repro* as JSON-lines; returns the record count."""
    meta = {
        "format": REPRO_FORMAT,
        "kind": repro.kind,
        "engine": repro.engine,
        "signature": list(repro.signature),
        "detail": repro.detail,
        "seed": repro.seed,
        "engines": list(repro.engines),
        "checks": list(repro.checks),
        "num_masters": repro.num_masters,
        "config": repro.config.to_dict(),
    }
    try:
        with open(path, "w", encoding="utf-8") as stream:
            stream.write(json.dumps(meta) + "\n")
            for record in repro.records:
                stream.write(json.dumps(asdict(record)) + "\n")
    except OSError as exc:
        raise TrafficError(f"cannot write repro {path!r}: {exc}") from exc
    return len(repro.records)


def load_repro(path) -> Repro:
    """Read and fully validate a repro file."""
    try:
        with open(path, "r", encoding="utf-8") as stream:
            lines = stream.readlines()
    except OSError as exc:
        raise TrafficError(f"cannot read repro {path!r}: {exc}") from exc
    numbered = [
        (line_no, line.strip())
        for line_no, line in enumerate(lines, 1)
        if line.strip()
    ]
    if not numbered:
        raise TrafficError(f"repro {path!r} is empty")
    meta_no, meta_line = numbered[0]
    try:
        meta = json.loads(meta_line)
    except json.JSONDecodeError as exc:
        raise TrafficError(
            f"repro {path!r} line {meta_no}: malformed metadata: {exc}"
        ) from exc
    if not isinstance(meta, dict) or meta.get("format") != REPRO_FORMAT:
        raise TrafficError(
            f"repro {path!r}: missing/unknown format marker "
            f"(expected {REPRO_FORMAT!r})"
        )
    required = {
        "kind",
        "engine",
        "signature",
        "detail",
        "seed",
        "engines",
        "checks",
        "num_masters",
        "config",
    }
    missing = required - set(meta)
    if missing:
        raise TrafficError(
            f"repro {path!r}: metadata missing {sorted(missing)}"
        )
    records: List[TraceRecord] = []
    for line_no, line in numbered[1:]:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TrafficError(
                f"repro {path!r} line {line_no}: {exc}"
            ) from exc
        records.append(
            record_from_payload(payload, f"repro {path!r} line {line_no}")
        )
    if not records:
        raise TrafficError(f"repro {path!r} has no trace records")
    return Repro(
        kind=str(meta["kind"]),
        engine=str(meta["engine"]),
        signature=tuple(str(part) for part in meta["signature"]),
        detail=str(meta["detail"]),
        seed=int(meta["seed"]),
        engines=tuple(str(engine) for engine in meta["engines"]),
        checks=tuple(str(check) for check in meta["checks"]),
        config=AhbPlusConfig.from_dict(meta["config"]),
        num_masters=int(meta["num_masters"]),
        records=tuple(records),
    )


def replay_repro(
    repro: Repro, max_cycles: int = DEFAULT_MAX_CYCLES
) -> "Observation | None":
    """Re-run an archived repro with its original engines/checks.

    Returns the observed failure (``None`` when the repro no longer
    fails — i.e. the archived bug is fixed or has regressed into
    silence; the regression test treats both as test failures so the
    file gets consciously re-triaged, not silently carried).
    """
    fuzzer = Fuzzer(
        engines=repro.engines,
        checks=repro.checks,
        max_cycles=max_cycles,
    )
    return fuzzer.observe_replay(
        repro.config, repro.num_masters, repro.records, seed=repro.seed
    )
