"""CLI: ``python -m repro.fuzz --start 0 --count 50 --out repros/``.

Exit status 0 means every seed fuzzed clean; 1 means failures were
found (each printed, and archived as JSON-lines repros when ``--out``
is given).  The fixed-seed ``make fuzz`` target relies on that exit
code as its pass/fail verdict.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.fuzz.fuzzer import (
    CHECKS,
    DEFAULT_CHECKS,
    DEFAULT_ENGINES,
    DEFAULT_MAX_CYCLES,
    Fuzzer,
)
from repro.fuzz.repro import Repro, save_repro


def _csv(raw: str):
    return tuple(part for part in raw.split(",") if part)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Fuzz the AHB+ engines with adversarial scenarios.",
    )
    parser.add_argument("--start", type=int, default=0, help="first seed")
    parser.add_argument("--count", type=int, default=50, help="seeds to fuzz")
    parser.add_argument(
        "--engines",
        type=_csv,
        default=DEFAULT_ENGINES,
        help="comma-separated engine levels (first is the reference; "
        "'rtl-full' is the always-sweeping RTL reference kernel)",
    )
    parser.add_argument(
        "--checks",
        type=_csv,
        default=DEFAULT_CHECKS,
        help=f"comma-separated checker families from {CHECKS}",
    )
    parser.add_argument(
        "--transactions",
        type=int,
        nargs=2,
        default=(3, 10),
        metavar=("LO", "HI"),
        help="per-master transaction count range",
    )
    parser.add_argument(
        "--max-cycles",
        type=int,
        default=DEFAULT_MAX_CYCLES,
        help="per-run drain ceiling (hitting it reports a crash)",
    )
    parser.add_argument(
        "--max-failures",
        type=int,
        default=None,
        help="stop the campaign after this many failures",
    )
    parser.add_argument(
        "--no-shrink",
        action="store_true",
        help="archive full traces instead of shrinking",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="directory to write one repro file per failure",
    )
    args = parser.parse_args(argv)

    fuzzer = Fuzzer(
        engines=args.engines,
        checks=args.checks,
        transactions=tuple(args.transactions),
        max_cycles=args.max_cycles,
    )
    seeds = range(args.start, args.start + args.count)
    report = fuzzer.run(
        seeds, shrink=not args.no_shrink, max_failures=args.max_failures
    )
    print(report.summary())
    if report.clean:
        return 0
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for failure in report.failures:
            if not failure.records:
                print(
                    f"  seed {failure.seed}: crash before capture — "
                    f"no repro file (keep the seed)"
                )
                continue
            path = os.path.join(
                args.out, f"seed{failure.seed}_{failure.observation.kind}.jsonl"
            )
            count = save_repro(Repro.from_failure(failure), path)
            print(f"  wrote {path} ({count} records)")
    return 1


if __name__ == "__main__":
    sys.exit(main())
