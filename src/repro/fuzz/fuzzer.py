"""The fuzzer proper: seeded scenario drawing and cross-engine checking.

One seed deterministically maps to one scenario (a :class:`SystemSpec`
with adversarial traffic shaping and optional fault injection), so a
failing seed is itself a repro — the shrunk trace merely makes it
minimal and engine-independent.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.trace_diff import trace_diff
from repro.assertions.properties import OrderingChecker, QosPropertyChecker
from repro.assertions.protocol import RtlProtocolChecker, TransactionChecker
from repro.core.config import AhbPlusConfig
from repro.core.qos import QosSetting
from repro.errors import ConfigError
from repro.system.platform import PlatformBuilder
from repro.system.spec import LEVELS, BusSpec, SystemSpec
from repro.traffic.faults import FaultSpec
from repro.traffic.patterns import TrafficPattern
from repro.traffic.trace import TraceRecord, TraceRecorder
from repro.traffic.workloads import MasterSpec, Workload

#: Checker families the fuzzer can arm.  ``"qos"`` treats deadline
#: misses as failures; it is off by default because the fuzzer
#: *deliberately* draws unschedulable deadlines — arm it when hunting
#: QoS-hazard repros rather than model bugs.
CHECKS = ("protocol", "ordering", "divergence", "qos")
DEFAULT_CHECKS = ("protocol", "ordering", "divergence")

#: Engines the fuzzer can run: every platform level, plus the
#: ``"rtl-full"`` pseudo-engine — the RTL platform elaborated with
#: ``full_sweep=True``, i.e. the always-sweeping reference kernel the
#: event-driven scheduler is A/B'd against.  Keeping both in the
#: default matrix makes every campaign a cross-check of the
#: event-driven fast path against its own reference *and* the TLM/plain
#: models.
ENGINES = LEVELS + ("rtl-full",)
DEFAULT_ENGINES = ("tlm", "plain", "rtl", "rtl-full")

#: Default per-run drain ceiling: far above any legal small scenario,
#: so hitting it means a deadlocked engine (reported as a crash).
DEFAULT_MAX_CYCLES = 200_000


@dataclass(frozen=True)
class Observation:
    """What a failing run looked like.

    ``signature`` is the stable identity used to decide "same failure"
    during shrinking and repro replay; ``detail`` is the human story.
    """

    kind: str  #: ``"violation"`` | ``"divergence"`` | ``"crash"``
    engine: str
    signature: Tuple[str, ...]
    detail: str


@dataclass(frozen=True)
class FuzzFailure:
    """One failing seed with everything needed to replay it."""

    seed: int
    observation: Observation
    #: Offered trace (shrunk when shrinking was on); empty only when
    #: the reference engine crashed before anything completed.
    records: Tuple[TraceRecord, ...]
    #: The scenario's resolved bus config (pins master count, QoS map,
    #: write-buffer shape — everything replay must reproduce).
    config: AhbPlusConfig
    num_masters: int
    engines: Tuple[str, ...]
    checks: Tuple[str, ...]

    def describe(self) -> str:
        obs = self.observation
        return (
            f"seed {self.seed}: {obs.kind} at {obs.engine} "
            f"({len(self.records)} records) — {obs.detail}"
        )


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    seeds: Tuple[int, ...]
    failures: Tuple[FuzzFailure, ...]

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        if self.clean:
            return f"{len(self.seeds)} seeds fuzzed, no failures"
        return (
            f"{len(self.seeds)} seeds fuzzed, "
            f"{len(self.failures)} FAILURES: "
            + "; ".join(f.describe() for f in self.failures)
        )


def replay_system(
    config: AhbPlusConfig,
    num_masters: int,
    records: Sequence[TraceRecord],
    name: str = "fuzz-replay",
) -> SystemSpec:
    """Bind a captured (possibly shrunk) trace back into a system.

    The pinned config reproduces the original scenario's bus exactly;
    the trace records reproduce the offered traffic — including fault
    plans and QoS deadlines, which travel on the records themselves.
    """
    workload = Workload.from_trace(
        tuple(records), name=name, num_masters=num_masters
    )
    return SystemSpec(name=name, workload=workload, bus=BusSpec(config=config))


class Fuzzer:
    """Draws, runs and (on failure) shrinks adversarial scenarios."""

    def __init__(
        self,
        engines: Sequence[str] = DEFAULT_ENGINES,
        checks: Sequence[str] = DEFAULT_CHECKS,
        masters: Tuple[int, int] = (1, 3),
        transactions: Tuple[int, int] = (3, 10),
        max_cycles: int = DEFAULT_MAX_CYCLES,
        fault_fraction: float = 0.6,
    ) -> None:
        engines = tuple(engines)
        if len(engines) < 1:
            raise ConfigError("fuzzer needs at least one engine")
        for engine in engines:
            if engine not in ENGINES:
                raise ConfigError(
                    f"unknown engine {engine!r}; choose from {ENGINES}"
                )
        checks = tuple(checks)
        unknown = set(checks) - set(CHECKS)
        if unknown:
            raise ConfigError(
                f"unknown checks {sorted(unknown)}; choose from {CHECKS}"
            )
        if "divergence" in checks and len(engines) < 2:
            raise ConfigError("divergence checking needs >= 2 engines")
        if not 1 <= masters[0] <= masters[1]:
            raise ConfigError(f"bad masters range {masters}")
        if not 1 <= transactions[0] <= transactions[1]:
            raise ConfigError(f"bad transactions range {transactions}")
        if max_cycles < 1:
            raise ConfigError("max_cycles must be positive")
        self.engines = engines
        self.checks = checks
        self.masters = masters
        self.transactions = transactions
        self.max_cycles = max_cycles
        self.fault_fraction = fault_fraction

    # -- scenario drawing -----------------------------------------------------

    def scenario(self, seed: int) -> SystemSpec:
        """The (deterministic) adversarial scenario for *seed*.

        Hostile but legal: every knob stays inside the constructors'
        validated ranges — the point is to stress the engines, not the
        parameter validation.
        """
        rng = random.Random(seed)
        count = rng.randint(*self.masters)
        specs: List[MasterSpec] = []
        for index in range(count):
            size = rng.choice((1, 2, 4))
            # Wrap-heavy mixes in tight windows drive the 1 KB boundary
            # and wrap arithmetic; sub-word sizes stress beat math.
            mix = rng.choice(
                (
                    ((4, 0.5), (8, 0.3), (16, 0.2)),
                    ((1, 0.2), (4, 0.8)),
                    ((16, 1.0),),
                    ((1, 0.5), (8, 0.5)),
                )
            )
            span = rng.choice((1 << 10, 4 << 10, 64 << 10))
            span = max(span, size * 32)
            base = index * (4 << 20) + rng.choice((0, 1 << 10, 64 << 10))
            rt = rng.random() < 0.5
            deadline = rng.randint(8, 40) if rt else None
            pattern = TrafficPattern(
                name=f"fuzz-m{index}",
                read_fraction=rng.choice((0.0, 0.25, 0.5, 0.75, 1.0)),
                burst_mix=mix,
                think_range=(0, rng.choice((0, 2, 6))),
                base_addr=base,
                addr_span=span,
                sequential_fraction=rng.random(),
                size_bytes=size,
                wrap_fraction=rng.choice((0.0, 0.5, 1.0)),
                period=rng.randint(20, 80) if rt else None,
                deadline_offset=deadline,
            )
            qos = (
                QosSetting(real_time=True, objective_cycles=deadline)
                if rt
                else QosSetting()
            )
            specs.append(
                MasterSpec(
                    name=f"m{index}",
                    pattern=pattern,
                    transactions=rng.randint(*self.transactions),
                    qos=qos,
                )
            )
        fault: Optional[FaultSpec] = None
        if rng.random() < self.fault_fraction:
            error_rate = rng.uniform(0.0, 0.25)
            fault = FaultSpec(
                seed=rng.randrange(1 << 31),
                error_rate=error_rate,
                retry_rate=rng.uniform(0.0, min(0.35, 1.0 - error_rate)),
                max_retries=rng.randint(1, 3),
                retry_limit=rng.randint(0, 4),
            )
        workload = Workload(
            name=f"fuzz-{seed}",
            seed=seed,
            masters=tuple(specs),
            fault=fault,
        )
        spec = SystemSpec(name=f"fuzz-{seed}", workload=workload).with_config(
            write_buffer_depth=rng.choice((1, 2, 4, 8)),
            write_buffer_enabled=rng.random() < 0.8,
        )
        return spec

    # -- running --------------------------------------------------------------

    def _run_engine(self, spec: SystemSpec, engine: str, seed: Optional[int]):
        """One engine run: returns (records, [(checker, violation)...])."""
        if engine == "rtl-full":
            level, full_sweep = "rtl", True
        else:
            level, full_sweep = engine, False
        platform = PlatformBuilder(spec).build(level, full_sweep=full_sweep)
        recorder = TraceRecorder()
        platform.attach(recorder)
        checkers = []
        if "protocol" in self.checks:
            checkers.append(TransactionChecker().bind(engine, seed))
        if "ordering" in self.checks:
            checkers.append(OrderingChecker().bind(engine, seed))
        if "qos" in self.checks:
            checkers.append(QosPropertyChecker().bind(engine, seed))
        for checker in checkers:
            platform.attach(checker)
        if level == "rtl" and "protocol" in self.checks:
            rtl_checker = RtlProtocolChecker(
                [master.sig for master in platform.masters], platform.bus
            )
            rtl_checker.bind(engine, seed)
            platform.engine.add_cycle_hook(rtl_checker.sample)
            checkers.append(rtl_checker)
        platform.run(max_cycles=self.max_cycles)
        flagged = [
            (checker.name, violation)
            for checker in checkers
            for violation in checker.violations
        ]
        return recorder.records, flagged

    @staticmethod
    def _violation_obs(flagged, engine: str) -> Optional[Observation]:
        if not flagged:
            return None
        checker_name, violation = flagged[0]
        return Observation(
            kind="violation",
            engine=engine,
            signature=("violation", engine, checker_name, violation.rule),
            detail=str(violation),
        )

    def observe(
        self, spec: SystemSpec, seed: Optional[int] = None
    ) -> Tuple[Tuple[TraceRecord, ...], Optional[Observation]]:
        """Run *spec* at every engine; first failure wins.

        Evaluation order: reference-engine crash/violations, then per
        additional engine crash, violations, and functional divergence
        against the reference trace.  Engines after the failing one
        never run, which keeps shrinking cheap.
        """
        reference = self.engines[0]
        try:
            ref_records, flagged = self._run_engine(spec, reference, seed)
        except Exception as exc:  # noqa: BLE001 - crashes are findings
            return (), Observation(
                kind="crash",
                engine=reference,
                signature=("crash", reference, type(exc).__name__),
                detail=str(exc),
            )
        ref_records = tuple(ref_records)
        obs = self._violation_obs(flagged, reference)
        if obs is not None:
            return ref_records, obs
        for engine in self.engines[1:]:
            try:
                records, flagged = self._run_engine(spec, engine, seed)
            except Exception as exc:  # noqa: BLE001
                return ref_records, Observation(
                    kind="crash",
                    engine=engine,
                    signature=("crash", engine, type(exc).__name__),
                    detail=str(exc),
                )
            obs = self._violation_obs(flagged, engine)
            if obs is not None:
                return ref_records, obs
            if "divergence" in self.checks:
                diff = trace_diff(ref_records, records)
                if not diff.functionally_identical:
                    first = (
                        diff.mismatches[0].field
                        if diff.mismatches
                        else "records"
                    )
                    return ref_records, Observation(
                        kind="divergence",
                        engine=engine,
                        signature=("divergence", engine, first),
                        detail=diff.summary(),
                    )
        return ref_records, None

    def observe_replay(
        self,
        config: AhbPlusConfig,
        num_masters: int,
        records: Sequence[TraceRecord],
        seed: Optional[int] = None,
    ) -> Optional[Observation]:
        """Replay a captured trace and report what (if anything) fails."""
        if not records:
            return None
        spec = replay_system(config, num_masters, records)
        _records, obs = self.observe(spec, seed)
        return obs

    # -- campaign -------------------------------------------------------------

    def run_seed(self, seed: int, shrink: bool = True) -> Optional[FuzzFailure]:
        """Fuzz one seed; returns its (shrunk) failure or ``None``."""
        from repro.fuzz.shrink import shrink_records

        spec = self.scenario(seed)
        config = spec.config()
        records, obs = self.observe(spec, seed)
        if obs is None:
            return None
        if records and shrink:
            signature = obs.signature

            def still_fails(candidate: Sequence[TraceRecord]) -> bool:
                if not candidate:
                    return False
                replay_obs = self.observe_replay(
                    config, config.num_masters, candidate, seed
                )
                return (
                    replay_obs is not None
                    and replay_obs.signature == signature
                )

            records = shrink_records(records, still_fails)
        return FuzzFailure(
            seed=seed,
            observation=obs,
            records=tuple(records),
            config=config,
            num_masters=config.num_masters,
            engines=self.engines,
            checks=self.checks,
        )

    def run(
        self,
        seeds: Sequence[int],
        shrink: bool = True,
        max_failures: Optional[int] = None,
    ) -> FuzzReport:
        """Fuzz every seed; optionally stop after *max_failures*."""
        failures: List[FuzzFailure] = []
        fuzzed: List[int] = []
        for seed in seeds:
            fuzzed.append(seed)
            failure = self.run_seed(seed, shrink=shrink)
            if failure is not None:
                failures.append(failure)
                if max_failures is not None and len(failures) >= max_failures:
                    break
        return FuzzReport(seeds=tuple(fuzzed), failures=tuple(failures))
