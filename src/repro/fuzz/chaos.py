"""Chaos harness: kill, corrupt and choke the sweep server — prove the
supervision guarantees hold anyway.

Each seeded **campaign** runs a real ``python -m repro.serve`` daemon
(a subprocess, because ``kill -9`` needs a process to kill) against a
throwaway store+journal, then plays a scripted-but-seeded sequence of
hostile moves against it:

* **kill -9 mid-batch** — SIGKILL the daemon after the first result of
  a multi-point submission streams back, leaving the journal with a
  mix of finished, started-but-interrupted and accepted-only points;
* **torn tails** — append a partial JSON fragment (no newline) to the
  journal and/or store file while the daemon is down, exactly what a
  crash mid-append leaves behind;
* **connection chaos** — open a raw socket and slam it shut after half
  a submit line, mid-burst, or right after the request;
* **poisoned points** — submit a deterministically-crashing point
  (the RTL engine under a 3-cycle ceiling) until the server parks it
  in quarantine;
* **drain mid-service** — ask a live server to drain and restart it.

After the dust settles a fresh server on the *same* store+journal gets
the original grid re-submitted, and the campaign asserts the
guarantees the serving layer advertises:

1. **no accepted work lost** — every point of the original submission
   yields a successful record;
2. **bit-identical recovery** — each record equals the one an
   uninterrupted serial run produces (field-for-field, wall time
   excluded: it is the only nondeterministic field);
3. **no point simulated twice** — the journal's dispatch accounting
   never shows a ``start`` for a key after that key's ``done``;
4. **no corruption** — both files reload with at most the injected
   torn lines skipped, and the store holds exactly one valid line per
   key.

``make chaos`` runs 25 fixed-seed campaigns (exit status 1 on any
violated guarantee); ``tests/test_chaos.py`` keeps a short smoke of
the same harness in tier-1.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Dict, List, Optional, Sequence, Tuple

import repro.serve
from repro.errors import SimulationError
from repro.exec import RunRecord, SweepRunner, point_key
from repro.serve.client import ServeClient
from repro.serve.journal import Journal
from repro.serve.store import ResultStore
from repro.system import paper_topology, sweep
from repro.system.spec import SweepPoint
from repro.traffic import single_master_workload

#: Transactions per campaign grid: heavy enough that a SIGKILL lands
#: mid-batch (each point runs for tens of milliseconds), light enough
#: that 25 campaigns stay a coffee-break job.
DEFAULT_TRANSACTIONS = (1500, 3500)

#: Sweep depths drawn from per campaign.
DEPTH_POOL = (1, 2, 4, 8, 16)

#: The poison recipe: the RTL engine cannot drain anything in 3 cycles
#: and raises ``SimulationError`` — deterministically, every attempt.
POISON_MAX_CYCLES = 3


@dataclass
class ChaosFailure:
    """One campaign that violated a guarantee."""

    seed: int
    message: str
    moves: List[str] = field(default_factory=list)

    def describe(self) -> str:
        script = " -> ".join(self.moves) or "(no moves)"
        return f"seed {self.seed}: {self.message}\n    moves: {script}"


@dataclass
class ChaosReport:
    """A chaos run's verdict across every campaign."""

    campaigns: int = 0
    kills: int = 0
    corruptions: int = 0
    drops: int = 0
    poisons: int = 0
    drains: int = 0
    recovered_points: int = 0
    failures: List[ChaosFailure] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        verdict = (
            "all guarantees held"
            if self.clean
            else f"{len(self.failures)} campaign(s) FAILED"
        )
        return (
            f"chaos: {self.campaigns} campaigns — {self.kills} kills, "
            f"{self.corruptions} torn tails, {self.drops} dropped "
            f"connections, {self.poisons} poisoned points, "
            f"{self.drains} drains; {self.recovered_points} points "
            f"recovered from the journal — {verdict}"
        )


class _Daemon:
    """One ``python -m repro.serve serve`` subprocess."""

    def __init__(
        self,
        store: Path,
        journal: Path,
        quarantine_threshold: int,
    ) -> None:
        src_root = Path(repro.serve.__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.serve",
                "serve",
                "--port",
                "0",
                "--store",
                str(store),
                "--journal",
                str(journal),
                "--backend",
                "serial",
                "--max-inflight",
                "1",
                "--quarantine-threshold",
                str(quarantine_threshold),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        banner = self.proc.stdout.readline()
        if "listening on" not in banner:
            rest = self.proc.stdout.read()
            self.proc.kill()
            self.proc.wait()
            raise SimulationError(
                f"chaos daemon failed to start: {banner!r}{rest!r}"
            )
        endpoint = banner.split("listening on ")[1].split()[0]
        self.host, port = endpoint.rsplit(":", 1)
        self.port = int(port)

    def kill9(self) -> None:
        self.proc.kill()  # SIGKILL: no cleanup, no flush, no goodbye
        self.proc.wait()

    def reap(self, timeout: float = 30.0) -> None:
        try:
            self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()

    def alive(self) -> bool:
        return self.proc.poll() is None


class ChaosHarness:
    """Seeded chaos campaigns against real server processes.

    *transactions* bounds the per-campaign workload size, *points* the
    grid width; *quarantine_threshold* is handed to the daemons (kept
    low so poison campaigns converge quickly).
    """

    def __init__(
        self,
        transactions: Tuple[int, int] = DEFAULT_TRANSACTIONS,
        points: int = 3,
        quarantine_threshold: int = 3,
        startup_timeout: float = 60.0,
    ) -> None:
        # The threshold must exceed the kill rounds (2): interrupted
        # starts count as crashes — by design, a poison point that
        # kills the server must not crash-loop forever — so a lower
        # threshold would let the harness's own SIGKILLs park an
        # innocent point it happened to kill twice mid-attempt.
        self.transactions = transactions
        self.points = points
        self.quarantine_threshold = quarantine_threshold
        self.startup_timeout = startup_timeout

    # -- campaign pieces -------------------------------------------------------

    def _grid(self, rng: Random) -> List[SweepPoint]:
        txns = rng.randint(*self.transactions)
        spec = paper_topology(workload=single_master_workload(txns))
        depths = sorted(rng.sample(DEPTH_POOL, self.points))
        return list(sweep(spec, axis="write_buffer_depth", values=depths))

    @staticmethod
    def _poison_grid() -> List[SweepPoint]:
        spec = paper_topology(workload=single_master_workload(12))
        return list(sweep(spec, axis="engine", values=("rtl",)))

    @staticmethod
    def _baseline(grid: Sequence[SweepPoint]) -> Dict[str, RunRecord]:
        """The uninterrupted ground truth, keyed like the store."""
        records = SweepRunner(backend="serial").run(list(grid))
        return {
            point_key(point.spec, engine=point.engine, max_cycles=None): rec
            for point, rec in zip(grid, records)
        }

    def _client(self, daemon: _Daemon, retries: int = 0) -> ServeClient:
        return ServeClient(
            daemon.host,
            daemon.port,
            timeout=self.startup_timeout,
            retries=retries,
            backoff_base=0.02,
            backoff_max=0.2,
        )

    def _submit_and_kill(
        self, daemon: _Daemon, grid: Sequence[SweepPoint], kill_after: int
    ) -> None:
        """SIGKILL the daemon once *kill_after* results have streamed."""
        armed = threading.Event()
        finished = threading.Event()
        seen = [0]

        def observe(event: Dict[str, object]) -> None:
            if event.get("event") == "result":
                seen[0] += 1
                if seen[0] >= kill_after:
                    armed.set()

        def submitter() -> None:
            client = self._client(daemon)
            try:
                client.submit(list(grid), on_event=observe)
            except SimulationError:
                pass  # the server died under us — that is the point
            finally:
                finished.set()
                armed.set()

        thread = threading.Thread(target=submitter, daemon=True)
        thread.start()
        armed.wait(self.startup_timeout)
        daemon.kill9()
        finished.wait(self.startup_timeout)
        thread.join(self.startup_timeout)

    @staticmethod
    def _tear_tail(path: Path) -> None:
        """Append a torn (newline-less) fragment, like a crash mid-append."""
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"op": "acc')

    @staticmethod
    def _drop_connection(daemon: _Daemon, style: str) -> None:
        """Open a raw socket, misbehave, slam it shut."""
        sock = socket.create_connection((daemon.host, daemon.port), timeout=10)
        try:
            if style == "half-line":
                sock.sendall(b'{"op": "submit", "points": [{"lab')
            elif style == "garbage":
                sock.sendall(b"this is not json\n")
                time.sleep(0.05)  # let the error event come (and be dropped)
            # style "instant": connect and close without a byte
        finally:
            sock.close()

    def _await_recovery(self, daemon: _Daemon) -> int:
        """Poll until journaled work has drained; return re-run count."""
        client = self._client(daemon, retries=2)
        deadline = time.monotonic() + self.startup_timeout
        while time.monotonic() < deadline:
            status = client.status()
            stats = status["stats"] or {}
            journal = status["journal"] or {}
            # A quarantined point's accept entry stays pending by
            # design (clearing the journal is the retry path), so it
            # never drains — don't wait for it.
            parked = len(stats.get("quarantine") or [])
            if (
                int(journal.get("pending") or 0) <= parked
                and not stats.get("queue_depth")
                and not stats.get("in_flight")
            ):
                return int(stats.get("recovered_rerun", 0))
            time.sleep(0.05)
        raise SimulationError(
            f"recovery did not finish within {self.startup_timeout}s"
        )

    # -- the invariants --------------------------------------------------------

    @staticmethod
    def _check_dispatch_accounting(journal_path: Path) -> Optional[str]:
        """Guarantee 3: no ``start`` for a key after that key's ``done``."""
        done: set = set()
        with journal_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    entry = json.loads(line)
                except ValueError:
                    continue  # torn line: guarantee 4's department
                op, key = entry.get("op"), entry.get("key")
                if op == "done":
                    done.add(key)
                elif op == "start" and key in done:
                    return (
                        f"point {key} was dispatched again after its done "
                        "mark — a finished simulation ran twice"
                    )
        return None

    @staticmethod
    def _check_store_file(
        store_path: Path, baseline: Dict[str, RunRecord]
    ) -> Optional[str]:
        """Guarantees 1, 2 and 4 against the raw store file."""
        per_key: Dict[str, int] = {}
        with store_path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    key = json.loads(line)["key"]
                except (ValueError, KeyError, TypeError):
                    continue  # injected torn line
                per_key[key] = per_key.get(key, 0) + 1
        duplicates = {k: n for k, n in per_key.items() if n > 1}
        if duplicates:
            return f"store filed a key more than once: {duplicates}"
        store = ResultStore(store_path)
        for key, expected in baseline.items():
            got = store.get(key)
            if got is None:
                return f"accepted point {key} has no record — work was lost"
            mine, theirs = got.to_dict(), expected.to_dict()
            mine.pop("wall_seconds"), theirs.pop("wall_seconds")
            if mine != theirs:
                return (
                    f"recovered record for {key} differs from the "
                    f"uninterrupted run: {mine} != {theirs}"
                )
        return None

    def _check_files(
        self,
        store_path: Path,
        journal_path: Path,
        baseline: Dict[str, RunRecord],
        torn_injected: int,
        kills: int,
    ) -> Optional[str]:
        problem = self._check_dispatch_accounting(journal_path)
        if problem is None:
            problem = self._check_store_file(store_path, baseline)
        if problem is not None:
            return problem
        # Guarantee 4: both files reload; only the injected torn lines
        # plus at most one genuine torn tail per kill may be skipped.
        budget = torn_injected + kills
        journal = Journal(journal_path)
        if journal.skipped_lines > budget:
            return (
                f"journal corrupt beyond torn tails: "
                f"{journal.skipped_lines} skipped lines (budget {budget})"
            )
        store = ResultStore(store_path)
        if store.skipped_lines > budget:
            return (
                f"store corrupt beyond torn tails: "
                f"{store.skipped_lines} skipped lines (budget {budget})"
            )
        pending = [key for key, _w, _c in journal.pending()]
        stale = [key for key in pending if key in baseline]
        if stale:
            return f"grid points still pending after a clean pass: {stale}"
        return None

    # -- one campaign ----------------------------------------------------------

    def campaign(
        self,
        seed: int,
        report: ChaosReport,
        moves: Optional[List[str]] = None,
    ) -> Tuple[List[str], Optional[str]]:
        """Run one seeded campaign; returns ``(moves, problem-or-None)``.

        *moves* may be passed in so the move log survives an exception
        thrown mid-campaign (the caller keeps the alias).
        """
        rng = Random(seed)
        grid = self._grid(rng)
        baseline = self._baseline(grid)
        if moves is None:
            moves = []
        torn = 0
        kills = 0
        with tempfile.TemporaryDirectory(prefix="chaos") as tmp:
            store_path = Path(tmp) / "results.jsonl"
            journal_path = Path(tmp) / "journal.jsonl"

            def spawn() -> _Daemon:
                return _Daemon(
                    store_path, journal_path, self.quarantine_threshold
                )

            # Act 1: kill -9 mid-batch (one or two rounds).
            daemon = spawn()
            for _round in range(rng.choice((1, 2))):
                kill_after = rng.randint(1, max(1, len(grid) - 1))
                moves.append(f"kill9 after {kill_after} result(s)")
                self._submit_and_kill(daemon, grid, kill_after)
                kills += 1
                report.kills += 1
                if rng.random() < 0.5:
                    target = rng.choice((journal_path, store_path))
                    if target.exists():
                        moves.append(f"tear tail of {target.name}")
                        self._tear_tail(target)
                        torn += 1
                        report.corruptions += 1
                daemon = spawn()  # restart on the same store+journal
            report.recovered_points += self._await_recovery(daemon)

            # Act 2: harass the recovered server.
            if rng.random() < 0.7:
                style = rng.choice(("half-line", "garbage", "instant"))
                moves.append(f"drop connection ({style})")
                self._drop_connection(daemon, style)
                report.drops += 1
            if rng.random() < 0.5:
                moves.append("poison point until quarantined")
                poison = self._poison_grid()
                quarantined = 0
                client = self._client(daemon, retries=1)
                for _attempt in range(self.quarantine_threshold + 1):
                    result = client.submit(
                        poison, max_cycles=POISON_MAX_CYCLES
                    )
                    quarantined = result.quarantined
                report.poisons += 1
                if not quarantined:
                    daemon.kill9()
                    return moves, (
                        "a point that crashed "
                        f"{self.quarantine_threshold + 1} times was "
                        "never quarantined"
                    )
                quarantine = (
                    self._client(daemon, retries=1).status()["stats"]
                    or {}
                ).get("quarantine") or []
                if not quarantine:
                    daemon.kill9()
                    return moves, "quarantined point missing from status"
            if rng.random() < 0.4:
                moves.append("drain and restart")
                if self._client(daemon, retries=1).drain():
                    daemon.reap()
                    report.drains += 1
                    daemon = spawn()
                    self._await_recovery(daemon)

            # Act 3: the full grid must now complete, loss-free.
            client = self._client(daemon, retries=2)
            final = client.submit(list(grid))
            failed = [
                record.label
                for record in final.records
                if record.failed
            ]
            if failed:
                daemon.kill9()
                return moves, f"final pass returned failure rows: {failed}"
            if not client.shutdown():
                daemon.kill9()
                return moves, "live server did not acknowledge shutdown"
            daemon.reap()

            problem = self._check_files(
                store_path, journal_path, baseline, torn, kills
            )
            return moves, problem

    # -- the campaign loop -----------------------------------------------------

    def run(
        self,
        seeds: Sequence[int],
        max_failures: Optional[int] = None,
        progress: bool = False,
    ) -> ChaosReport:
        report = ChaosReport()
        for seed in seeds:
            report.campaigns += 1
            moves: List[str] = []
            try:
                _moves, problem = self.campaign(seed, report, moves)
            except Exception as exc:  # harness plumbing failure: also a fail
                problem = f"{type(exc).__name__}: {exc}"
            if problem is not None:
                report.failures.append(
                    ChaosFailure(seed=seed, message=problem, moves=moves)
                )
                if (
                    max_failures is not None
                    and len(report.failures) >= max_failures
                ):
                    break
            if progress:
                verdict = "FAIL" if problem else "ok"
                print(f"  seed {seed}: {verdict} ({' -> '.join(moves)})")
        return report


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.chaos",
        description="Kill, corrupt and choke the sweep server; verify "
        "the crash-recovery guarantees hold.",
    )
    parser.add_argument("--start", type=int, default=0, help="first seed")
    parser.add_argument("--count", type=int, default=25)
    parser.add_argument(
        "--transactions",
        type=int,
        nargs=2,
        default=DEFAULT_TRANSACTIONS,
        metavar=("LO", "HI"),
    )
    parser.add_argument("--points", type=int, default=3)
    parser.add_argument("--max-failures", type=int, default=None)
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    harness = ChaosHarness(
        transactions=tuple(args.transactions), points=args.points
    )
    report = harness.run(
        range(args.start, args.start + args.count),
        max_failures=args.max_failures,
        progress=not args.quiet,
    )
    print(report.summary())
    for failure in report.failures:
        print("  " + failure.describe())
    return 0 if report.clean else 1


if __name__ == "__main__":
    sys.exit(main())
