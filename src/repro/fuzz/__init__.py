"""Protocol fuzzer: adversarial scenarios, cross-engine checking,
trace-shrunk minimal repros.

The fuzzer draws hostile-but-legal scenarios (wrap bursts in tight
windows, sub-word beat mixes, pathological QoS deadlines, seeded
ERROR/RETRY fault injection), elaborates each at several abstraction
levels through the one :class:`~repro.system.platform.PlatformBuilder`,
and flags three failure kinds:

* **violation** — any protocol/property checker accumulated a
  :class:`~repro.assertions.base.Violation`;
* **divergence** — two engines disagree on a functional trace field
  (:func:`~repro.analysis.trace_diff.trace_diff`);
* **crash** — an engine raised (deadlock, drain-limit, internal error).

On failure the offered trace is captured (PR 5's trace layer), greedily
shrunk to a minimal still-failing record list, and archived as a
JSON-lines repro that ``tests/test_repro_regressions.py`` auto-replays.

A second adversary lives alongside the protocol fuzzer:
:mod:`repro.fuzz.chaos` (``make chaos``) attacks the *serving* layer —
``kill -9`` mid-batch, torn file tails, dropped connections, poisoned
points — and asserts the supervision guarantees (no accepted work
lost, nothing simulated twice, bit-identical recovery, no corruption).
"""

from repro.fuzz.chaos import ChaosFailure, ChaosHarness, ChaosReport
from repro.fuzz.fuzzer import (
    CHECKS,
    DEFAULT_CHECKS,
    DEFAULT_ENGINES,
    ENGINES,
    FuzzFailure,
    FuzzReport,
    Fuzzer,
    Observation,
    replay_system,
)
from repro.fuzz.repro import (
    REPRO_FORMAT,
    Repro,
    load_repro,
    replay_repro,
    save_repro,
)
from repro.fuzz.shrink import shrink_records

__all__ = [
    "CHECKS",
    "ChaosFailure",
    "ChaosHarness",
    "ChaosReport",
    "DEFAULT_CHECKS",
    "DEFAULT_ENGINES",
    "ENGINES",
    "FuzzFailure",
    "FuzzReport",
    "Fuzzer",
    "Observation",
    "REPRO_FORMAT",
    "Repro",
    "load_repro",
    "replay_repro",
    "replay_system",
    "save_repro",
    "shrink_records",
]
