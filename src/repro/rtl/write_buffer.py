"""RTL face of the write buffer: the drain pseudo-master.

The buffer storage and absorb/hazard logic are the shared
:class:`~repro.core.write_buffer.WriteBuffer`; this component gives the
buffer its bus personality — "the write buffer behaves as another
master when it is occupied" (paper §3.3).  It requests the bus whenever
the FIFO holds writes, drives the drain's address and data phases, and
pops the FIFO as each drain's address phase is accepted (so arbitration
during the drain sees the *next* entry, matching the TLM).
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.ahb.transaction import Transaction
from repro.ahb.types import HTrans
from repro.core.write_buffer import WriteBuffer
from repro.kernel.cycle import CycleEngine, NULL_SEQ_HANDLE
from repro.rtl.signals import MasterSignals, SharedBusSignals


class DrainState(enum.Enum):
    IDLE = "idle"
    REQUEST = "request"
    DATA = "data"


class BufferMasterRtl:
    """Signal-level drain engine of the AHB+ write buffer."""

    #: State aliases for wake-filter predicates (see MasterRtl).
    REQUEST_STATE = DrainState.REQUEST
    DATA_STATE = DrainState.DATA

    def __init__(
        self,
        write_buffer: WriteBuffer,
        index: int,
        signals: MasterSignals,
        bus: SharedBusSignals,
        engine: CycleEngine,
    ) -> None:
        self.write_buffer = write_buffer
        self.index = index  # owner index on the shared bus (num_masters)
        self.sig = signals
        self.bus = bus
        self.engine = engine
        # Direct references to the per-cycle hot inputs.
        self._hgrant = signals.hgrant
        self._hready = bus.hready
        self._stream_owner = bus.stream_owner
        self._bus_available = bus.bus_available
        self.state = DrainState.IDLE
        self._txn: Optional[Transaction] = None
        self._beat = 0
        #: Completed drain transfers (master = WRITE_BUFFER_MASTER) with
        #: their bus cycles — the platform's observer replay serves these
        #: the way live TLM observers see buffer drains.
        self.drained_txns: List[Transaction] = []
        # Same touch discipline as MasterRtl: evaluate() reads only
        # (hgrant, bus_available) and sequential-phase FSM state, and
        # the signals matter only while the drain FSM is in REQUEST.
        requesting = self._requesting
        self._eval = engine.add_combinational(
            self.evaluate,
            sensitive_to=(
                (signals.hgrant, requesting),
                (bus.bus_available, requesting),
            ),
        )
        #: Quiescence handle, bound by the platform builder.  An empty
        #: idle drain engine sleeps until the arbiter absorbs a write
        #: (the only path that fills the FIFO) and wakes it.
        self.seq = NULL_SEQ_HANDLE

    @property
    def current_transaction(self) -> Optional[Transaction]:
        """The drain heading for the bus (the buffer's HBUSREQ payload)."""
        if self.state is DrainState.REQUEST:
            return self._txn
        return None

    @property
    def done(self) -> bool:
        return self.state is DrainState.IDLE and self.write_buffer.is_empty

    def _requesting(self) -> bool:
        return self.state is DrainState.REQUEST

    def _drives_address_now(self) -> bool:
        return (
            self.state is DrainState.REQUEST
            and bool(self._hgrant.value)
            and bool(self._bus_available.value)
        )

    # -- combinational ------------------------------------------------------------

    def evaluate(self) -> None:
        txn = self._txn
        self.sig.hbusreq.drive(self.state is DrainState.REQUEST)
        if self._drives_address_now():
            assert txn is not None
            self.sig.htrans.drive(int(HTrans.NONSEQ))
            self.sig.haddr.drive(txn.addr)
            self.sig.hwrite.drive(1)
            self.sig.hburst.drive(int(txn.burst))
            self.sig.hlen.drive(txn.beats)
            self.sig.hsize.drive(int(txn.hsize))
            # Drains never carry a fault plan (the buffer refuses writes
            # with unconsumed plans), so the sideband is always clean.
            self.sig.hfault.drive(0)
        else:
            self.sig.htrans.drive(int(HTrans.IDLE))
            self.sig.hfault.drive(0)
        if (
            self.state is DrainState.DATA
            and txn is not None
            and self._beat < txn.beats
        ):
            self.sig.hwdata.drive(txn.data[self._beat] if txn.data else 0)

    # -- sequential ------------------------------------------------------------------

    def update(self) -> None:
        now = self.engine.cycle
        state0 = self.state
        txn0 = self._txn
        beat0 = self._beat
        if self.state is DrainState.DATA:
            txn = self._txn
            assert txn is not None
            if (
                bool(self._hready.value)
                and self._stream_owner.value == self.index
            ):
                self._beat += 1
                if self._beat >= txn.beats:
                    txn.finished_at = now
                    if txn.origin is not None:
                        txn.origin.drained_at = now
                    self.drained_txns.append(txn)
                    self._txn = None
                    self.state = DrainState.IDLE
        elif self.state is DrainState.REQUEST:
            if self._drives_address_now():
                txn = self._txn
                assert txn is not None
                txn.granted_at = now
                txn.started_at = now
                # Pop as the transfer starts so later arbitration rounds
                # see the next FIFO entry (matches the TLM engines).
                self.write_buffer.pop_head(txn)
                self.state = DrainState.DATA
                self._beat = 0
        if self.state is DrainState.IDLE:
            head = self.write_buffer.head()
            if head is not None:
                self._txn = head
                self.state = DrainState.REQUEST
        if (
            self.state is not state0
            or self._txn is not txn0
            or self._beat != beat0
        ):
            self._eval.touch()
        # Quiescence mirror of MasterRtl: empty-idle sleeps until the
        # arbiter absorbs a write and wakes us; REQUEST/DATA sleep on
        # the same grant/beat conditions, re-armed by the builder's
        # wake-on signal edges.
        state = self.state
        if state is DrainState.IDLE:
            if self.write_buffer.is_empty:
                self.seq.idle()
        elif state is DrainState.REQUEST:
            if not (self._hgrant.value and self._bus_available.value):
                self.seq.idle()
        else:  # DATA
            if not (
                self._hready.value
                and self._stream_owner.value == self.index
            ):
                self.seq.idle()
