"""Pin-accurate AHB+ arbiter.

Runs the *same* seven-filter decision logic as the TLM arbiter
(:mod:`repro.core.filters` is shared), but evaluated the RTL way: the
candidate set is sampled from the HBUSREQ signals at every clock edge,
grants are registered outputs, and the request-pipelining lock is
triggered by the DDRC's remaining-beat signal instead of an analytic
``finish - lead`` computation.  Those sampling-point differences are
one of the deliberate abstraction gaps that give the TLM its small
cycle error against this reference.

Decision events:

* **Idle round** — no transfer in flight and no grant outstanding:
  choose a winner, register its HGRANT, absorb losing writes.
* **Pipelined lock** — a transfer is streaming and its remaining data
  beats have fallen to ``pipeline_lead + 1``: choose the *next* winner,
  register its HGRANT (it waits for ``bus_available``), absorb losing
  writes, and pulse the next-transaction info over the BI so the DDRC
  can open the target row early (bank interleaving).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.ahb.types import HTrans
from repro.core.arbiter import AhbPlusArbiter
from repro.core.config import AhbPlusConfig
from repro.core.filters import ArbitrationContext, Candidate
from repro.core.qos import QosRegisterFile
from repro.core.write_buffer import WriteBuffer
from repro.kernel.cycle import CycleEngine, NULL_SEQ_HANDLE
from repro.rtl.master import MasterRtl, MasterState
from repro.rtl.signals import BiSignals, MasterSignals, SharedBusSignals
from repro.rtl.write_buffer import BufferMasterRtl


class ArbiterRtl:
    """The AHB+ arbiter at signal level."""

    def __init__(
        self,
        masters: Sequence[MasterRtl],
        buffer_master: BufferMasterRtl,
        write_buffer: WriteBuffer,
        qos: QosRegisterFile,
        config: AhbPlusConfig,
        bus: SharedBusSignals,
        bi: BiSignals,
        engine: CycleEngine,
        ddrc_score=None,
    ) -> None:
        self.masters = list(masters)
        self.buffer_master = buffer_master
        self.write_buffer = write_buffer
        self.qos = qos
        self.config = config
        self.bus = bus
        self.bi = bi
        self.engine = engine
        #: ``addr -> score`` oracle from the DDRC (None when BI is off).
        self._ddrc_score = ddrc_score if config.bus_interface_enabled else None
        self.decision = AhbPlusArbiter(
            tie_break=config.tie_break, num_masters=config.num_masters
        )
        for name in config.disabled_filters:
            self.decision.set_filter_enabled(name, False)
        self._idle_grantee: Optional[int] = None  # owner index awaiting start
        self._locked_next = True  # no lock allowed until a transfer begins
        #: Quiescence handle, bound by the platform builder.  The
        #: arbiter sleeps only when the bus is silent and no request is
        #: in hand; a rising HBUSREQ (the builder's wake list) re-arms
        #: it in the same cycle the reference arbiter would first see
        #: the candidate.
        self.seq = NULL_SEQ_HANDLE
        self.grants_issued = 0
        self.pipelined_grants = 0
        self.bi_next_info = 0
        # Reused across rounds; _ctx() refreshes every varying field.
        self._ctx_cache = ArbitrationContext(
            now=0,
            access_score=self._ddrc_score,
            urgency_margin=config.urgency_margin,
            starvation_limit=config.starvation_limit,
        )

    # -- candidate assembly ------------------------------------------------------

    def _candidates(self) -> List[Candidate]:
        candidates: List[Candidate] = []
        for master in self.masters:
            txn = master.current_transaction
            if txn is None:
                continue
            # Skip a master whose address phase is on the bus this cycle;
            # its request is being consumed, not awaiting arbitration.
            if master.sig.htrans.value == int(HTrans.NONSEQ):
                continue
            candidates.append(
                Candidate(
                    txn=txn,
                    from_write_buffer=False,
                    real_time=self.qos.is_real_time(master.index),
                    deadline=self.qos.deadline_for(txn),
                )
            )
        head = self.buffer_master.current_transaction
        if head is not None and self.buffer_master.sig.htrans.value != int(
            HTrans.NONSEQ
        ):
            candidates.append(Candidate(txn=head, from_write_buffer=True))
        return candidates

    def _ctx(self, now: int, candidates: Sequence[Candidate]) -> ArbitrationContext:
        buffer = self.write_buffer
        ctx = self._ctx_cache
        ctx.now = now
        ctx.write_buffer_occupancy = buffer.occupancy
        ctx.write_buffer_depth = buffer.depth if buffer.enabled else 0
        ctx.read_hazard = buffer.read_hazard(candidates)
        return ctx

    # -- grant plumbing ---------------------------------------------------------------

    def _owner_index(self, cand: Candidate) -> int:
        if cand.from_write_buffer:
            return self.buffer_master.index
        return cand.txn.master

    def _drive_grants(self, winner_index: Optional[int]) -> None:
        # Lazy drives: all but the winner (and the previous winner) are
        # re-registering an unchanged 0 — eliding those no-op commits.
        for master in self.masters:
            master.sig.hgrant.drive_next_lazy(master.index == winner_index)
        self.buffer_master.sig.hgrant.drive_next_lazy(
            winner_index == self.buffer_master.index
        )

    def _absorb_losers(
        self, candidates: Sequence[Candidate], winner: Candidate, cycle: int
    ) -> None:
        for cand in candidates:
            if cand is winner or cand.from_write_buffer:
                continue
            txn = cand.txn
            if self.write_buffer.can_absorb(txn):
                self.write_buffer.absorb(txn, cycle)
                self.masters[txn.master].absorb_current(cycle)
                self.qos.record_completion(txn)
                # The drain engine updates after the arbiter in the same
                # cycle, so it sees the new head immediately (reference
                # ordering preserved).
                self.buffer_master.seq.wake()

    # -- sequential phase ----------------------------------------------------------------

    def update(self) -> None:
        """Arbitrate at the end of the current cycle."""
        now = self.engine.cycle
        self.bi.next_valid.drive_next_lazy(0)  # clears last cycle's pulse
        # A NONSEQ on the shared bus means the outstanding grant was
        # consumed this cycle: a new transfer begins.
        if self.bus.htrans.value == int(HTrans.NONSEQ):
            self._idle_grantee = None
            self._locked_next = False  # one pipelined lock per transfer
            self._drive_grants(None)
        busy = bool(self.bus.ddr_busy.value)
        if not busy:
            self._idle_round(now)
        else:
            self._pipeline_round(now)
        # Quiescence self-assessment.  Idle bus: with no transfer in
        # flight or starting, no outstanding grant and no request in
        # hand anywhere, update() cannot do anything until a master's
        # HBUSREQ rises — which wakes the handle through the builder's
        # wake-on list at exactly the cycle the request becomes visible.
        # Busy bus: once the pipelined lock is taken (or pipelining is
        # off) the arbiter has nothing to decide until the transfer ends
        # (ddr_busy edge) or a new address phase needs its bookkeeping
        # (htrans edge) — both on the wake-on list.
        if self.bus.htrans.value != int(HTrans.NONSEQ):
            if busy:
                if self._locked_next or not self.config.request_pipelining:
                    self.seq.idle()
            elif self._idle_grantee is None and not self._any_request():
                self.seq.idle()

    def _any_request(self) -> bool:
        for master in self.masters:
            if master.current_transaction is not None:
                return True
        return self.buffer_master.current_transaction is not None

    def _idle_round(self, now: int) -> None:
        if self._idle_grantee is not None:
            return  # winner already chosen; it is waiting for the bus
        candidates = self._candidates()
        if not candidates:
            return
        winner = self.decision.choose(candidates, self._ctx(now, candidates))
        self._absorb_losers(candidates, winner, now)
        owner = self._owner_index(winner)
        self._idle_grantee = owner
        self._drive_grants(owner)
        self.grants_issued += 1
        self._locked_next = True  # no pipelining until this transfer starts

    def _pipeline_round(self, now: int) -> None:
        if not self.config.request_pipelining or self._locked_next:
            return
        remaining = self.bus.ddr_remaining.value
        if remaining == 0:
            return
        lead_gap = remaining - (self.config.pipeline_lead + 1)
        if lead_gap > 0:
            # The lock window opens when the remaining-beat countdown
            # reaches pipeline_lead + 1.  It moves at most one beat per
            # cycle, so the window cannot open before now + lead_gap:
            # sleep until then instead of polling every streaming cycle.
            # A slave draining slower than one beat per cycle just lands
            # the wake early — the re-computed gap re-arms the sleep —
            # and every input edge that could matter sooner (a new
            # HBUSREQ, the transfer ending) is on the wake-on list.
            self.seq.idle(until=now + lead_gap)
            return
        candidates = self._candidates()
        if not candidates:
            return
        winner = self.decision.choose(candidates, self._ctx(now, candidates))
        self._absorb_losers(candidates, winner, now)
        owner = self._owner_index(winner)
        self._drive_grants(owner)
        self._locked_next = True
        self.grants_issued += 1
        self.pipelined_grants += 1
        # Pulse the next-transaction info over the Bus Interface.
        if self.config.bus_interface_enabled:
            txn = winner.txn
            self.bi.next_valid.drive_next(1)
            self.bi.next_addr.drive_next(txn.addr)
            self.bi.next_write.drive_next(txn.is_write)
            self.bi.next_len.drive_next(txn.beats)
            self.bi.next_wrap.drive_next(txn.wrapping)
            self.bi.next_size.drive_next(int(txn.hsize))
            self.bi_next_info += 1
