"""Pin-accurate DDR controller.

Paper §3.3: *"To increase the cycle accuracy, we modeled the FSM as
accurate as register transfer level."*  This component is that FSM: the
per-bank :class:`~repro.ddr.bank.BankFsm` machines tick every clock,
one DDR command issues per cycle through the
:class:`~repro.ddr.scheduler.CommandScheduler` (column > row >
precharge priority), refresh interjects on its tREFI deadline, and data
beats move one per cycle through the HRDATA/HWDATA signals.

In the default *streamed* mode the per-cycle beat movement is batched
at segment granularity: read data is prefetched in one
:meth:`~repro.ddr.memory.MemoryModel.read_beats` call at CAS, write
data is captured per cycle and flushed in one ``write_beats`` call at
the segment's last beat, and write recovery is armed analytically —
observable signal values, ``data_beats`` counting and BI preparation
matching stay bit-identical to the per-beat reference
(``streaming=False``, which ``full_sweep`` platforms select for the
trace-equality tests).

The controller also terminates the AHB+ Bus Interface: prepared
next-transaction info arrives over the ``BI_*`` signals and is enqueued
so the scheduler can open the target row while the current burst still
streams (bank interleaving), and the idle-bank map is exported back to
the arbiter's bank filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.ahb.burst import beat_addresses
from repro.ahb.types import HBurst, HTrans
from repro.ddr.bank import BankFsm, BankState
from repro.ddr.commands import BankAddress, DdrCommand, decode_address
from repro.ddr.memory import MemoryModel
from repro.ddr.scheduler import CommandScheduler, PendingAccess, ScheduledCommand
from repro.ddr.timing import DdrTiming
from repro.errors import SimulationError
from repro.kernel.cycle import CycleEngine, NULL_SEQ_HANDLE
from repro.rtl.signals import (
    BiSignals,
    NO_OWNER,
    SharedBusSignals,
    SlaveResponseSignals,
)

#: Hoisted HTrans.NONSEQ encoding (enum attribute lookups cost on the
#: per-cycle guards; grep-friendly single definition).
_NONSEQ = int(HTrans.NONSEQ)

_UID = 0


def _next_uid() -> int:
    global _UID
    _UID += 1
    return _UID


@dataclass(eq=False)
class RtlSegment(PendingAccess):
    """A scheduler segment that knows its parent access."""

    access: Optional["RtlAccess"] = None
    addrs: List[int] = field(default_factory=list)


@dataclass(eq=False)
class RtlAccess:
    """One burst access as the controller tracks it."""

    addr: int
    is_write: bool
    beats: int
    size_bytes: int
    wrapping: bool
    owner: int = NO_OWNER
    bus_started: bool = False
    prepared: bool = False
    segments: List[RtlSegment] = field(default_factory=list)
    segments_done: int = 0

    def matches(self, addr: int, is_write: bool, beats: int) -> bool:
        return self.addr == addr and self.is_write == is_write and self.beats == beats

    @property
    def complete(self) -> bool:
        return self.segments_done >= len(self.segments)


@dataclass
class _Stream:
    """Data-beat streaming state for one segment.

    In streamed mode the memory traffic is batched at the segment
    boundaries: ``rdata`` holds the whole segment's read data prefetched
    at CAS time (the burst owns the data path, so memory cannot change
    under it) and ``wdata`` accumulates the per-cycle HWDATA values for
    one bulk write when the segment's last beat lands.  Per-cycle work
    shrinks to signal driving and counter bumps.
    """

    access: RtlAccess
    segment: RtlSegment
    data_start: int
    beats_done: int = 0
    rdata: Optional[List[int]] = None
    wdata: Optional[List[int]] = None

    @property
    def length(self) -> int:
        return len(self.segment.addrs)

    @property
    def is_last_segment(self) -> bool:
        return self.access.segments_done == len(self.access.segments) - 1


class DdrcRtl:
    """The AHB+ DDR controller at signal level."""

    #: Documented exceptions to the NET-* contract rules (see
    #: :mod:`repro.lint.netlist_rules`).  Each entry is a signal name
    #: with the reason the finding is acceptable as modelled.
    LINT_WAIVERS = {
        "NET-WAKE": {
            "hwdata": (
                "write data is sampled mid-burst only; the FSM never "
                "idles between accepted address phase and final beat, so "
                "a missed hwdata edge cannot occur while asleep"
            ),
        },
        "NET-DEAD": {
            "idle_banks": (
                "modelled bank-interleaving status output; the arbiter "
                "consults the python access_score oracle instead of the "
                "pin, the pin exists for waveform/debug parity"
            ),
            "refresh_busy": (
                "modelled refresh status output, exposed for "
                "waveform/debug parity; no RTL consumer by design"
            ),
        },
    }

    def __init__(
        self,
        bus: SharedBusSignals,
        bi: BiSignals,
        engine: CycleEngine,
        timing: DdrTiming,
        bus_bytes: int = 4,
        memory: Optional[MemoryModel] = None,
        refresh_enabled: bool = True,
        out: Optional[SlaveResponseSignals] = None,
        accepts: Optional[Callable[[int], bool]] = None,
        streaming: bool = True,
    ) -> None:
        """``out``/``accepts`` adapt the controller to a multi-slave fabric.

        On the paper's single-slave platform both stay ``None``: the
        controller drives the shared bus response signals directly and
        claims every address phase, exactly the original behaviour.  On
        a multi-slave platform ``out`` is the controller's private
        response bundle (combined onto the bus by the response mux) and
        ``accepts`` is the address-decoder predicate for its region —
        address phases and BI announcements outside it are ignored.

        ``streaming`` selects batched beat processing (memory touched
        once per segment, write recovery armed analytically at CAS);
        ``False`` keeps the reference per-beat path, which the
        trace-equality tests run against the streamed default.
        """
        self.bus = bus
        self.bi = bi
        self.out: Union[SharedBusSignals, SlaveResponseSignals] = (
            out if out is not None else bus
        )
        # Direct references to the per-cycle hot inputs (one attribute
        # hop instead of two on the paths update() walks every cycle).
        self._bus_htrans = bus.htrans
        self._bi_next_valid = bi.next_valid
        self.accepts = accepts
        self.engine = engine
        self.timing = timing
        self.bus_bytes = bus_bytes
        self.memory = memory if memory is not None else MemoryModel("ddrc.mem")
        self.refresh_enabled = refresh_enabled
        self.streaming = streaming
        self.banks = [BankFsm(i, timing) for i in range(timing.num_banks)]
        self.scheduler = CommandScheduler(timing, self.banks)
        self.queue: List[RtlAccess] = []
        self._stream: Optional[_Stream] = None
        # Latched fault response (HFAULT sideband): fired over the
        # response channel on the first cycle the data path is free —
        # a pipelined address phase can overlap the previous transfer's
        # final beat, and the response must not collide with it.
        self._fault_resp = 0
        self._fault_owner = NO_OWNER
        self._fault_clear = False
        self._refresh_counter = timing.t_refi
        self._refresh_pending = False
        #: Quiescence handle, bound by the platform builder; the refresh
        #: countdown is delta-accounted so skipped idle cycles are
        #: charged in one subtraction on wake.
        self.seq = NULL_SEQ_HANDLE
        self._last_update_cycle = -1
        #: Ticks deferred over lean streaming cycles, settled via
        #: ``scheduler.skip`` before the next live decide (see
        #: :meth:`update`).
        self._tick_debt = 0
        #: Cached :meth:`_queue_parked` verdict.  Valid only while no
        #: queue mutation or scheduler run has happened since it was
        #: taken (every such site clears the flag); bank states are
        #: frozen over that window because ticks are deferred and
        #: commands only issue through :meth:`_run_scheduler`.
        self._parked_cache = False
        self._parked_valid = False
        #: Accesses whose address phase has been taken (drives the
        #: bus_available/ddr_busy outputs without a per-cycle queue scan).
        self._bus_started = 0
        #: Cached idle-bank map; recomputed only while bank states can
        #: still move (a command issued, or a transition in flight).
        self._idle_map = (1 << timing.num_banks) - 1
        self._bank_activity = True
        # Statistics (mirror the TLM controller's counters).
        self.reads = 0
        self.writes = 0
        self.refreshes = 0
        self.data_beats = 0
        self.prepared_banks = 0
        #: Bursts split into several bank/row segments (BI-split stats).
        self.split_bursts = 0

    # -- BI status for the arbiter's bank filter -------------------------------

    def access_score(self, addr: int) -> int:
        """0 row hit / 1 bank idle / 2 row conflict for the bank filter."""
        baddr = decode_address(addr, self.timing, self.bus_bytes)
        bank = self.banks[baddr.bank]
        if bank.is_row_hit(baddr.row):
            return 0
        if bank.state is BankState.IDLE:
            return 1
        return 2

    # -- access construction ------------------------------------------------------

    def _build_access(
        self, addr: int, is_write: bool, beats: int, size_bytes: int, wrapping: bool
    ) -> RtlAccess:
        access = RtlAccess(
            addr=addr,
            is_write=is_write,
            beats=beats,
            size_bytes=size_bytes,
            wrapping=wrapping,
        )
        addrs = beat_addresses(addr, beats, size_bytes, wrapping)
        current: Optional[Tuple[BankAddress, List[int]]] = None
        groups: List[Tuple[BankAddress, List[int]]] = []
        for beat_addr in addrs:
            baddr = decode_address(beat_addr, self.timing, self.bus_bytes)
            if (
                current is not None
                and current[0].bank == baddr.bank
                and current[0].row == baddr.row
            ):
                current[1].append(beat_addr)
            else:
                current = (baddr, [beat_addr])
                groups.append(current)
        if len(groups) > 1:
            self.split_bursts += 1
        for baddr, group_addrs in groups:
            segment = RtlSegment(
                baddr=baddr,
                is_write=is_write,
                beats=len(group_addrs),
                uid=_next_uid(),
                access=access,
                addrs=group_addrs,
            )
            access.segments.append(segment)
            self.scheduler.enqueue(segment)
        self.queue.append(access)
        self._parked_valid = False
        return access

    def _drop_stale_prepared(self) -> None:
        """Remove prepared accesses that never became bus transfers."""
        self._parked_valid = False
        stale = [a for a in self.queue if a.prepared and not a.bus_started]
        for access in stale:
            for segment in access.segments:
                if segment in self.scheduler.queue:
                    self.scheduler.queue.remove(segment)
            self.queue.remove(access)

    # -- sequential phase ----------------------------------------------------------

    def update(self) -> None:
        now = self.engine.cycle
        # Idle cycles the quiescence machinery skipped are charged to
        # the refresh countdown in one go — the only per-cycle state a
        # quiescent controller evolves.
        delta = now - self._last_update_cycle
        self._last_update_cycle = now
        if self._stream is not None:
            self._process_beat(now)
        # BI info is consumed before the address phase so a next-info
        # pulse and its own address phase landing in the same cycle pair
        # up instead of creating a stale duplicate.  (The guards mirror
        # the helpers' own first-line early exits; hoisting them elides
        # the calls on the hot per-cycle path.)
        if self._bi_next_valid.value:
            self._accept_bi_next(now)
        if self._bus_htrans.value == _NONSEQ:
            self._accept_address_phase(now)
        # Refresh tick, inlined from the former _tick_refresh (once per
        # cycle on the hottest sequential path).
        if self.refresh_enabled:
            self._refresh_counter -= delta
            if self._refresh_counter <= 0:
                self._refresh_pending = True
        stream = self._stream
        lean = (
            self.streaming
            and stream is not None
            and not self._bank_activity
            and self._parked_now()
        )
        if lean:
            # Lean streaming beat: decide() is provably a NOP — refresh
            # cannot force mid-stream, CAS is blocked by the busy data
            # path, and every queued segment is either the one streaming
            # (CAS issued) or parked on its already-open row, so the
            # ACT/PRE candidate scans find nothing.  With no bank
            # transition in flight tick() only drains saturating
            # tRAS/tWR/tRRD counters (streamed mode arms write recovery
            # analytically at CAS, so no per-beat re-arm interleaves
            # with the deferred ticks).  Defer the tick; the debt
            # settles in one scheduler.skip before the next cycle that
            # can actually issue a command.  *delta* (not 1): cycles
            # slept through a CAS-latency window owe their ticks too.
            self._tick_debt += delta
            if (
                not self._fault_resp
                and not self._fault_clear
                and now + 1 > stream.data_start
            ):
                # Steady mid-stream beat: every handshake output is
                # already at its streaming value.
                self._drive_outputs_lean(stream)
                self._assess_quiescence(now)
                return
        else:
            # Ticks owed: the deferred debt plus any cycles slept since
            # the last update (minus this cycle's own live tick below).
            # The fully-idle sleep contributes only no-op ticks here —
            # its entry condition proved every timer drained.
            debt = self._tick_debt + delta - 1
            if debt:
                self.scheduler.skip(debt)
                self._tick_debt = 0
            # Banks tick before the scheduler decides, so a transition
            # that completes this cycle can be followed by its dependent
            # command immediately — keeping PRE→ACT→CAS spacing at
            # exactly tRP/tRCD, the same arithmetic the TLM timeline
            # uses.
            self.scheduler.tick()
            self._run_scheduler(now)
        self._drive_outputs(now)
        self._assess_quiescence(now)

    # -- step 1: move this cycle's data beat -----------------------------------------

    def _process_beat(self, now: int) -> None:
        stream = self._stream
        if stream is None or now < stream.data_start:
            return
        if stream.beats_done >= stream.length:
            return
        if self.streaming:
            # Batched path: capture write data (memory flushed in bulk
            # at the segment's last beat; reads were prefetched at CAS).
            if stream.wdata is not None:
                stream.wdata.append(self.bus.hwdata.value)
            self.data_beats += 1
            stream.beats_done += 1
            if stream.beats_done >= stream.length:
                if stream.wdata is not None:
                    self.memory.write_beats(
                        stream.segment.addrs,
                        stream.access.size_bytes,
                        stream.wdata,
                    )
                self._finish_segment(stream)
            return
        beat_addr = stream.segment.addrs[stream.beats_done]
        if stream.access.is_write:
            self.memory.write(
                beat_addr, stream.access.size_bytes, self.bus.hwdata.value
            )
            # Write recovery re-arms from every data beat.
            self.banks[stream.segment.baddr.bank].note_write_beat()
        self.data_beats += 1
        stream.beats_done += 1
        if stream.beats_done >= stream.length:
            self._finish_segment(stream)

    def _finish_segment(self, stream: _Stream) -> None:
        """Retire the streamed segment and close out a finished access."""
        retired = self.scheduler.retire_head()
        if retired is not stream.segment:
            raise SimulationError("DDRC retired an unexpected segment")
        self._parked_valid = False
        stream.access.segments_done += 1
        if stream.access.complete:
            if stream.access.is_write:
                self.writes += 1
            else:
                self.reads += 1
            self.queue.remove(stream.access)
            self._bus_started -= 1
        self._stream = None

    # -- step 2: accept a new address phase --------------------------------------------

    def _accept_address_phase(self, now: int) -> None:
        if self.bus.htrans.value != _NONSEQ:
            return
        addr = self.bus.haddr.value
        if self.accepts is not None and not self.accepts(addr):
            return
        is_write = bool(self.bus.hwrite.value)
        beats = self.bus.hlen.value
        size_bytes = 1 << self.bus.hsize.value
        burst = HBurst(self.bus.hburst.value)
        owner = self.bus.addr_owner.value
        fault = self.bus.hfault.value
        if fault:
            # Seeded fault injection: answer with ERROR/RETRY instead of
            # accepting the burst.  A BI announcement may already have
            # prepared this access (bank opened early) — drop it, or the
            # controller never drains.
            for access in self.queue:
                if access.prepared and not access.bus_started and access.matches(
                    addr, is_write, beats
                ):
                    for segment in access.segments:
                        if segment in self.scheduler.queue:
                            self.scheduler.queue.remove(segment)
                    self.queue.remove(access)
                    self._parked_valid = False
                    break
            if self._fault_resp:
                raise SimulationError(
                    "DDRC: address phase faulted while a fault response "
                    "is still pending"
                )
            self._fault_resp = fault
            self._fault_owner = owner
            return
        for access in self.queue:
            if access.prepared and not access.bus_started and access.matches(
                addr, is_write, beats
            ):
                access.bus_started = True
                access.owner = owner
                self._bus_started += 1
                return
        # No matching preparation (BI off, or idle-path grant): drop any
        # stale preparation and enqueue fresh.
        self._drop_stale_prepared()
        access = self._build_access(
            addr, is_write, beats, size_bytes, burst.is_wrapping
        )
        access.bus_started = True
        access.owner = owner
        self._bus_started += 1

    # -- step 3: consume BI next-transaction info ----------------------------------------

    def _accept_bi_next(self, now: int) -> None:
        if not self.bi.next_valid.value:
            return
        addr = self.bi.next_addr.value
        if self.accepts is not None and not self.accepts(addr):
            return
        is_write = bool(self.bi.next_write.value)
        beats = self.bi.next_len.value
        size_bytes = 1 << self.bi.next_size.value
        wrapping = bool(self.bi.next_wrap.value)
        # Ignore duplicate announcements: either a pending preparation or
        # an access whose address phase already arrived (late next-info).
        for access in self.queue:
            if access.matches(addr, is_write, beats):
                return
        access = self._build_access(addr, is_write, beats, size_bytes, wrapping)
        access.prepared = True
        self.prepared_banks += 1

    # -- step 4: one DDR command per cycle ----------------------------------------------------

    def _queue_parked(self) -> bool:
        """Every queued segment is served or waiting only on the data path.

        True when each segment either has its CAS issued (the streaming
        head) or sits on a bank that is steadily ACTIVE with the
        segment's own row open — rows prepared, nothing for the
        scheduler to do until the data path frees up.  Callers pair this
        with ``not _bank_activity`` (no transition in flight), which
        also freezes every bank state the predicate just read.
        """
        banks = self.banks
        for segment in self.scheduler.queue:
            if segment.cas_issued:
                continue
            bank = banks[segment.baddr.bank]
            if bank.state is not BankState.ACTIVE or bank.open_row != segment.baddr.row:
                return False
        return True

    def _parked_now(self) -> bool:
        """:meth:`_queue_parked` through the validity cache."""
        if not self._parked_valid:
            self._parked_cache = self._queue_parked()
            self._parked_valid = True
        return self._parked_cache

    def _head_cas_allowed(self) -> bool:
        """CAS may issue only for a bus-started head with a free data path."""
        if self._stream is not None:
            return False
        if not self.scheduler.queue:
            return False
        head = self.scheduler.queue[0]
        assert isinstance(head, RtlSegment) and head.access is not None
        return head.access.bus_started

    def _run_scheduler(self, now: int) -> None:
        # Bank states just ticked and a command may issue below.
        self._parked_valid = False
        refresh_forced = (
            self._refresh_pending
            and self._stream is None
            and self.refresh_enabled
        )
        decision = self.scheduler.decide(
            refresh_forced=refresh_forced,
            data_path_free=self._head_cas_allowed(),
            busy_bank=(
                self._stream.segment.baddr.bank if self._stream is not None else None
            ),
        )
        if decision.command in (DdrCommand.READ, DdrCommand.WRITE):
            segment = decision.access
            assert isinstance(segment, RtlSegment) and segment.access is not None
            latency = (
                self.timing.write_latency
                if segment.is_write
                else self.timing.cas_latency
            )
            # The command occupies the next cycle; data follows latency.
            stream = _Stream(
                access=segment.access,
                segment=segment,
                data_start=now + 1 + latency,
            )
            if self.streaming:
                if segment.is_write:
                    stream.wdata = []
                    # Per-beat tWR re-arming collapsed to one load: the
                    # timer drains to exactly the per-beat value by the
                    # segment's last data beat (t_wr - 1 after its tick;
                    # shorter loads clamp at zero the same way).
                    self.banks[segment.baddr.bank].arm_write_recovery(
                        self.timing.t_wr + latency + segment.beats - 1
                    )
                else:
                    # The burst owns the data path until it completes,
                    # so the whole segment's read data is fetch-stable.
                    stream.rdata = self.memory.read_beats(
                        segment.addrs, segment.access.size_bytes
                    )
            self._stream = stream
        elif decision.command is DdrCommand.REFRESH:
            self._refresh_pending = False
            self._refresh_counter += self.timing.t_refi
            self.refreshes += 1
        if decision.command is not DdrCommand.NOP:
            # Bank states may move: re-derive the idle map until every
            # transitional state has resolved.
            self._bank_activity = True

    # -- step 6: registered outputs for the next cycle ------------------------------------------

    def _beat_next_cycle(self) -> bool:
        stream = self._stream
        return (
            stream is not None
            and self.engine.cycle + 1 >= stream.data_start
            and stream.beats_done < stream.length
        )

    def _drive_outputs_lean(self, stream: _Stream) -> None:
        """Registered outputs for a steady mid-stream beat.

        The caller guarantees the stream survived this cycle's beat,
        its data phase started on an *earlier* cycle (so HREADY, the
        stream owner, HRESP and ddr_busy already hold their streaming
        values), no fault response is latched or clearing, and no bank
        transition is in flight (idle map frozen).  Only the read-data
        bus, the final-segment countdown with its bus_available flip,
        and the refresh-pending flag can move — every other drive in
        :meth:`_drive_outputs` would compare equal, pinned by the VCD
        equality suite against the full driver.
        """
        access = stream.access
        out = self.out
        if not access.is_write:
            rdata = stream.rdata
            out.hrdata.drive_next_lazy(
                rdata[stream.beats_done]
                if rdata is not None
                else self.memory.read(
                    stream.segment.addrs[stream.beats_done],
                    access.size_bytes,
                )
            )
        if stream.is_last_segment:
            remaining = stream.length - stream.beats_done
            if out.ddr_remaining.value != remaining:
                out.ddr_remaining.drive_next(remaining)
            started = self._bus_started
            available = (
                1 if started == 0 or (started == 1 and remaining == 1) else 0
            )
            if out.bus_available.value != available:
                out.bus_available.drive_next(available)
        bi = self.bi
        refresh_busy = 1 if self._refresh_pending else 0
        if bi.refresh_busy.value != refresh_busy:
            bi.refresh_busy.drive_next(refresh_busy)

    def _drive_outputs(self, now: int) -> None:
        """Register next-cycle outputs.

        All drives are lazy (:meth:`~repro.kernel.signal.Signal.
        drive_next_lazy`): the FSM re-derives mostly-stable values every
        cycle, and eliding the equal-value commits removes most of the
        model's registered-drive traffic.  Values are identical to the
        reference per-beat model — pinned by the VCD equality tests.
        """
        out = self.out  # shared bus (single slave) or private response bundle
        stream = self._stream
        nxt = now + 1
        final_beat_next = False
        hready = 0
        owner = NO_OWNER
        remaining = 0
        if stream is not None:
            # _process_beat ran first, so a surviving stream always has
            # beats left; only the data-phase start gates the beat.
            if nxt >= stream.data_start:
                hready = 1
                owner = stream.access.owner
                if not stream.access.is_write:
                    rdata = stream.rdata
                    out.hrdata.drive_next_lazy(
                        rdata[stream.beats_done]
                        if rdata is not None
                        else self.memory.read(
                            stream.segment.addrs[stream.beats_done],
                            stream.access.size_bytes,
                        )
                    )
                if stream.is_last_segment:
                    remaining = stream.length - stream.beats_done
                    final_beat_next = remaining == 1
            # Data phase not entered yet: hready/owner/remaining keep
            # their idle values this cycle.
        # Fire the latched fault response on the first free-data-path
        # cycle (a deferred fire only happens under pipelined overlap,
        # where the previous transfer's final beat owns the response
        # channel one more cycle).
        hresp = 0
        if self._fault_resp and not hready:
            hready = 1
            owner = self._fault_owner
            hresp = self._fault_resp
            self._fault_resp = 0
            self._fault_owner = NO_OWNER
            self._fault_clear = True
        elif self._fault_clear:
            self._fault_clear = False
        # Hand-inlined lazy drives: these outputs re-derive mostly
        # stable values every single cycle, so the compare happens here
        # and drive_next only runs on an actual change.
        if out.hresp.value != hresp:
            out.hresp.drive_next(hresp)
        if out.hready.value != hready:
            out.hready.drive_next(hready)
        if out.stream_owner.value != owner:
            out.stream_owner.drive_next(owner)
        if out.ddr_remaining.value != remaining:
            out.ddr_remaining.drive_next(remaining)
        started = self._bus_started
        available = 1 if started == 0 or (started == 1 and final_beat_next) else 0
        if self._fault_resp:
            # Response still owed: hold new address phases off the bus
            # (the single response latch must fire before another phase
            # can fault).
            available = 0
        if out.bus_available.value != available:
            out.bus_available.drive_next(available)
        busy = 1 if started else 0
        if out.ddr_busy.value != busy:
            out.ddr_busy.drive_next(busy)
        bi = self.bi
        refresh_busy = 1 if self._refresh_pending else 0
        if bi.refresh_busy.value != refresh_busy:
            bi.refresh_busy.drive_next(refresh_busy)
        if self._bank_activity:
            idle_map = 0
            activity = False
            for bank in self.banks:
                state = bank.state
                if state is BankState.IDLE:
                    idle_map |= 1 << bank.index
                elif state is not BankState.ACTIVE:
                    activity = True  # transitional: next tick may move it
            self._idle_map = idle_map
            self._bank_activity = activity
        if bi.idle_banks.value != self._idle_map:
            bi.idle_banks.drive_next(self._idle_map)

    # -- quiescence --------------------------------------------------------------------------------

    def _assess_quiescence(self, now: int) -> None:
        """Declare the controller idle when its update is a proven no-op.

        Requires: nothing queued or streaming, no refresh owed, every
        bank/scheduler timer drained (so ``tick`` is a no-op), and no
        input this very cycle — an address phase on the bus or a BI
        pulse keeps the controller awake one more cycle, which also
        covers back-to-back NONSEQ phases that produce no ``htrans``
        edge for the wake watcher.  While idle only the refresh
        countdown advances, so the handle self-wakes at the deadline
        and the skipped cycles are delta-accounted in :meth:`update`.
        """
        if (
            self._stream is None
            and not self.queue
            and not self._fault_resp
            and not self._fault_clear
            and not self._refresh_pending
            and not self._bi_next_valid.value
            and self._bus_htrans.value != _NONSEQ
            and self.scheduler.quiescent()
        ):
            self.seq.idle(
                until=now + self._refresh_counter
                if self.refresh_enabled
                else None
            )
            return
        # CAS-latency window: the command has issued but its first data
        # beat is still >1 cycle out.  With the queue parked and no bank
        # transition in flight, every intervening update is the lean
        # no-op above (ticks deferred, outputs steady), so sleep through
        # the window and wake at data_start - 1 — the cycle that must
        # drive HREADY for the first beat.  The refresh countdown is the
        # one clock that could move an output mid-window: its crossing
        # cycle is exact (the counter drops 1 per cycle), so wake there
        # instead if it comes first.  An address phase or BI pulse wakes
        # the handle through the builder's wake-on list.
        stream = self._stream
        if (
            self.streaming
            and stream is not None
            and now + 2 < stream.data_start
            and not self._bank_activity
            and not self._fault_resp
            and not self._fault_clear
            and not self._bi_next_valid.value
            and self._bus_htrans.value != _NONSEQ
            and self._parked_now()
        ):
            wake = stream.data_start - 1
            if self.refresh_enabled and not self._refresh_pending:
                crossing = now + self._refresh_counter
                if crossing < wake:
                    wake = crossing
            self.seq.idle(until=wake)

    # -- status ------------------------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No queued or streaming work (nor a fault response in flight)."""
        return (
            not self.queue
            and self._stream is None
            and not self._fault_resp
            and not self._fault_clear
        )
