"""Pin-accurate DDR controller.

Paper §3.3: *"To increase the cycle accuracy, we modeled the FSM as
accurate as register transfer level."*  This component is that FSM: the
per-bank :class:`~repro.ddr.bank.BankFsm` machines tick every clock,
one DDR command issues per cycle through the
:class:`~repro.ddr.scheduler.CommandScheduler` (column > row >
precharge priority), refresh interjects on its tREFI deadline, and data
beats move one per cycle through the HRDATA/HWDATA signals.

The controller also terminates the AHB+ Bus Interface: prepared
next-transaction info arrives over the ``BI_*`` signals and is enqueued
so the scheduler can open the target row while the current burst still
streams (bank interleaving), and the idle-bank map is exported back to
the arbiter's bank filter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple, Union

from repro.ahb.burst import beat_addresses
from repro.ahb.types import HBurst
from repro.ddr.bank import BankFsm, BankState
from repro.ddr.commands import BankAddress, DdrCommand, decode_address
from repro.ddr.memory import MemoryModel
from repro.ddr.scheduler import CommandScheduler, PendingAccess, ScheduledCommand
from repro.ddr.timing import DdrTiming
from repro.errors import SimulationError
from repro.kernel.cycle import CycleEngine
from repro.rtl.signals import (
    BiSignals,
    NO_OWNER,
    SharedBusSignals,
    SlaveResponseSignals,
)

_UID = 0


def _next_uid() -> int:
    global _UID
    _UID += 1
    return _UID


@dataclass(eq=False)
class RtlSegment(PendingAccess):
    """A scheduler segment that knows its parent access."""

    access: Optional["RtlAccess"] = None
    addrs: List[int] = field(default_factory=list)


@dataclass(eq=False)
class RtlAccess:
    """One burst access as the controller tracks it."""

    addr: int
    is_write: bool
    beats: int
    size_bytes: int
    wrapping: bool
    owner: int = NO_OWNER
    bus_started: bool = False
    prepared: bool = False
    segments: List[RtlSegment] = field(default_factory=list)
    segments_done: int = 0

    def matches(self, addr: int, is_write: bool, beats: int) -> bool:
        return self.addr == addr and self.is_write == is_write and self.beats == beats

    @property
    def complete(self) -> bool:
        return self.segments_done >= len(self.segments)


@dataclass
class _Stream:
    """Data-beat streaming state for one segment."""

    access: RtlAccess
    segment: RtlSegment
    data_start: int
    beats_done: int = 0

    @property
    def length(self) -> int:
        return len(self.segment.addrs)

    @property
    def is_last_segment(self) -> bool:
        return self.access.segments_done == len(self.access.segments) - 1


class DdrcRtl:
    """The AHB+ DDR controller at signal level."""

    def __init__(
        self,
        bus: SharedBusSignals,
        bi: BiSignals,
        engine: CycleEngine,
        timing: DdrTiming,
        bus_bytes: int = 4,
        memory: Optional[MemoryModel] = None,
        refresh_enabled: bool = True,
        out: Optional[SlaveResponseSignals] = None,
        accepts: Optional[Callable[[int], bool]] = None,
    ) -> None:
        """``out``/``accepts`` adapt the controller to a multi-slave fabric.

        On the paper's single-slave platform both stay ``None``: the
        controller drives the shared bus response signals directly and
        claims every address phase, exactly the original behaviour.  On
        a multi-slave platform ``out`` is the controller's private
        response bundle (combined onto the bus by the response mux) and
        ``accepts`` is the address-decoder predicate for its region —
        address phases and BI announcements outside it are ignored.
        """
        self.bus = bus
        self.bi = bi
        self.out: Union[SharedBusSignals, SlaveResponseSignals] = (
            out if out is not None else bus
        )
        self.accepts = accepts
        self.engine = engine
        self.timing = timing
        self.bus_bytes = bus_bytes
        self.memory = memory if memory is not None else MemoryModel("ddrc.mem")
        self.refresh_enabled = refresh_enabled
        self.banks = [BankFsm(i, timing) for i in range(timing.num_banks)]
        self.scheduler = CommandScheduler(timing, self.banks)
        self.queue: List[RtlAccess] = []
        self._stream: Optional[_Stream] = None
        self._refresh_counter = timing.t_refi
        self._refresh_pending = False
        # Statistics (mirror the TLM controller's counters).
        self.reads = 0
        self.writes = 0
        self.refreshes = 0
        self.data_beats = 0
        self.prepared_banks = 0

    # -- BI status for the arbiter's bank filter -------------------------------

    def access_score(self, addr: int) -> int:
        """0 row hit / 1 bank idle / 2 row conflict for the bank filter."""
        baddr = decode_address(addr, self.timing, self.bus_bytes)
        bank = self.banks[baddr.bank]
        if bank.is_row_hit(baddr.row):
            return 0
        if bank.state is BankState.IDLE:
            return 1
        return 2

    # -- access construction ------------------------------------------------------

    def _build_access(
        self, addr: int, is_write: bool, beats: int, size_bytes: int, wrapping: bool
    ) -> RtlAccess:
        access = RtlAccess(
            addr=addr,
            is_write=is_write,
            beats=beats,
            size_bytes=size_bytes,
            wrapping=wrapping,
        )
        addrs = beat_addresses(addr, beats, size_bytes, wrapping)
        current: Optional[Tuple[BankAddress, List[int]]] = None
        groups: List[Tuple[BankAddress, List[int]]] = []
        for beat_addr in addrs:
            baddr = decode_address(beat_addr, self.timing, self.bus_bytes)
            if (
                current is not None
                and current[0].bank == baddr.bank
                and current[0].row == baddr.row
            ):
                current[1].append(beat_addr)
            else:
                current = (baddr, [beat_addr])
                groups.append(current)
        for baddr, group_addrs in groups:
            segment = RtlSegment(
                baddr=baddr,
                is_write=is_write,
                beats=len(group_addrs),
                uid=_next_uid(),
                access=access,
                addrs=group_addrs,
            )
            access.segments.append(segment)
            self.scheduler.enqueue(segment)
        self.queue.append(access)
        return access

    def _drop_stale_prepared(self) -> None:
        """Remove prepared accesses that never became bus transfers."""
        stale = [a for a in self.queue if a.prepared and not a.bus_started]
        for access in stale:
            for segment in access.segments:
                if segment in self.scheduler.queue:
                    self.scheduler.queue.remove(segment)
            self.queue.remove(access)

    # -- sequential phase ----------------------------------------------------------

    def update(self) -> None:
        now = self.engine.cycle
        self._process_beat(now)
        # BI info is consumed before the address phase so a next-info
        # pulse and its own address phase landing in the same cycle pair
        # up instead of creating a stale duplicate.
        self._accept_bi_next(now)
        self._accept_address_phase(now)
        self._tick_refresh()
        # Banks tick before the scheduler decides, so a transition that
        # completes this cycle can be followed by its dependent command
        # immediately — keeping PRE→ACT→CAS spacing at exactly
        # tRP/tRCD, the same arithmetic the TLM timeline uses.
        self.scheduler.tick()
        self._run_scheduler(now)
        self._drive_outputs(now)

    # -- step 1: move this cycle's data beat -----------------------------------------

    def _process_beat(self, now: int) -> None:
        stream = self._stream
        if stream is None or now < stream.data_start:
            return
        if stream.beats_done >= stream.length:
            return
        beat_addr = stream.segment.addrs[stream.beats_done]
        if stream.access.is_write:
            self.memory.write(
                beat_addr, stream.access.size_bytes, self.bus.hwdata.value
            )
            # Write recovery re-arms from every data beat.
            self.banks[stream.segment.baddr.bank].note_write_beat()
        self.data_beats += 1
        stream.beats_done += 1
        if stream.beats_done >= stream.length:
            retired = self.scheduler.retire_head()
            if retired is not stream.segment:
                raise SimulationError("DDRC retired an unexpected segment")
            stream.access.segments_done += 1
            if stream.access.complete:
                if stream.access.is_write:
                    self.writes += 1
                else:
                    self.reads += 1
                self.queue.remove(stream.access)
            self._stream = None

    # -- step 2: accept a new address phase --------------------------------------------

    def _accept_address_phase(self, now: int) -> None:
        if self.bus.htrans.value != 0b10:  # HTrans.NONSEQ
            return
        addr = self.bus.haddr.value
        if self.accepts is not None and not self.accepts(addr):
            return
        is_write = bool(self.bus.hwrite.value)
        beats = self.bus.hlen.value
        size_bytes = 1 << self.bus.hsize.value
        burst = HBurst(self.bus.hburst.value)
        owner = self.bus.addr_owner.value
        for access in self.queue:
            if access.prepared and not access.bus_started and access.matches(
                addr, is_write, beats
            ):
                access.bus_started = True
                access.owner = owner
                return
        # No matching preparation (BI off, or idle-path grant): drop any
        # stale preparation and enqueue fresh.
        self._drop_stale_prepared()
        access = self._build_access(
            addr, is_write, beats, size_bytes, burst.is_wrapping
        )
        access.bus_started = True
        access.owner = owner

    # -- step 3: consume BI next-transaction info ----------------------------------------

    def _accept_bi_next(self, now: int) -> None:
        if not self.bi.next_valid.value:
            return
        addr = self.bi.next_addr.value
        if self.accepts is not None and not self.accepts(addr):
            return
        is_write = bool(self.bi.next_write.value)
        beats = self.bi.next_len.value
        size_bytes = 1 << self.bi.next_size.value
        wrapping = bool(self.bi.next_wrap.value)
        # Ignore duplicate announcements: either a pending preparation or
        # an access whose address phase already arrived (late next-info).
        for access in self.queue:
            if access.matches(addr, is_write, beats):
                return
        access = self._build_access(addr, is_write, beats, size_bytes, wrapping)
        access.prepared = True
        self.prepared_banks += 1

    # -- step 4: refresh deadline ----------------------------------------------------------

    def _tick_refresh(self) -> None:
        if not self.refresh_enabled:
            return
        self._refresh_counter -= 1
        if self._refresh_counter <= 0:
            self._refresh_pending = True

    # -- step 5: one DDR command per cycle ----------------------------------------------------

    def _head_cas_allowed(self) -> bool:
        """CAS may issue only for a bus-started head with a free data path."""
        if self._stream is not None:
            return False
        if not self.scheduler.queue:
            return False
        head = self.scheduler.queue[0]
        assert isinstance(head, RtlSegment) and head.access is not None
        return head.access.bus_started

    def _run_scheduler(self, now: int) -> None:
        refresh_forced = (
            self._refresh_pending
            and self._stream is None
            and self.refresh_enabled
        )
        decision = self.scheduler.decide(
            refresh_forced=refresh_forced,
            data_path_free=self._head_cas_allowed(),
            busy_bank=(
                self._stream.segment.baddr.bank if self._stream is not None else None
            ),
        )
        if decision.command in (DdrCommand.READ, DdrCommand.WRITE):
            segment = decision.access
            assert isinstance(segment, RtlSegment) and segment.access is not None
            latency = (
                self.timing.write_latency
                if segment.is_write
                else self.timing.cas_latency
            )
            # The command occupies the next cycle; data follows latency.
            self._stream = _Stream(
                access=segment.access,
                segment=segment,
                data_start=now + 1 + latency,
            )
        elif decision.command is DdrCommand.REFRESH:
            self._refresh_pending = False
            self._refresh_counter += self.timing.t_refi
            self.refreshes += 1

    # -- step 6: registered outputs for the next cycle ------------------------------------------

    def _beat_next_cycle(self) -> bool:
        stream = self._stream
        return (
            stream is not None
            and self.engine.cycle + 1 >= stream.data_start
            and stream.beats_done < stream.length
        )

    def _drive_outputs(self, now: int) -> None:
        out = self.out  # shared bus (single slave) or private response bundle
        stream = self._stream
        if self._beat_next_cycle():
            assert stream is not None
            out.hready.drive_next(1)
            out.stream_owner.drive_next(stream.access.owner)
            if not stream.access.is_write:
                beat_addr = stream.segment.addrs[stream.beats_done]
                out.hrdata.drive_next(
                    self.memory.read(beat_addr, stream.access.size_bytes)
                )
        else:
            out.hready.drive_next(0)
            out.stream_owner.drive_next(NO_OWNER)
        started = [a for a in self.queue if a.bus_started]
        final_beat_next = (
            stream is not None
            and self._beat_next_cycle()
            and stream.is_last_segment
            and stream.length - stream.beats_done == 1
        )
        available = not started or (len(started) == 1 and final_beat_next)
        out.bus_available.drive_next(available)
        out.ddr_busy.drive_next(bool(started))
        if (
            stream is not None
            and stream.is_last_segment
            and now + 1 >= stream.data_start
        ):
            out.ddr_remaining.drive_next(stream.length - stream.beats_done)
        else:
            out.ddr_remaining.drive_next(0)
        self.bi.refresh_busy.drive_next(self._refresh_pending)
        idle_map = 0
        for bank in self.banks:
            if bank.state is BankState.IDLE:
                idle_map |= 1 << bank.index
        self.bi.idle_banks.drive_next(idle_map)

    # -- status ------------------------------------------------------------------------------------

    @property
    def idle(self) -> bool:
        """No queued or streaming work."""
        return not self.queue and self._stream is None
