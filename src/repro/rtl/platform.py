"""RTL platform record: the assembled pin-accurate system.

Holds the components the :class:`repro.system.PlatformBuilder` wires
over one :class:`~repro.kernel.cycle.CycleEngine` and the run loop that
steps the 2-step engine cycle by cycle until all traffic drains — this
is the slow, per-cycle reference the paper measures its 353× TLM
speedup against.  Multi-slave systems additionally carry the static
slaves (SRAM/APB) elaborated next to the DDRC.

``build_rtl_platform`` remains as a **deprecation shim** over the spec
API with bit-for-bit identical output; new code should elaborate a
:class:`repro.system.SystemSpec` via ``PlatformBuilder.build("rtl")``.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional

from repro.ahb.bus import TransactionObserver
from repro.ahb.master import TlmMaster
from repro.core.bus import AhbPlusRunResult
from repro.core.config import AhbPlusConfig
from repro.core.qos import QosRegisterFile
from repro.core.write_buffer import WriteBuffer
from repro.ddr.memory import MemoryModel
from repro.errors import SimulationError
from repro.kernel.cycle import CycleEngine
from repro.kernel.tracing import VcdTracer
from repro.rtl.arbiter import ArbiterRtl
from repro.rtl.ddrc import DdrcRtl
from repro.rtl.master import MasterRtl
from repro.rtl.signals import BiSignals, SharedBusSignals
from repro.rtl.slave import StaticSlaveRtl
from repro.rtl.write_buffer import BufferMasterRtl

if TYPE_CHECKING:  # annotation-only: avoids the traffic↔core import cycle
    from repro.traffic.workloads import Workload


@dataclass
class RtlPlatform:
    """An assembled pin-accurate AHB+ system."""

    workload: Workload
    config: AhbPlusConfig
    engine: CycleEngine
    agents: List[TlmMaster]
    masters: List[MasterRtl]
    buffer_master: BufferMasterRtl
    write_buffer: WriteBuffer
    arbiter: ArbiterRtl
    ddrc: DdrcRtl
    qos: QosRegisterFile
    bus: SharedBusSignals
    bi: BiSignals
    tracer: Optional[VcdTracer] = None
    #: SRAM/APB slaves of a multi-slave fabric (empty on the paper topology).
    static_slaves: List[StaticSlaveRtl] = field(default_factory=list)
    #: Observers replayed at drain time (see :meth:`attach`).
    observers: List[TransactionObserver] = field(default_factory=list)

    @property
    def memory(self) -> MemoryModel:
        return self.ddrc.memory

    @property
    def slaves(self) -> List[object]:
        """DDRC plus static slaves (reporting convenience)."""
        return [self.ddrc, *self.static_slaves]

    def attach(self, observer: TransactionObserver) -> None:
        """Register a ``(txn, grant, start, finish)`` observer.

        The signal-level model has no per-transfer callback point, so
        observers are *replayed* when :meth:`run` completes, in
        completion order, with the grant/start/finish cycles the FSMs
        recorded.  The delivered set mirrors what live TLM observers
        see: transfers that actually used the bus — master transactions
        plus write-buffer drains (master ``WRITE_BUFFER_MASTER``) —
        while absorbed (posted) originals, which never reached the bus
        themselves, are excluded.  Only the delivery *time* differs
        from the TLM engines.
        """
        self.observers.append(observer)

    #: First master index not yet permanently drained — a monotone
    #: cursor (``MasterRtl.done`` latches true), so the per-cycle
    #: predicate skips the finished prefix instead of re-polling it.
    #: Deliberately a plain class attribute, not a dataclass field.
    _drain_cursor = 0

    def _drained(self) -> bool:
        # Explicit loops: this predicate runs every stepped cycle and
        # the generator-expression form showed up in profiles.
        masters = self.masters
        cursor = self._drain_cursor
        while cursor < len(masters):
            if not masters[cursor].done:
                if cursor != self._drain_cursor:
                    self._drain_cursor = cursor
                return False
            cursor += 1
        if cursor != self._drain_cursor:
            self._drain_cursor = cursor
        if not self.buffer_master.done:
            return False
        if not self.ddrc.idle:
            return False
        for slave in self.static_slaves:
            if not slave.idle:
                return False
        return True

    #: Drain bound used when ``run`` is called with ``max_cycles=None``
    #: — the per-cycle engine needs *some* ceiling to fail loudly on a
    #: deadlocked netlist rather than spin forever.
    DEFAULT_MAX_CYCLES = 2_000_000

    def run(self, max_cycles: Optional[int] = None) -> AhbPlusRunResult:
        """Step the cycle engine until all traffic drains.

        ``max_cycles=None`` (the :class:`~repro.system.Platform`
        protocol's no-limit spelling) falls back to
        :data:`DEFAULT_MAX_CYCLES`.  Returns the same result record as
        the TLM engines so the accuracy harness can compare field by
        field.
        """
        limit = max_cycles if max_cycles is not None else self.DEFAULT_MAX_CYCLES
        self.engine.run_until(self._drained, max_cycles=limit)
        if not self._drained():
            raise SimulationError(
                f"RTL platform did not drain within {limit} cycles"
            )
        result = self._result()
        self._replay_observers()
        return result

    def _replay_observers(self) -> None:
        if not self.observers:
            return
        # Bus transfers only: non-posted master transactions (their
        # grant/start/finish were stamped by the master FSM) and the
        # buffer's drain transfers.  Absorbed originals never owned the
        # bus — live TLM observers never see them either.
        completed = [
            txn
            for agent in self.agents
            for txn in agent.completed
            if not txn.via_write_buffer
        ]
        completed.extend(self.buffer_master.drained_txns)
        completed.sort(key=lambda txn: (txn.finished_at, txn.uid))
        for observer in self.observers:
            for txn in completed:
                observer(txn, txn.granted_at, txn.started_at, txn.finished_at)

    def _result(self) -> AhbPlusRunResult:
        transactions = self.ddrc.reads + self.ddrc.writes
        data_beats = self.ddrc.data_beats
        for slave in self.static_slaves:
            transactions += slave.reads + slave.writes
            data_beats += slave.data_beats
        return AhbPlusRunResult(
            cycles=self.engine.cycle,
            transactions=transactions,
            bytes_transferred=data_beats * self.config.bus_width_bytes,
            busy_cycles=data_beats,
            per_master_transactions=[
                agent.transactions_completed for agent in self.agents
            ],
            error_responses=sum(a.error_aborts for a in self.agents),
            retry_responses=sum(a.retry_responses for a in self.agents),
            absorbed_writes=self.write_buffer.absorbed,
            drained_writes=self.write_buffer.drained,
            max_buffer_occupancy=self.write_buffer.max_occupancy,
            rt_deadline_hits=self.qos.deadline_hits,
            rt_deadline_misses=self.qos.deadline_misses,
            pipelined_grants=self.arbiter.pipelined_grants,
            bi_next_info=self.arbiter.bi_next_info,
            filter_stats=self.arbiter.decision.filter_stats(),
        )


def build_rtl_platform(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
    trace: bool = False,
    full_sweep: bool = False,
) -> RtlPlatform:
    """Assemble the pin-accurate AHB+ platform for *workload*.

    ``full_sweep=True`` disables every fast-forward optimisation — the
    sensitivity-based evaluate phase, sequential quiescence with cycle
    skip-ahead, and the DDRC's batched beat streaming — reverting to
    the reference per-cycle, per-beat model; the equivalence tests use
    it to assert that both modes produce cycle-identical traces.

    .. deprecated::
        Thin shim over :class:`repro.system.PlatformBuilder`; prefer
        ``PlatformBuilder(spec).build("rtl")`` with a
        :class:`~repro.system.SystemSpec`.  Output is bit-for-bit
        identical to the pre-spec builder.
    """
    from repro.core.platform import _paper_spec
    from repro.system.platform import PlatformBuilder

    warnings.warn(
        "build_rtl_platform is deprecated; describe the system as a "
        "repro.system.SystemSpec and elaborate it via "
        "PlatformBuilder(spec).build('rtl')",
        DeprecationWarning,
        stacklevel=2,
    )
    platform = PlatformBuilder(_paper_spec(workload, config)).build(
        "rtl", trace=trace, full_sweep=full_sweep
    )
    assert isinstance(platform, RtlPlatform)
    return platform
