"""RTL platform: wire the pin-accurate system together and run it.

Builds masters, arbiter, write buffer, mux, BI and DDRC over one
:class:`~repro.kernel.cycle.CycleEngine`, from the same
:class:`~repro.core.config.AhbPlusConfig` and
:class:`~repro.traffic.workloads.Workload` the TLM platforms consume.
The run loop steps the 2-step engine cycle by cycle until all traffic
drains — this is the slow, per-cycle reference the paper measures its
353× TLM speedup against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.ahb.master import TlmMaster
from repro.core.bus import AhbPlusRunResult
from repro.core.config import AhbPlusConfig
from repro.core.platform import config_for_workload
from repro.core.qos import QosRegisterFile
from repro.core.write_buffer import WriteBuffer
from repro.ddr.memory import MemoryModel
from repro.errors import SimulationError
from repro.kernel.cycle import CycleEngine
from repro.kernel.tracing import VcdTracer
from repro.rtl.arbiter import ArbiterRtl
from repro.rtl.ddrc import DdrcRtl
from repro.rtl.master import MasterRtl
from repro.rtl.mux import BusMux
from repro.rtl.signals import (
    BiSignals,
    MasterSignals,
    SharedBusSignals,
    all_signals,
)
from repro.rtl.write_buffer import BufferMasterRtl
from repro.traffic.workloads import Workload


@dataclass
class RtlPlatform:
    """An assembled pin-accurate AHB+ system."""

    workload: Workload
    config: AhbPlusConfig
    engine: CycleEngine
    agents: List[TlmMaster]
    masters: List[MasterRtl]
    buffer_master: BufferMasterRtl
    write_buffer: WriteBuffer
    arbiter: ArbiterRtl
    ddrc: DdrcRtl
    qos: QosRegisterFile
    bus: SharedBusSignals
    bi: BiSignals
    tracer: Optional[VcdTracer] = None

    @property
    def memory(self) -> MemoryModel:
        return self.ddrc.memory

    def _drained(self) -> bool:
        return (
            all(master.done for master in self.masters)
            and self.buffer_master.done
            and self.ddrc.idle
        )

    def run(self, max_cycles: int = 2_000_000) -> AhbPlusRunResult:
        """Step the cycle engine until all traffic drains.

        Returns the same result record as the TLM engines so the
        accuracy harness can compare field by field.
        """
        self.engine.run_until(self._drained, max_cycles=max_cycles)
        if not self._drained():
            raise SimulationError(
                f"RTL platform did not drain within {max_cycles} cycles"
            )
        return self._result()

    def _result(self) -> AhbPlusRunResult:
        return AhbPlusRunResult(
            cycles=self.engine.cycle,
            transactions=self.ddrc.reads + self.ddrc.writes,
            bytes_transferred=self.ddrc.data_beats * self.config.bus_width_bytes,
            busy_cycles=self.ddrc.data_beats,
            per_master_transactions=[
                agent.transactions_completed for agent in self.agents
            ],
            absorbed_writes=self.write_buffer.absorbed,
            drained_writes=self.write_buffer.drained,
            max_buffer_occupancy=self.write_buffer.max_occupancy,
            rt_deadline_hits=self.qos.deadline_hits,
            rt_deadline_misses=self.qos.deadline_misses,
            pipelined_grants=self.arbiter.pipelined_grants,
            bi_next_info=self.arbiter.bi_next_info,
            filter_stats=self.arbiter.decision.filter_stats(),
        )


def build_rtl_platform(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
    trace: bool = False,
    full_sweep: bool = False,
) -> RtlPlatform:
    """Assemble the pin-accurate AHB+ platform for *workload*.

    ``full_sweep=True`` disables the cycle engine's sensitivity-based
    process skipping and reverts to the reference sweep-everything
    evaluate phase; the equivalence tests use it to assert that both
    modes produce cycle-identical traces.
    """
    cfg = config_for_workload(workload, config)
    engine = CycleEngine(name=f"rtl:{workload.name}", sensitivity=not full_sweep)
    agents = workload.build_masters()

    bus = SharedBusSignals(bus_width_bits=cfg.bus_width_bytes * 8)
    bi = BiSignals()
    master_sigs = [MasterSignals(i) for i in range(cfg.num_masters)]
    buffer_sig = MasterSignals(cfg.num_masters)  # the buffer's bus identity

    qos = QosRegisterFile(cfg.num_masters)
    for master, setting in cfg.qos.items():
        qos.configure(master, setting)
    write_buffer = WriteBuffer(
        depth=cfg.write_buffer_depth, enabled=cfg.write_buffer_enabled
    )

    ddrc = DdrcRtl(
        bus=bus,
        bi=bi,
        engine=engine,
        timing=cfg.ddr_timing,
        bus_bytes=cfg.bus_width_bytes,
        refresh_enabled=cfg.refresh_enabled,
    )
    masters = [
        MasterRtl(agent, master_sigs[agent.index], bus, engine)
        for agent in agents
    ]
    buffer_master = BufferMasterRtl(
        write_buffer, cfg.num_masters, buffer_sig, bus, engine
    )
    arbiter = ArbiterRtl(
        masters=masters,
        buffer_master=buffer_master,
        write_buffer=write_buffer,
        qos=qos,
        config=cfg,
        bus=bus,
        bi=bi,
        engine=engine,
        ddrc_score=ddrc.access_score,
    )
    BusMux([*master_sigs, buffer_sig], bus, engine)

    # Register every signal and the sequential processes.  Order matters
    # only where components call each other directly: the arbiter's
    # write-buffer absorption must run before the masters' own updates.
    engine.add_signal(*all_signals([*master_sigs, buffer_sig], bus, bi))
    engine.add_sequential(arbiter.update)
    engine.add_sequential(ddrc.update)
    engine.add_sequential(buffer_master.update)
    for master in masters:
        engine.add_sequential(master.update)

    tracer: Optional[VcdTracer] = None
    if trace:
        tracer = VcdTracer()
        tracer.add_signals(all_signals([*master_sigs, buffer_sig], bus, bi))
        engine.add_cycle_hook(tracer.sample)

    return RtlPlatform(
        workload=workload,
        config=cfg,
        engine=engine,
        agents=agents,
        masters=masters,
        buffer_master=buffer_master,
        write_buffer=write_buffer,
        arbiter=arbiter,
        ddrc=ddrc,
        qos=qos,
        bus=bus,
        bi=bi,
        tracer=tracer,
    )
