"""Pin-accurate fixed-latency slaves (SRAM scratchpads, APB bridges).

A :class:`StaticSlaveRtl` is the signal-level counterpart of
:class:`repro.ahb.slave.SramSlave`: the address phase takes one cycle,
the first data beat completes after ``wait_states`` further cycles and
each later beat after ``burst_wait_states`` — the classic AHB slave
with an HREADY-stretched first access.  The beat arithmetic matches the
TLM slave exactly, so a spec elaborated at both levels produces the
same per-transfer cycle counts for static regions.

On a multi-slave fabric the slave watches the shared address/control
bus, claims only address phases its ``accepts`` predicate maps to its
region, and answers over a private
:class:`~repro.rtl.signals.SlaveResponseSignals` bundle that the
:class:`~repro.rtl.mux.ResponseMux` combines onto the shared bus.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.ahb.burst import beat_addresses
from repro.ahb.types import HBurst, HTrans
from repro.ddr.memory import MemoryModel
from repro.errors import ConfigError, SimulationError
from repro.kernel.cycle import CycleEngine, NULL_SEQ_HANDLE
from repro.rtl.signals import NO_OWNER, SharedBusSignals, SlaveResponseSignals


#: Hoisted HTrans.NONSEQ encoding for the per-cycle guards.
_NONSEQ = int(HTrans.NONSEQ)


@dataclass
class _StaticAccess:
    """One in-flight burst at a static slave."""

    addrs: List[int]
    is_write: bool
    size_bytes: int
    owner: int
    first_beat: int
    spacing: int
    beats_done: int = 0

    @property
    def beats(self) -> int:
        return len(self.addrs)

    def beat_cycle(self, index: int) -> int:
        """Cycle in which data beat *index* completes."""
        return self.first_beat + index * self.spacing


class StaticSlaveRtl:
    """A fixed-latency memory-mapped slave at signal level."""

    #: Documented exceptions to the NET-* contract rules (see
    #: :mod:`repro.lint.netlist_rules`).
    LINT_WAIVERS = {
        "NET-WAKE": {
            "hwdata": (
                "write data is sampled mid-burst only; the FSM never "
                "idles between accepted address phase and final beat, so "
                "a missed hwdata edge cannot occur while asleep"
            ),
        },
    }

    def __init__(
        self,
        name: str,
        bus: SharedBusSignals,
        out: SlaveResponseSignals,
        engine: CycleEngine,
        accepts: Callable[[int], bool],
        wait_states: int = 1,
        burst_wait_states: int = 0,
        memory: Optional[MemoryModel] = None,
        base: Optional[int] = None,
        size: Optional[int] = None,
    ) -> None:
        """``base``/``size`` bound the backing store like the TLM slave.

        A claimed beat outside ``[base, base + size)`` raises — the same
        loud failure :class:`~repro.ahb.slave.SramSlave` produces, which
        matters when this slave is the map's *default* slave and catches
        addresses far outside its own store.
        """
        if wait_states < 0 or burst_wait_states < 0:
            raise ConfigError("wait states must be non-negative")
        self.name = name
        self.bus = bus
        self.out = out
        self.engine = engine
        self.accepts = accepts
        self.wait_states = wait_states
        self.burst_wait_states = burst_wait_states
        self.base = base
        self.size = size
        self.memory = memory if memory is not None else MemoryModel(f"{name}.mem")
        self._access: Optional[_StaticAccess] = None
        # Latched fault response (HFAULT sideband of an address phase):
        # fired over the response channel the cycle after the claim,
        # then driven back down.
        self._fault_resp = 0
        self._fault_owner = NO_OWNER
        self._fault_clear = False
        #: Quiescence handle, bound by the platform builder (woken by
        #: the bus ``htrans`` edge of a new address phase).
        self.seq = NULL_SEQ_HANDLE
        # Statistics (mirror the DDRC's counters).
        self.reads = 0
        self.writes = 0
        self.data_beats = 0

    @property
    def idle(self) -> bool:
        """No burst in flight (the platform's drain check)."""
        return self._access is None and not self._fault_resp and not self._fault_clear

    def peek_word(self, addr: int, size_bytes: int = 4) -> int:
        """Read the backing store without modelling timing (tests)."""
        return self.memory.read(addr, size_bytes)

    # -- sequential phase ---------------------------------------------------------

    def update(self) -> None:
        now = self.engine.cycle
        self._process_beat(now)
        self._accept_address_phase(now)
        self._drive_outputs(now)
        # A NONSEQ this cycle (even one claimed by another slave) keeps
        # the slave awake one more cycle: back-to-back address phases
        # produce no htrans edge for the wake watcher to catch.  A
        # pending/just-fired fault response also keeps us awake — the
        # response signals still have to be driven back down.
        if (
            self._access is None
            and self.bus.htrans.value != _NONSEQ
            and not self._fault_resp
            and not self._fault_clear
        ):
            self.seq.idle()

    def _process_beat(self, now: int) -> None:
        access = self._access
        if access is None or access.beats_done >= access.beats:
            return
        if now != access.beat_cycle(access.beats_done):
            return
        addr = access.addrs[access.beats_done]
        if access.is_write:
            self.memory.write(addr, access.size_bytes, self.bus.hwdata.value)
        access.beats_done += 1
        self.data_beats += 1
        if access.beats_done >= access.beats:
            if access.is_write:
                self.writes += 1
            else:
                self.reads += 1
            self._access = None

    def _accept_address_phase(self, now: int) -> None:
        if self.bus.htrans.value != _NONSEQ:
            return
        addr = self.bus.haddr.value
        if not self.accepts(addr):
            return
        fault = self.bus.hfault.value
        if fault:
            # Seeded fault injection: answer this presentation with
            # ERROR/RETRY instead of accepting the burst.  The response
            # fires over the response channel next cycle.
            self._fault_resp = fault
            self._fault_owner = self.bus.addr_owner.value
            return
        if self._access is not None:
            raise SimulationError(
                f"{self.name}: address phase while a burst is in flight"
            )
        beats = self.bus.hlen.value
        size_bytes = 1 << self.bus.hsize.value
        wrapping = HBurst(self.bus.hburst.value).is_wrapping
        addrs = beat_addresses(addr, beats, size_bytes, wrapping)
        if self.base is not None and self.size is not None:
            for beat_addr in addrs:
                if not self.base <= beat_addr <= self.base + self.size - size_bytes:
                    raise ConfigError(
                        f"{self.name}: access {beat_addr:#x} outside "
                        f"[{self.base:#x}, {self.base + self.size:#x})"
                    )
        self._access = _StaticAccess(
            addrs=addrs,
            is_write=bool(self.bus.hwrite.value),
            size_bytes=size_bytes,
            owner=self.bus.addr_owner.value,
            first_beat=now + 1 + self.wait_states,
            spacing=self.burst_wait_states + 1,
        )

    def _drive_outputs(self, now: int) -> None:
        out = self.out
        access = self._access
        beat_next = (
            access is not None
            and access.beats_done < access.beats
            and now + 1 == access.beat_cycle(access.beats_done)
        )
        if beat_next:
            assert access is not None
            out.hready.drive_next_lazy(1)
            out.stream_owner.drive_next_lazy(access.owner)
            if not access.is_write:
                out.hrdata.drive_next_lazy(
                    self.memory.read(
                        access.addrs[access.beats_done], access.size_bytes
                    )
                )
        else:
            out.hready.drive_next_lazy(0)
            out.stream_owner.drive_next_lazy(NO_OWNER)
        final_beat_next = (
            beat_next
            and access is not None
            and access.beats_done == access.beats - 1
        )
        out.bus_available.drive_next_lazy(access is None or final_beat_next)
        out.ddr_busy.drive_next_lazy(access is not None)
        if access is not None and now + 1 >= access.first_beat:
            out.ddr_remaining.drive_next_lazy(access.beats - access.beats_done)
        else:
            out.ddr_remaining.drive_next_lazy(0)
        if self._fault_resp:
            # Fire the latched fault response: one hready cycle aimed at
            # the faulting owner, HRESP carrying the code.  An accepted
            # phase always finds the data path free (bus_available
            # gating), so this never overrides a real beat.
            out.hready.drive_next_lazy(1)
            out.hresp.drive_next(self._fault_resp)
            out.stream_owner.drive_next_lazy(self._fault_owner)
            self._fault_resp = 0
            self._fault_owner = NO_OWNER
            self._fault_clear = True
        elif self._fault_clear:
            out.hresp.drive_next(0)
            self._fault_clear = False
