"""Pin-accurate bus master.

Drives the per-master signal bundle through the classic AHB master FSM:

* ``IDLE``    — no transaction in hand; fetch from the traffic agent,
* ``REQUEST`` — HBUSREQ asserted, waiting for HGRANT + bus availability,
* ``DATA``    — address phase done; counting HREADY beats, driving
  HWDATA (writes) or capturing HRDATA (reads).

The master consumes the *same* :class:`~repro.ahb.master.TlmMaster`
traffic agent as the transaction-level engines, so one workload seed
produces the identical transaction stream at both abstraction levels —
the precondition of the paper's accuracy comparison.

Cycle conventions (shared by every RTL component):

* combinational ``evaluate`` runs during cycle *k* and reads/drives
  settled cycle-*k* values;
* sequential ``update`` runs at the end of cycle *k*; direct Python
  calls between components (write-buffer absorption) happen there, with
  the arbiter registered *before* the masters so an absorbed master can
  re-request on the very next cycle, as the TLM does.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.ahb.master import TlmMaster
from repro.ahb.transaction import Transaction
from repro.ahb.types import HResp, HTrans
from repro.kernel.cycle import CycleEngine, NULL_SEQ_HANDLE
from repro.rtl.signals import MasterSignals, SharedBusSignals


class MasterState(enum.Enum):
    IDLE = "idle"
    REQUEST = "request"
    DATA = "data"


class MasterRtl:
    """One AHB+ master at signal level."""

    #: State aliases for wake-filter predicates (shared shape with the
    #: buffer drain engine, so the platform builder wires both the same).
    REQUEST_STATE = MasterState.REQUEST
    DATA_STATE = MasterState.DATA

    def __init__(
        self,
        agent: TlmMaster,
        signals: MasterSignals,
        bus: SharedBusSignals,
        engine: CycleEngine,
    ) -> None:
        self.agent = agent
        self.index = agent.index
        self.sig = signals
        self.bus = bus
        self.engine = engine
        # Direct references to the per-cycle hot inputs.
        self._hgrant = signals.hgrant
        self._hready = bus.hready
        self._stream_owner = bus.stream_owner
        self._bus_available = bus.bus_available
        self.state = MasterState.IDLE
        self._txn: Optional[Transaction] = None
        self._beat = 0
        self._captured: List[int] = []
        # evaluate() is a function of (hgrant, bus_available) plus FSM
        # state that only mutates in the sequential phase; update() and
        # absorb_current() touch the handle whenever that state moves.
        # The signal inputs reach the outputs only through
        # _drives_address_now(), so their edges are filtered to the
        # REQUEST state — IDLE/DATA evaluations re-run via touch alone.
        requesting = self._requesting
        self._eval = engine.add_combinational(
            self.evaluate,
            sensitive_to=(
                (signals.hgrant, requesting),
                (bus.bus_available, requesting),
            ),
        )
        #: Quiescence handle, bound by the platform builder.  An idle
        #: master with nothing to fetch sleeps until its next item's
        #: think time expires (a pure time wake: no input signal can
        #: affect a master that is not requesting or streaming).
        self.seq = NULL_SEQ_HANDLE

    # -- views --------------------------------------------------------------------

    @property
    def current_transaction(self) -> Optional[Transaction]:
        """The transaction being requested (for the arbiter's sideband)."""
        if self.state is MasterState.REQUEST:
            return self._txn
        return None

    @property
    def done(self) -> bool:
        """All traffic issued and completed."""
        return self.agent.done and self.state is MasterState.IDLE

    def _requesting(self) -> bool:
        return self.state is MasterState.REQUEST

    def _drives_address_now(self) -> bool:
        return (
            self.state is MasterState.REQUEST
            and bool(self._hgrant.value)
            and bool(self._bus_available.value)
        )

    # -- combinational phase ----------------------------------------------------------

    def evaluate(self) -> None:
        """Drive HBUSREQ, the address phase and write data for this cycle."""
        txn = self._txn
        self.sig.hbusreq.drive(self.state is MasterState.REQUEST)
        if self._drives_address_now():
            assert txn is not None
            self.sig.htrans.drive(int(HTrans.NONSEQ))
            self.sig.haddr.drive(txn.addr)
            self.sig.hwrite.drive(txn.is_write)
            self.sig.hburst.drive(int(txn.burst))
            self.sig.hlen.drive(txn.beats)
            self.sig.hsize.drive(int(txn.hsize))
            self.sig.hfault.drive(
                txn.fault_plan[txn.fault_step]
                if txn.fault_step < len(txn.fault_plan)
                else 0
            )
        else:
            self.sig.htrans.drive(int(HTrans.IDLE))
            self.sig.hfault.drive(0)
        if (
            self.state is MasterState.DATA
            and txn is not None
            and txn.is_write
            and self._beat < txn.beats
        ):
            self.sig.hwdata.drive(txn.data[self._beat] if txn.data else 0)

    # -- sequential phase ----------------------------------------------------------------

    def update(self) -> None:
        """Advance the FSM at the end of cycle ``engine.cycle``."""
        now = self.engine.cycle
        state0 = self.state
        txn0 = self._txn
        beat0 = self._beat
        if self.state is MasterState.DATA:
            self._update_data(now)
        elif self.state is MasterState.REQUEST:
            if self._drives_address_now():
                txn = self._txn
                assert txn is not None
                txn.granted_at = now
                txn.started_at = now
                self.state = MasterState.DATA
                self._beat = 0
                self._captured = []
        if self.state is MasterState.IDLE:
            self._fetch(now)
        if (
            self.state is not state0
            or self._txn is not txn0
            or (
                self._beat != beat0
                and txn0 is not None
                and txn0.is_write
            )
        ):
            # A read's data beats never reach evaluate()'s outputs (no
            # HWDATA to advance), so mid-burst read beats skip the
            # re-evaluation entirely.
            self._eval.touch()
        self._assess_quiescence(now)

    def _assess_quiescence(self, now: int) -> None:
        """Sleep whenever this cycle's inputs make update() a no-op.

        IDLE with nothing to fetch sleeps until the next item's issue
        cycle (or forever once drained); REQUEST sleeps until the
        grant+bus pair arrives; DATA sleeps through the CAS latency and
        other owners' beats.  The non-timed cases re-arm through the
        builder's wake-on list (hgrant/bus_available/hready/
        stream_owner edges) or an explicit wake (write-buffer
        absorption), always in the cycle the reference FSM would first
        act again.
        """
        state = self.state
        if state is MasterState.IDLE:
            # Nothing fetched: drained for good, or thinking — the next
            # item issues at `nxt`, so update() stays a no-op until the
            # cycle whose fetch probes pending(nxt).
            if self.agent.done:
                self.seq.idle()
            else:
                nxt = self.agent.earliest_request()
                if nxt is not None and nxt - 1 > now:
                    self.seq.idle(until=nxt - 1)
        elif state is MasterState.REQUEST:
            if not (self._hgrant.value and self._bus_available.value):
                self.seq.idle()
        else:  # DATA
            if not (
                self._hready.value
                and self._stream_owner.value == self.index
            ):
                self.seq.idle()

    def _update_data(self, now: int) -> None:
        txn = self._txn
        assert txn is not None
        if (
            bool(self._hready.value)
            and self._stream_owner.value == self.index
        ):
            resp = self.bus.hresp.value
            if resp:
                # Fault response instead of a data beat: the slave
                # answered the address phase with ERROR/RETRY.  The
                # plan entry was consumed; on RETRY the master drops
                # back to REQUEST and re-arbitrates, otherwise the
                # transfer is aborted with its response recorded.
                txn.fault_step += 1
                if resp == int(HResp.RETRY) and self.agent.retry(txn, now):
                    self.state = MasterState.REQUEST
                    self._beat = 0
                    self._captured = []
                    return
                if resp != int(HResp.RETRY):
                    txn.resp = resp
                    self.agent.fail(txn, now)
                self._txn = None
                self.state = MasterState.IDLE
                return
            if not txn.is_write:
                self._captured.append(self.bus.hrdata.value)
            self._beat += 1
            if self._beat >= txn.beats:
                if not txn.is_write:
                    txn.data = list(self._captured)
                self.agent.complete(txn, now)
                self._txn = None
                self.state = MasterState.IDLE

    def _fetch(self, now: int) -> None:
        """Arm the next request so HBUSREQ is visible next cycle."""
        txn = self.agent.pending(now + 1)
        if txn is not None:
            self._txn = txn
            self.state = MasterState.REQUEST

    # -- write-buffer interaction ------------------------------------------------------------

    def absorb_current(self, cycle: int) -> Transaction:
        """The arbiter posted our pending write into the write buffer.

        Called from the arbiter's sequential phase (which runs before
        the masters'), so this master can fetch and re-request on the
        very next cycle.
        """
        txn = self._txn
        assert txn is not None and txn.is_write and self.state is MasterState.REQUEST
        self.agent.absorb(txn, cycle)
        self._txn = None
        self.state = MasterState.IDLE
        self._eval.touch()
        # The master may be sleeping in REQUEST; its own update (which
        # runs after the arbiter's this same cycle) must fetch now.
        self.seq.wake()
        return txn
