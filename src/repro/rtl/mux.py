"""Address/data multiplexers of the AHB+ main bus.

Pure combinational routing, exactly the muxes of the AMBA spec's bus
fabric: the address/control group follows whichever master drives an
active transfer this cycle, and the write-data bus follows the
data-phase owner published by the DDRC (``stream_owner``).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ahb.types import HTrans
from repro.kernel.cycle import CycleEngine
from repro.rtl.signals import (
    MasterSignals,
    NO_OWNER,
    SharedBusSignals,
    SlaveResponseSignals,
)


class BusMux:
    """Routes per-master signal bundles onto the shared bus."""

    def __init__(
        self,
        master_signals: List[MasterSignals],
        bus: SharedBusSignals,
        engine: CycleEngine,
    ) -> None:
        #: Indexed by owner index; the write buffer's bundle sits last.
        self.master_signals = master_signals
        self.bus = bus
        # Two independent pure functions with separate sensitivity
        # lists: the address/control group re-routes only on a new
        # address phase, while the write-data group re-routes on every
        # data beat — splitting them keeps a streaming write burst from
        # re-evaluating the whole address mux once per beat.
        addr_sens = []
        data_sens = []
        for bundle in master_signals:
            addr_sens.extend(
                (
                    bundle.htrans,
                    bundle.haddr,
                    bundle.hwrite,
                    bundle.hburst,
                    bundle.hlen,
                    bundle.hsize,
                    bundle.hfault,
                )
            )
            data_sens.append(bundle.hwdata)
        data_sens.append(bus.stream_owner)
        engine.add_combinational(self.evaluate_address, sensitive_to=addr_sens)
        engine.add_combinational(self.evaluate_wdata, sensitive_to=data_sens)

    def evaluate_address(self) -> None:
        """Drive the shared address/control group."""
        driver = None
        for bundle in self.master_signals:
            if bundle.htrans.value == int(HTrans.NONSEQ):
                driver = bundle
                break
        if driver is not None:
            self.bus.htrans.drive(int(HTrans.NONSEQ))
            self.bus.haddr.drive(driver.haddr.value)
            self.bus.hwrite.drive(driver.hwrite.value)
            self.bus.hburst.drive(driver.hburst.value)
            self.bus.hlen.drive(driver.hlen.value)
            self.bus.hsize.drive(driver.hsize.value)
            self.bus.hfault.drive(driver.hfault.value)
            self.bus.addr_owner.drive(driver.index)
        else:
            self.bus.htrans.drive(int(HTrans.IDLE))
            self.bus.hfault.drive(0)
            self.bus.addr_owner.drive(NO_OWNER)

    def evaluate_wdata(self) -> None:
        """Drive the write-data bus from the data-phase owner's bundle."""
        owner = self.bus.stream_owner.value
        if owner != NO_OWNER and owner < len(self.master_signals):
            self.bus.hwdata.drive(self.master_signals[owner].hwdata.value)

    def evaluate(self) -> None:
        """Full mux evaluation (kept for direct unit-test driving)."""
        self.evaluate_address()
        self.evaluate_wdata()


class ResponseMux:
    """Combines per-slave response bundles onto the shared bus.

    The single-slave platform needs no such mux — the DDRC drives the
    shared response signals directly.  With several slaves each drives
    a private :class:`SlaveResponseSignals` bundle and this mux routes:

    * ``hready``/``hrdata``/``stream_owner`` follow whichever slave is
      streaming a data beat (at most one, since an address phase is only
      presented when every slave reports the data path free);
    * ``bus_available`` is the AND over slaves — a new address phase may
      be presented only when the shared data path will be free for it;
    * ``ddr_busy`` is the OR over slaves and ``ddr_remaining`` follows
      the streaming slave, feeding the arbiter's pipelined-lock window.
    """

    def __init__(
        self,
        responses: Sequence[SlaveResponseSignals],
        bus: SharedBusSignals,
        engine: CycleEngine,
    ) -> None:
        self.responses = list(responses)
        self.bus = bus
        sens = []
        for resp in self.responses:
            sens.extend(
                (
                    resp.hready,
                    resp.hresp,
                    resp.hrdata,
                    resp.stream_owner,
                    resp.bus_available,
                    resp.ddr_busy,
                    resp.ddr_remaining,
                )
            )
        engine.add_combinational(self.evaluate, sensitive_to=sens)

    def evaluate(self) -> None:
        """Drive the shared response signals from the slave bundles."""
        bus = self.bus
        hready = 0
        hresp = 0
        owner = NO_OWNER
        available = 1
        busy = 0
        remaining = 0
        for resp in self.responses:
            if not hready and resp.hready.value:
                hready = 1
                hresp = resp.hresp.value
                owner = resp.stream_owner.value
                bus.hrdata.drive(resp.hrdata.value)
            if not resp.bus_available.value:
                available = 0
            if resp.ddr_busy.value:
                busy = 1
            if resp.ddr_remaining.value > remaining:
                remaining = resp.ddr_remaining.value
        bus.hready.drive(hready)
        bus.hresp.drive(hresp)
        bus.stream_owner.drive(owner)
        bus.bus_available.drive(available)
        bus.ddr_busy.drive(busy)
        bus.ddr_remaining.drive(remaining)
