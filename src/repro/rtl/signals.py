"""Signal bundles of the pin-accurate AHB+ model.

Naming follows AMBA 2.0 (HBUSREQ, HGRANT, HTRANS, ...) plus the AHB+
extensions: the sideband burst length ``HLEN`` (the arbiter forwards
full transfer descriptors, which is how the BI can announce the next
transaction), the ``BI_*`` channel between arbiter and DDRC, and the
handover bookkeeping registers (``ADDR_OWNER``, ``STREAM_OWNER``).

Every signal is a :class:`repro.kernel.signal.Signal` evaluated by the
2-step cycle engine — this per-cycle, per-signal cost is exactly what
the paper's RTL reference pays and its TLM avoids.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.ahb.types import HBurst, HTrans
from repro.kernel.signal import Signal, SignalBundle

#: Value of owner registers when nobody owns the bus.
NO_OWNER = 0xFF


class MasterSignals(SignalBundle):
    """Per-master request/grant pair plus the master-driven bus inputs."""

    def __init__(self, index: int) -> None:
        super().__init__(f"m{index}")
        self.index = index
        self.hbusreq = self.make("hbusreq")
        self.hgrant = self.make("hgrant")
        self.htrans = self.make("htrans", width=2, reset=int(HTrans.IDLE))
        self.haddr = self.make("haddr", width=32)
        self.hwrite = self.make("hwrite")
        self.hburst = self.make("hburst", width=3)
        self.hlen = self.make("hlen", width=8, reset=1)  # AHB+ sideband beats
        self.hsize = self.make("hsize", width=3)
        self.hwdata = self.make("hwdata", width=32)
        #: AHB+ sideband: fault-plan response the addressed slave must
        #: answer this presentation with (testbench fault injection; 0 =
        #: no fault).  Rides next to HLEN — the fault plan lives on the
        #: transaction, so the master carries it to the slave.
        self.hfault = self.make("hfault", width=2)


class SharedBusSignals(SignalBundle):
    """The multiplexed address/data bus plus slave responses."""

    def __init__(self, bus_width_bits: int = 32) -> None:
        super().__init__("bus")
        self.htrans = self.make("htrans", width=2, reset=int(HTrans.IDLE))
        self.haddr = self.make("haddr", width=32)
        self.hwrite = self.make("hwrite")
        self.hburst = self.make("hburst", width=3)
        self.hlen = self.make("hlen", width=8, reset=1)
        self.hsize = self.make("hsize", width=3)
        self.hfault = self.make("hfault", width=2)
        self.hwdata = self.make("hwdata", width=bus_width_bits)
        self.hrdata = self.make("hrdata", width=bus_width_bits)
        self.hready = self.make("hready", reset=1)
        self.hresp = self.make("hresp", width=2)
        #: Address-phase owner (who the mux routes onto HADDR/HTRANS).
        self.addr_owner = self.make("addr_owner", width=8, reset=NO_OWNER)
        #: Data-phase owner (whose HWDATA the mux routes).
        self.stream_owner = self.make("stream_owner", width=8, reset=NO_OWNER)
        #: DDRC: an address phase presented this cycle will be accepted.
        self.bus_available = self.make("bus_available", reset=1)
        #: DDRC: data beats left (incl. this cycle) in the in-flight access.
        self.ddr_remaining = self.make("ddr_remaining", width=16)
        #: DDRC: some access is queued or streaming.
        self.ddr_busy = self.make("ddr_busy")


class SlaveResponseSignals(SignalBundle):
    """One slave's private response channel on a multi-slave fabric.

    Attribute names deliberately mirror the response half of
    :class:`SharedBusSignals` (``hready``/``hrdata``/``stream_owner``/
    ``bus_available``/``ddr_busy``/``ddr_remaining``) so a slave FSM can
    drive either the shared bus directly (single-slave platform, the
    paper topology) or its private bundle (multi-slave platform, where
    the :class:`~repro.rtl.mux.ResponseMux` combines the bundles onto
    the shared bus) through the same code path.
    """

    def __init__(self, name: str, bus_width_bits: int = 32) -> None:
        super().__init__(f"s{name}")
        self.hready = self.make("hready")
        self.hresp = self.make("hresp", width=2)
        self.hrdata = self.make("hrdata", width=bus_width_bits)
        self.stream_owner = self.make("stream_owner", width=8, reset=NO_OWNER)
        #: An address phase presented this cycle will be accepted.
        self.bus_available = self.make("bus_available", reset=1)
        #: Some access is queued or streaming at this slave.
        self.ddr_busy = self.make("ddr_busy")
        #: Data beats left (incl. this cycle) in the in-flight access.
        self.ddr_remaining = self.make("ddr_remaining", width=16)


class BiSignals(SignalBundle):
    """The AHB+ Bus Interface channel (arbiter → DDRC and back)."""

    def __init__(self) -> None:
        super().__init__("bi")
        self.next_valid = self.make("next_valid")
        self.next_addr = self.make("next_addr", width=32)
        self.next_write = self.make("next_write")
        self.next_len = self.make("next_len", width=8, reset=1)
        self.next_wrap = self.make("next_wrap")
        self.next_size = self.make("next_size", width=3)
        #: DDRC → arbiter: banks with no open row (idle-bank map).
        self.idle_banks = self.make("idle_banks", width=16)
        #: DDRC → arbiter: refresh in progress, hold new address phases.
        self.refresh_busy = self.make("refresh_busy")


def all_signals(
    masters: List[MasterSignals],
    bus: SharedBusSignals,
    bi: BiSignals,
    extra: Sequence[SignalBundle] = (),
) -> List[Signal]:
    """Flatten every signal for cycle-engine registration / tracing.

    ``extra`` carries additional bundles — the per-slave response
    channels of a multi-slave fabric.
    """
    flat: List[Signal] = []
    for bundle in [*masters, bus, bi, *extra]:
        flat.extend(bundle.signals())
    return flat
