"""Pin-accurate RTL reference model of the AHB+ bus architecture.

Signal-level masters, arbiter, mux, write-buffer drain engine, Bus
Interface and DDR controller FSMs running on the 2-step cycle engine.
This is the reference the transaction-level model is validated against
for accuracy and measured against for speed.
"""

from repro.rtl.arbiter import ArbiterRtl
from repro.rtl.ddrc import DdrcRtl, RtlAccess, RtlSegment
from repro.rtl.master import MasterRtl, MasterState
from repro.rtl.mux import BusMux, ResponseMux
from repro.rtl.platform import RtlPlatform, build_rtl_platform
from repro.rtl.slave import StaticSlaveRtl
from repro.rtl.signals import (
    BiSignals,
    MasterSignals,
    NO_OWNER,
    SharedBusSignals,
    SlaveResponseSignals,
    all_signals,
)
from repro.rtl.write_buffer import BufferMasterRtl, DrainState

__all__ = [
    "ArbiterRtl",
    "BiSignals",
    "BufferMasterRtl",
    "BusMux",
    "ResponseMux",
    "DdrcRtl",
    "DrainState",
    "MasterRtl",
    "MasterSignals",
    "MasterState",
    "NO_OWNER",
    "RtlAccess",
    "RtlPlatform",
    "RtlSegment",
    "SharedBusSignals",
    "SlaveResponseSignals",
    "StaticSlaveRtl",
    "all_signals",
]
