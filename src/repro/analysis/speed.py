"""Simulation-speed measurement (the paper's §4 speed experiment).

The paper reports 0.47 Kcycles/s for the pin-accurate RTL model,
166 Kcycles/s for the 4-master TLM (353× speedup) and 456 Kcycles/s
with a single master.  Absolute numbers depend on the host and the
implementation language; what this module reproduces is the *shape*:
Kcycles/s per model, the TLM/RTL ratio, and the single-master uplift.

Measurement runs on the :class:`~repro.exec.SweepRunner` serial backend
(in-process, so wall clocks see no pool overhead) with ``repeats`` for
best-of-N timing: every repeat rebuilds the platform untimed and times
only ``run()`` — the exact methodology the hand-rolled loops used
before the runner layer absorbed them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.config import AhbPlusConfig
from repro.exec import SweepRunner
from repro.kernel.simulator import Simulator
from repro.system.platform import PlatformBuilder
from repro.system.scenarios import paper_topology
from repro.system.spec import sweep
from repro.traffic.workloads import Workload


@dataclass(frozen=True)
class SpeedSample:
    """One model's measured simulation speed."""

    model: str
    simulated_cycles: int
    wall_seconds: float

    @property
    def kcycles_per_sec(self) -> float:
        if self.wall_seconds <= 0:
            return float("inf")
        return self.simulated_cycles / self.wall_seconds / 1000.0


@dataclass
class SpeedReport:
    """The §4 speed table: RTL vs TLM plus single-master."""

    rtl: SpeedSample
    tlm_method: SpeedSample
    tlm_thread: Optional[SpeedSample] = None
    tlm_single_master: Optional[SpeedSample] = None

    @property
    def speedup(self) -> float:
        """TLM (method) over RTL — the paper's 353×."""
        if self.rtl.kcycles_per_sec <= 0:
            return float("inf")
        return self.tlm_method.kcycles_per_sec / self.rtl.kcycles_per_sec

    @property
    def method_over_thread(self) -> Optional[float]:
        if self.tlm_thread is None:
            return None
        if self.tlm_thread.kcycles_per_sec <= 0:
            return float("inf")
        return self.tlm_method.kcycles_per_sec / self.tlm_thread.kcycles_per_sec


def _timed(label: str, runner: Callable[[], int]) -> SpeedSample:
    start = time.perf_counter()
    cycles = runner()
    elapsed = time.perf_counter() - start
    return SpeedSample(model=label, simulated_cycles=cycles, wall_seconds=elapsed)


def _measure(
    label: str,
    level: str,
    workload: Workload,
    config: Optional[AhbPlusConfig],
    repeats: int,
) -> SpeedSample:
    """Best-of-N wall-clock one engine level via the serial runner."""
    grid = sweep(
        paper_topology(workload=workload, config=config),
        axis="engine",
        values=(level,),
        labels=(label,),
    )
    [record] = SweepRunner(backend="serial", repeats=max(repeats, 1)).run(grid)
    return SpeedSample(
        model=label,
        simulated_cycles=record.cycles,
        wall_seconds=record.wall_seconds,
    )


def measure_rtl(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
    repeats: int = 1,
) -> SpeedSample:
    """Wall-clock the pin-accurate model on *workload*."""
    return _measure("rtl", "rtl", workload, config, repeats)


def measure_tlm(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
    engine: str = "method",
    repeats: int = 3,
) -> SpeedSample:
    """Wall-clock a TLM engine on *workload* (best of *repeats* runs)."""
    level = "tlm" if engine == "method" else "tlm-threaded"
    return _measure(f"tlm-{engine}", level, workload, config, repeats)


def speed_comparison(
    multi_master: Workload,
    single_master: Optional[Workload] = None,
    config: Optional[AhbPlusConfig] = None,
    include_thread: bool = True,
) -> SpeedReport:
    """Run the full §4 speed experiment."""
    rtl = measure_rtl(multi_master, config)
    tlm = measure_tlm(multi_master, config, engine="method")
    thread = (
        measure_tlm(multi_master, config, engine="thread")
        if include_thread
        else None
    )
    single = None
    if single_master is not None:
        best = measure_tlm(single_master, engine="method")
        single = SpeedSample(
            model="tlm-single-master",
            simulated_cycles=best.simulated_cycles,
            wall_seconds=best.wall_seconds,
        )
    return SpeedReport(
        rtl=rtl, tlm_method=tlm, tlm_thread=thread, tlm_single_master=single
    )


def kernel_comparison(workload: Workload, cycles: int = 5000) -> List[SpeedSample]:
    """2-step cycle engine vs event-driven stepping of the same netlist.

    The paper used a "2-step cycle-based simulation tool to further
    speed up the simulation" over an event-driven simulator.  Both runs
    here execute the identical RTL platform for the same cycle count;
    the event-driven variant re-schedules every cycle through the
    discrete-event queue, paying heap traffic per cycle, while the
    cycle engine just sweeps.  (This is a kernel microbenchmark, not a
    sweep — it stays on the direct builder API.)
    """
    builder = PlatformBuilder(paper_topology(workload=workload))
    native = builder.build("rtl")
    native_sample = _timed(
        "cycle-kernel", lambda: (native.engine.run(cycles), native.engine.cycle)[1]
    )

    event_driven = builder.build("rtl")
    sim = Simulator()

    def run_via_events() -> int:
        def tick() -> None:
            event_driven.engine.step()
            if event_driven.engine.cycle < cycles:
                sim.schedule_after(1, tick)

        sim.schedule_after(1, tick)
        sim.run()
        return event_driven.engine.cycle

    event_sample = _timed("event-kernel", run_via_events)
    return [native_sample, event_sample]
