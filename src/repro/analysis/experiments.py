"""Shared experiment drivers.

Each function regenerates one row of the README experiment index.
Benchmarks call these under ``pytest-benchmark``; the examples and
EXPERIMENTS.md generation call them directly.  Everything is
deterministic given the workload seeds.

Every ablation follows one shape: describe the system once as a
:class:`~repro.system.SystemSpec` (via the scenario registry), expand
it along exactly one axis with :func:`repro.system.sweep`, and run the
resulting grid — no per-experiment ``replace(config, ...)`` cloning.
The QoS comparison sweeps the *engine* axis (plain AHB vs AHB+ on the
same spec), which is the paper's portability claim as an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.accuracy import Table1Result, run_table1
from repro.analysis.speed import SpeedReport, speed_comparison
from repro.core.config import SWITCHABLE_FILTERS
from repro.system.scenarios import paper_topology
from repro.system.spec import sweep
from repro.traffic.workloads import (
    bank_striped_workload,
    saturating_workload,
    single_master_workload,
    table1_workloads,
    write_heavy_workload,
)


def experiment_table1(transactions: int = 150) -> Table1Result:
    """Table 1: TLM accuracy vs RTL over the three traffic suites."""
    return run_table1(table1_workloads(transactions))


def experiment_speed(
    transactions: int = 150, include_thread: bool = True
) -> SpeedReport:
    """§4 speed: RTL vs TLM Kcycles/s, plus the single-master case."""
    return speed_comparison(
        multi_master=table1_workloads(transactions)[0],
        single_master=single_master_workload(transactions * 2),
        include_thread=include_thread,
    )


# -- ablation A2: write buffer --------------------------------------------------


@dataclass
class WriteBufferPoint:
    """One write-buffer configuration's outcome."""

    label: str
    depth: int
    cycles: int
    absorbed: int
    mean_write_latency: float


def experiment_write_buffer(
    transactions: int = 200, depths: Tuple[int, ...] = (1, 2, 4, 8)
) -> List[WriteBufferPoint]:
    """Write-buffer off + depth sweep on a write-heavy workload."""
    spec = paper_topology(workload=write_heavy_workload(transactions))
    grid = sweep(
        spec, axis="write_buffer_enabled", values=(False,), labels=("off",)
    )
    grid += sweep(
        spec,
        axis="write_buffer_depth",
        values=depths,
        labels=tuple(f"depth{d}" for d in depths),
    )
    points: List[WriteBufferPoint] = []
    for point in grid:
        platform = point.build()
        result = platform.run()
        writes = [
            txn
            for master in platform.masters
            for txn in master.completed
            if txn.is_write
        ]
        mean_latency = (
            sum(txn.finished_at - txn.issued_at for txn in writes) / len(writes)
            if writes
            else 0.0
        )
        points.append(
            WriteBufferPoint(
                label=point.label,
                depth=0 if point.axis == "write_buffer_enabled" else int(point.value),  # type: ignore[arg-type]
                cycles=result.cycles,
                absorbed=result.absorbed_writes,
                mean_write_latency=mean_latency,
            )
        )
    return points


# -- ablation A3: bank interleaving via the BI --------------------------------------


@dataclass
class InterleavingPoint:
    """BI on/off outcome on the bank-striped workload."""

    label: str
    cycles: int
    utilization: float
    prepared_banks: int
    row_hit_rate: float


def experiment_bank_interleaving(transactions: int = 200) -> List[InterleavingPoint]:
    """BI on vs off: throughput and DDR utilization on striped traffic."""
    spec = paper_topology(workload=bank_striped_workload(transactions))
    points = []
    for point in sweep(
        spec,
        axis="bus_interface_enabled",
        values=(True, False),
        labels=("bi-on", "bi-off"),
    ):
        platform = point.build()
        result = platform.run()
        points.append(
            InterleavingPoint(
                label=point.label,
                cycles=result.cycles,
                utilization=result.utilization,
                prepared_banks=platform.ddrc.prepared_banks,
                row_hit_rate=platform.ddrc.row_hit_rate(),
            )
        )
    return points


# -- ablation A4: QoS guarantee (plain AHB vs AHB+) -----------------------------------


@dataclass
class QosPoint:
    """Deadline performance of one bus architecture."""

    label: str
    cycles: int
    rt_transactions: int
    deadline_misses: int
    worst_latency: int

    @property
    def miss_rate(self) -> float:
        if self.rt_transactions == 0:
            return 0.0
        return self.deadline_misses / self.rt_transactions


def _deadline_stats(masters, rt_index: int) -> Tuple[int, int, int]:
    rt_txns = masters[rt_index].completed
    misses = sum(1 for txn in rt_txns if txn.met_deadline is False)
    worst = max((txn.finished_at - txn.issued_at) for txn in rt_txns)
    return len(rt_txns), misses, worst


def experiment_qos(transactions: int = 150) -> List[QosPoint]:
    """Paper motivation: AMBA2.0 cannot guarantee QoS; AHB+ can.

    One spec, two engines — the sweep axis is the abstraction itself.
    """
    workload = saturating_workload(transactions)
    rt_index = next(iter(workload.qos_map()))
    spec = paper_topology(workload=workload)
    points = []
    for point in sweep(
        spec,
        axis="engine",
        values=("plain", "tlm"),
        labels=("plain-ahb", "ahb+"),
    ):
        platform = point.build()
        result = platform.run()
        count, misses, worst = _deadline_stats(platform.masters, rt_index)
        points.append(QosPoint(point.label, result.cycles, count, misses, worst))
    return points


# -- ablation A5: arbitration filters ----------------------------------------------------


@dataclass
class FilterPoint:
    """Outcome with one filter disabled."""

    disabled: str
    cycles: int
    rt_misses: int
    utilization: float


def experiment_filters(transactions: int = 120) -> List[FilterPoint]:
    """Disable each switchable filter in turn under RT saturation.

    The saturating workload (RT stream at lowest priority, three greedy
    DMA movers) is where arbitration decisions matter: disabling the
    urgency or real-time filters costs stream deadlines.
    """
    spec = paper_topology(workload=saturating_workload(transactions // 2))
    cases: List[Tuple[str, Tuple[str, ...]]] = [("none", ())]
    cases.extend((name, (name,)) for name in SWITCHABLE_FILTERS)
    # The urgency and real-time filters back each other up; disabling
    # both removes the QoS guarantee entirely.
    cases.append(("urgency+real-time", ("urgency", "real-time")))
    grid = sweep(
        spec,
        axis="disabled_filters",
        values=tuple(disabled for _label, disabled in cases),
        labels=tuple(label for label, _disabled in cases),
    )
    points = []
    for point in grid:
        result = point.build().run()
        points.append(
            FilterPoint(
                disabled=point.label,
                cycles=result.cycles,
                rt_misses=result.rt_deadline_misses,
                utilization=result.utilization,
            )
        )
    return points
