"""Shared experiment drivers.

Each function regenerates one row of the README experiment index.
Benchmarks call these under ``pytest-benchmark``; the examples and
EXPERIMENTS.md generation call them directly.  Everything is
deterministic given the workload seeds.

Every ablation follows one shape: describe the system once as a
:class:`~repro.system.SystemSpec` (via the scenario registry), expand
it along exactly one axis with :func:`repro.system.sweep`, and hand the
grid to a :class:`~repro.exec.SweepRunner` — no per-experiment run
loops.  Extra per-point measurements (write latencies, bank counters,
deadline stats) come from module-level *collectors*, which keeps every
ablation shardable over the process backend (``backend="process"``)
with records guaranteed identical to a serial run.  The QoS comparison
sweeps the *engine* axis (plain AHB vs AHB+ on the same spec), which is
the paper's portability claim as an experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.accuracy import Table1Result, run_table1
from repro.analysis.speed import SpeedReport, speed_comparison
from repro.core.config import SWITCHABLE_FILTERS
from repro.exec import SweepRunner
from repro.system.platform import platform_agents
from repro.system.scenarios import paper_topology
from repro.system.spec import SweepPoint, sweep
from repro.traffic.workloads import (
    bank_striped_workload,
    saturating_workload,
    single_master_workload,
    table1_workloads,
    write_heavy_workload,
)


def _runner(backend: str, runner: Optional[SweepRunner]) -> SweepRunner:
    """The runner an experiment uses (explicit runner wins)."""
    return runner if runner is not None else SweepRunner(backend=backend)


def experiment_table1(transactions: int = 150) -> Table1Result:
    """Table 1: TLM accuracy vs RTL over the three traffic suites."""
    return run_table1(table1_workloads(transactions))


def experiment_speed(
    transactions: int = 150, include_thread: bool = True
) -> SpeedReport:
    """§4 speed: RTL vs TLM Kcycles/s, plus the single-master case."""
    return speed_comparison(
        multi_master=table1_workloads(transactions)[0],
        single_master=single_master_workload(transactions * 2),
        include_thread=include_thread,
    )


# -- ablation A2: write buffer --------------------------------------------------


@dataclass
class WriteBufferPoint:
    """One write-buffer configuration's outcome."""

    label: str
    depth: int
    cycles: int
    absorbed: int
    mean_write_latency: float


def _collect_write_latency(
    point: SweepPoint, platform, result
) -> Dict[str, object]:
    """Mean write latency across all masters (collector, picklable)."""
    writes = [
        txn
        for agent in platform_agents(platform)
        for txn in agent.completed
        if txn.is_write
    ]
    mean = (
        sum(txn.finished_at - txn.issued_at for txn in writes) / len(writes)
        if writes
        else 0.0
    )
    return {"mean_write_latency": mean}


def experiment_write_buffer(
    transactions: int = 200,
    depths: Tuple[int, ...] = (1, 2, 4, 8),
    backend: str = "serial",
    runner: Optional[SweepRunner] = None,
) -> List[WriteBufferPoint]:
    """Write-buffer off + depth sweep on a write-heavy workload."""
    spec = paper_topology(workload=write_heavy_workload(transactions))
    grid = sweep(
        spec, axis="write_buffer_enabled", values=(False,), labels=("off",)
    )
    grid += sweep(
        spec,
        axis="write_buffer_depth",
        values=depths,
        labels=tuple(f"depth{d}" for d in depths),
    )
    records = _runner(backend, runner).run(grid, collect=_collect_write_latency)
    return [
        WriteBufferPoint(
            label=record.label,
            depth=(
                0
                if record.axis == "write_buffer_enabled"
                else int(record.value)
            ),
            cycles=record.cycles,
            absorbed=record.absorbed_writes,
            mean_write_latency=record.metric("mean_write_latency"),  # type: ignore[arg-type]
        )
        for record in records
    ]


# -- ablation A3: bank interleaving via the BI --------------------------------------


@dataclass
class InterleavingPoint:
    """BI on/off outcome on the bank-striped workload."""

    label: str
    cycles: int
    utilization: float
    prepared_banks: int
    row_hit_rate: float


def _collect_bank_stats(
    point: SweepPoint, platform, result
) -> Dict[str, object]:
    """DDRC bank-management counters (collector, picklable)."""
    return {
        "prepared_banks": platform.ddrc.prepared_banks,
        "row_hit_rate": platform.ddrc.row_hit_rate(),
    }


def experiment_bank_interleaving(
    transactions: int = 200,
    backend: str = "serial",
    runner: Optional[SweepRunner] = None,
) -> List[InterleavingPoint]:
    """BI on vs off: throughput and DDR utilization on striped traffic."""
    spec = paper_topology(workload=bank_striped_workload(transactions))
    grid = sweep(
        spec,
        axis="bus_interface_enabled",
        values=(True, False),
        labels=("bi-on", "bi-off"),
    )
    records = _runner(backend, runner).run(grid, collect=_collect_bank_stats)
    return [
        InterleavingPoint(
            label=record.label,
            cycles=record.cycles,
            utilization=record.utilization,
            prepared_banks=record.metric("prepared_banks"),  # type: ignore[arg-type]
            row_hit_rate=record.metric("row_hit_rate"),  # type: ignore[arg-type]
        )
        for record in records
    ]


# -- ablation A4: QoS guarantee (plain AHB vs AHB+) -----------------------------------


@dataclass
class QosPoint:
    """Deadline performance of one bus architecture."""

    label: str
    cycles: int
    rt_transactions: int
    deadline_misses: int
    worst_latency: int

    @property
    def miss_rate(self) -> float:
        if self.rt_transactions == 0:
            return 0.0
        return self.deadline_misses / self.rt_transactions


def _collect_deadline_stats(
    point: SweepPoint, platform, result
) -> Dict[str, object]:
    """RT master deadline outcomes (collector, picklable).

    The RT master index comes from the point's own workload, so the
    collector is self-contained and works inside pool workers.
    """
    rt_index = next(iter(point.spec.workload.qos_map()))
    rt_txns = platform_agents(platform)[rt_index].completed
    return {
        "rt_transactions": len(rt_txns),
        "rt_misses": sum(
            1 for txn in rt_txns if txn.met_deadline is False
        ),
        "rt_worst_latency": max(
            (txn.finished_at - txn.issued_at) for txn in rt_txns
        ),
    }


def experiment_qos(
    transactions: int = 150,
    backend: str = "serial",
    runner: Optional[SweepRunner] = None,
) -> List[QosPoint]:
    """Paper motivation: AMBA2.0 cannot guarantee QoS; AHB+ can.

    One spec, two engines — the sweep axis is the abstraction itself.
    """
    spec = paper_topology(workload=saturating_workload(transactions))
    grid = sweep(
        spec,
        axis="engine",
        values=("plain", "tlm"),
        labels=("plain-ahb", "ahb+"),
    )
    records = _runner(backend, runner).run(grid, collect=_collect_deadline_stats)
    return [
        QosPoint(
            label=record.label,
            cycles=record.cycles,
            rt_transactions=record.metric("rt_transactions"),  # type: ignore[arg-type]
            deadline_misses=record.metric("rt_misses"),  # type: ignore[arg-type]
            worst_latency=record.metric("rt_worst_latency"),  # type: ignore[arg-type]
        )
        for record in records
    ]


# -- ablation A5: arbitration filters ----------------------------------------------------


@dataclass
class FilterPoint:
    """Outcome with one filter disabled."""

    disabled: str
    cycles: int
    rt_misses: int
    utilization: float


def filter_ablation_grid(transactions: int = 120) -> List[SweepPoint]:
    """The A5 grid: each switchable filter disabled in turn.

    Shared with the benchmark layer, which wall-clocks this exact grid
    serial vs process for the BENCH sweep entry.
    """
    spec = paper_topology(workload=saturating_workload(transactions // 2))
    cases: List[Tuple[str, Tuple[str, ...]]] = [("none", ())]
    cases.extend((name, (name,)) for name in SWITCHABLE_FILTERS)
    # The urgency and real-time filters back each other up; disabling
    # both removes the QoS guarantee entirely.
    cases.append(("urgency+real-time", ("urgency", "real-time")))
    return sweep(
        spec,
        axis="disabled_filters",
        values=tuple(disabled for _label, disabled in cases),
        labels=tuple(label for label, _disabled in cases),
    )


def experiment_filters(
    transactions: int = 120,
    backend: str = "serial",
    runner: Optional[SweepRunner] = None,
) -> List[FilterPoint]:
    """Disable each switchable filter in turn under RT saturation.

    The saturating workload (RT stream at lowest priority, three greedy
    DMA movers) is where arbitration decisions matter: disabling the
    urgency or real-time filters costs stream deadlines.
    """
    records = _runner(backend, runner).run(filter_ablation_grid(transactions))
    return [
        FilterPoint(
            disabled=record.label,
            cycles=record.cycles,
            rt_misses=record.rt_deadline_misses,
            utilization=record.utilization,
        )
        for record in records
    ]
