"""Transaction-by-transaction cross-engine trace comparison.

The paper's accuracy argument rests on every engine serving the same
offered traffic; :func:`trace_diff` makes that checkable record by
record.  Two traces (captured with
:class:`~repro.traffic.trace.TraceRecorder` on any two engines, or one
engine vs. an archived file) are aligned per master in issue order and
compared on their *functional* fields — master, kind, address, beats,
beat size, wrapping, data payload.  Timing fields are never part of
the verdict: engines legitimately disagree on cycles (that is the
point of the abstraction-level comparison), so the diff reports the
finish-cycle skew separately as an observation, not a failure.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import TrafficError
from repro.traffic.trace import TraceRecord, group_by_master

#: Fields that define what a transaction *is*, independent of engine
#: timing.  ``data`` covers both directions: write payloads offered and
#: read data returned by the memory system.  ``resp`` folds the fault
#: outcome in: an injected ERROR/RETRY abort must land on the same
#: transaction at every engine.
FUNCTIONAL_FIELDS = (
    "kind",
    "addr",
    "beats",
    "size_bytes",
    "wrapping",
    "data",
    "resp",
)


@dataclass(frozen=True)
class TraceMismatch:
    """One field-level disagreement between aligned records."""

    master: int
    #: Position within the master's issue-ordered stream.
    position: int
    field: str
    left: object
    right: object

    def describe(self) -> str:
        return (
            f"master {self.master} txn {self.position}: {self.field} "
            f"{self.left!r} != {self.right!r}"
        )


@dataclass(frozen=True)
class TraceDiffResult:
    """Outcome of one :func:`trace_diff` comparison."""

    #: Master indices compared (union of both traces).
    masters: Tuple[int, ...]
    #: Aligned record pairs compared.
    compared: int
    #: Total field-level disagreements found (the enumerated
    #: ``mismatches`` tuple is capped; this count is not).
    mismatch_count: int
    mismatches: Tuple[TraceMismatch, ...]
    #: ``(master, count)`` of records only the left trace has.
    only_left: Tuple[Tuple[int, int], ...]
    only_right: Tuple[Tuple[int, int], ...]
    #: Largest ``|finished_at_left - finished_at_right|`` over aligned
    #: pairs — timing drift between the engines, informational only.
    max_finish_skew: int

    @property
    def functionally_identical(self) -> bool:
        """Same transaction streams, field for field, nothing extra."""
        return (
            self.mismatch_count == 0
            and not self.only_left
            and not self.only_right
        )

    def summary(self) -> str:
        """One-line human verdict."""
        if self.functionally_identical:
            return (
                f"identical: {self.compared} transactions across "
                f"{len(self.masters)} masters match on every functional "
                f"field (max finish skew {self.max_finish_skew} cycles)"
            )
        extra = sum(n for _m, n in self.only_left) + sum(
            n for _m, n in self.only_right
        )
        return (
            f"DIFFERENT: {self.mismatch_count} field mismatches, "
            f"{extra} unmatched records over {self.compared} compared"
        )


def trace_diff(
    left: Iterable[TraceRecord],
    right: Iterable[TraceRecord],
    fields: Sequence[str] = FUNCTIONAL_FIELDS,
    max_mismatches: int = 100,
) -> TraceDiffResult:
    """Align two traces per master (issue order) and compare field-wise.

    Alignment is positional within each master's stream: record *k* of
    master *m* on the left pairs with record *k* of master *m* on the
    right.  Per-master issue order is preserved by every engine (a
    master has one transaction outstanding at a time), so positional
    pairing is exact even though the engines interleave masters — and
    complete differently in time.  Every field-level disagreement is
    counted (``mismatch_count``); at most *max_mismatches* of them are
    enumerated as :class:`TraceMismatch` entries.
    """
    unknown = set(fields) - {f.name for f in dataclass_fields(TraceRecord)}
    if unknown:
        raise TrafficError(f"unknown trace fields {sorted(unknown)}")
    if max_mismatches < 1:
        raise TrafficError("max_mismatches must be positive")
    left_streams = group_by_master(left, sort=True)
    right_streams = group_by_master(right, sort=True)
    masters = tuple(sorted(set(left_streams) | set(right_streams)))
    mismatches: List[TraceMismatch] = []
    mismatch_count = 0
    only_left: List[Tuple[int, int]] = []
    only_right: List[Tuple[int, int]] = []
    compared = 0
    max_skew = 0
    for master in masters:
        ls = left_streams.get(master, [])
        rs = right_streams.get(master, [])
        if len(ls) > len(rs):
            only_left.append((master, len(ls) - len(rs)))
        elif len(rs) > len(ls):
            only_right.append((master, len(rs) - len(ls)))
        for position, (lrec, rrec) in enumerate(zip(ls, rs)):
            compared += 1
            max_skew = max(max_skew, abs(lrec.finished_at - rrec.finished_at))
            for name in fields:
                lval = getattr(lrec, name)
                rval = getattr(rrec, name)
                if lval != rval:
                    mismatch_count += 1
                    if len(mismatches) < max_mismatches:
                        mismatches.append(
                            TraceMismatch(
                                master=master,
                                position=position,
                                field=name,
                                left=lval,
                                right=rval,
                            )
                        )
    return TraceDiffResult(
        masters=masters,
        compared=compared,
        mismatch_count=mismatch_count,
        mismatches=tuple(mismatches),
        only_left=tuple(only_left),
        only_right=tuple(only_right),
        max_finish_skew=max_skew,
    )
