"""Persistent Kcycles/s benchmark reports (the BENCH trajectory).

The paper's headline result is simulation *speed* (§4: 0.47 Kcycles/s
RTL vs 166/456 Kcycles/s TLM), so this repository tracks its own speed
trajectory across PRs: :func:`run_speed_suite` wall-clocks the canonical
§4 workloads, :func:`write_report` persists the numbers to
``BENCH_speed.json`` together with the git revision, and
:func:`compare_reports` flags regressions against the committed
baseline.  ``python -m benchmarks.bench_regression`` (or ``make bench``)
is the CLI over these helpers.

The committed ``BENCH_speed.json`` holds two measurement blocks:

* ``seed`` — the numbers measured on the seed implementation (the
  "before" of the first optimisation PR), kept verbatim so every later
  measurement can report its cumulative speedup, and
* ``current`` — the most recent committed measurement, which future PRs
  regress against (default tolerance: 20 %).

Absolute Kcycles/s are host-dependent, so every measurement block
records the host it ran on and :func:`compare_reports` refuses to
grade a fresh run against a baseline from a *different* host (the CLI
then asks for a local ``--write-baseline`` instead of failing
spuriously on a slower machine).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.speed import SpeedSample, measure_rtl, measure_tlm
from repro.errors import SimulationError
from repro.exec import SweepRunner, default_workers
from repro.traffic.generator import generate_items
from repro.traffic.patterns import DMA
from repro.traffic.workloads import single_master_workload, table1_pattern_a

#: Schema version of BENCH_speed.json.
SCHEMA = 1

#: Canonical suite sizing: large enough for stable timings, small
#: enough that the pin-accurate run finishes in well under a second.
TLM_TRANSACTIONS = 300
SINGLE_MASTER_TRANSACTIONS = 600
RTL_TRANSACTIONS = 40

#: Traffic-generation throughput suite sizing.
TRAFFICGEN_ITEMS = 30_000
TRAFFICGEN_SEED = 11

#: Sweep-execution suite sizing (the A5 filter-ablation grid).
SWEEP_TRANSACTIONS = 120

#: Models measured by the suite (report keys).
MODELS = ("tlm_method", "tlm_single_master", "rtl")


def git_revision(default: str = "unknown") -> str:
    """Short git revision of the working tree, or *default*."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return default
    if out.returncode != 0:
        return default
    return out.stdout.strip() or default


def _sample_dict(sample: SpeedSample) -> Dict[str, float]:
    return {
        "kcycles_per_sec": round(sample.kcycles_per_sec, 3),
        "simulated_cycles": sample.simulated_cycles,
        "wall_seconds": round(sample.wall_seconds, 6),
    }


def run_trafficgen_suite(
    items: int = TRAFFICGEN_ITEMS, repeats: int = 3
) -> Dict[str, object]:
    """Traffic-generation throughput: items/s per generator mode.

    Times the canonical DMA pattern (long bursts, 50 % writes, so the
    data-word draws are exercised) through the legacy-exact ``compat``
    mode and the batched ``stream`` mode.
    """
    modes: Dict[str, object] = {}
    rates: Dict[str, float] = {}
    for mode in ("compat", "stream"):
        best = float("inf")
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            generated = generate_items(
                DMA, 0, items, TRAFFICGEN_SEED, mode=mode
            )
            best = min(best, time.perf_counter() - start)
        if len(generated) != items:  # rate guard: must survive python -O
            raise SimulationError(
                f"{mode} generator produced {len(generated)} of {items} items"
            )
        rates[mode] = items / best
        modes[mode] = {
            "items_per_sec": round(rates[mode], 1),
            "wall_seconds": round(best, 6),
        }
    return {
        "items": items,
        "modes": modes,
        "stream_over_compat": round(rates["stream"] / rates["compat"], 3),
    }


def run_sweep_suite(
    transactions: int = SWEEP_TRANSACTIONS,
    workers: Optional[int] = None,
) -> Dict[str, object]:
    """End-to-end sweep wall time: serial vs process on the A5 grid.

    Also a determinism gate: the two backends' records must be equal,
    or the measurement itself raises.
    """
    from repro.analysis.experiments import filter_ablation_grid

    grid = filter_ablation_grid(transactions)
    start = time.perf_counter()
    serial_records = SweepRunner(backend="serial").run(grid)
    serial_wall = time.perf_counter() - start
    start = time.perf_counter()
    process_records = SweepRunner(backend="process", workers=workers).run(grid)
    process_wall = time.perf_counter() - start
    if serial_records != process_records:
        raise SimulationError(
            "process-backend sweep records diverged from the serial backend"
        )
    return {
        "points": len(grid),
        "transactions": transactions,
        "workers": workers if workers is not None else default_workers(len(grid)),
        "serial_wall_seconds": round(serial_wall, 6),
        "process_wall_seconds": round(process_wall, 6),
        "process_over_serial": round(serial_wall / process_wall, 3),
    }


def run_speed_suite(
    repeats_tlm: int = 5,
    repeats_rtl: int = 3,
    include_trafficgen: bool = True,
    include_sweep: bool = True,
) -> Dict[str, object]:
    """Run the §4 speed suite; returns one measurement block.

    Best-of-N timing per model (platform construction untimed), exactly
    the methodology of :mod:`repro.analysis.speed`.  The block also
    carries the traffic-generation items/s and serial-vs-process sweep
    wall-time entries unless switched off.
    """
    tlm = measure_tlm(table1_pattern_a(TLM_TRANSACTIONS), repeats=repeats_tlm)
    single = measure_tlm(
        single_master_workload(SINGLE_MASTER_TRANSACTIONS), repeats=repeats_tlm
    )
    rtl = measure_rtl(table1_pattern_a(RTL_TRANSACTIONS), repeats=repeats_rtl)
    speedup = (
        tlm.kcycles_per_sec / rtl.kcycles_per_sec
        if rtl.kcycles_per_sec > 0
        else float("inf")
    )
    block: Dict[str, object] = {
        "git_rev": git_revision(),
        "python": sys.version.split()[0],
        "host": platform.node() or "unknown",
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "models": {
            "tlm_method": _sample_dict(tlm),
            "tlm_single_master": _sample_dict(single),
            "rtl": _sample_dict(rtl),
        },
        "tlm_over_rtl_speedup": round(speedup, 2),
    }
    if include_trafficgen:
        block["trafficgen"] = run_trafficgen_suite()
    if include_sweep:
        block["sweep"] = run_sweep_suite()
    return block


def speedups_vs(block: Dict[str, object], reference: Dict[str, object]) -> Dict[str, float]:
    """Per-model Kcycles/s ratio of *block* over *reference*."""
    ratios: Dict[str, float] = {}
    block_models = block["models"]  # type: ignore[index]
    ref_models = reference["models"]  # type: ignore[index]
    for model in MODELS:
        mine = block_models.get(model)  # type: ignore[union-attr]
        theirs = ref_models.get(model)  # type: ignore[union-attr]
        if not mine or not theirs:
            continue
        base = theirs["kcycles_per_sec"]
        if base > 0:
            ratios[model] = round(mine["kcycles_per_sec"] / base, 3)
    return ratios


def make_report(
    current: Dict[str, object], seed: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Assemble the full BENCH_speed.json document."""
    if seed is None:
        seed = current
    return {
        "schema": SCHEMA,
        "note": (
            "Kcycles/s are host-dependent; 'seed' was measured on the "
            "pre-optimisation implementation on the same host as 'current'."
        ),
        "seed": seed,
        "current": current,
        "speedup_vs_seed": speedups_vs(current, seed),
    }


def write_report(path: Path, report: Dict[str, object]) -> None:
    """Persist *report* as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def load_report(path: Path) -> Dict[str, object]:
    """Load a previously written BENCH_speed.json."""
    return json.loads(Path(path).read_text())


def same_host(fresh: Dict[str, object], baseline: Dict[str, object]) -> bool:
    """Whether two blocks/reports were (as far as recorded) measured on
    the same machine.  Missing host information counts as comparable so
    pre-host-field reports keep working."""
    base_block = baseline.get("current", baseline)
    mine = fresh.get("host")
    theirs = base_block.get("host")  # type: ignore[union-attr]
    return mine is None or theirs is None or mine == theirs


def compare_reports(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.20,
) -> List[str]:
    """Regressions of *fresh* against *baseline*'s ``current`` block.

    Returns human-readable failure strings; empty means every model is
    within *threshold* of the committed baseline (or faster).  A
    baseline recorded on a different host is not gradable on absolute
    Kcycles/s — they do not transfer between machines — so those
    produce no failures; callers should check :func:`same_host` and
    prompt for a local baseline instead.  Simulated *cycle counts* are
    pure determinism (seeded workloads), so they are gated on every
    host: a fresh run whose cycle counts drift from the committed
    baseline fails regardless of machine.
    """
    failures: List[str] = []
    base_block = baseline.get("current", baseline)
    base_models = base_block.get("models", {})  # type: ignore[union-attr]
    fresh_models = fresh["models"]  # type: ignore[index]
    for model in MODELS:
        base = base_models.get(model)
        mine = fresh_models.get(model)  # type: ignore[union-attr]
        if not base or not mine:
            continue
        if mine["simulated_cycles"] != base["simulated_cycles"]:
            failures.append(
                f"{model}: simulated {mine['simulated_cycles']} cycles but "
                f"baseline recorded {base['simulated_cycles']} "
                f"(rev {base_block.get('git_rev', '?')}) — determinism drift"
            )
    if not same_host(fresh, baseline):
        return failures
    for model in MODELS:
        base = base_models.get(model)
        mine = fresh_models.get(model)  # type: ignore[union-attr]
        if not base or not mine:
            continue
        floor = base["kcycles_per_sec"] * (1.0 - threshold)
        if mine["kcycles_per_sec"] < floor:
            failures.append(
                f"{model}: {mine['kcycles_per_sec']:.1f} Kcyc/s is more than "
                f"{threshold:.0%} below baseline "
                f"{base['kcycles_per_sec']:.1f} Kcyc/s "
                f"(rev {base_block.get('git_rev', '?')})"
            )
    return failures


def render_block(block: Dict[str, object], title: str = "speed") -> str:
    """One-measurement summary table for terminals/logs."""
    lines = [f"== {title} (rev {block.get('git_rev', '?')}) =="]
    models = block["models"]  # type: ignore[index]
    for model in MODELS:
        sample = models.get(model)  # type: ignore[union-attr]
        if sample:
            lines.append(
                f"  {model:<20} {sample['kcycles_per_sec']:>10.1f} Kcycles/s"
                f"  ({sample['simulated_cycles']} cycles in "
                f"{sample['wall_seconds']:.4f}s)"
            )
    lines.append(f"  TLM/RTL speedup: {block.get('tlm_over_rtl_speedup', '?')}x")
    trafficgen = block.get("trafficgen")
    if trafficgen:
        for mode, sample in trafficgen["modes"].items():  # type: ignore[index]
            lines.append(
                f"  trafficgen/{mode:<9} {sample['items_per_sec']:>12,.0f} items/s"
            )
        lines.append(
            f"  trafficgen stream/compat: "
            f"{trafficgen['stream_over_compat']}x"  # type: ignore[index]
        )
    sweep = block.get("sweep")
    if sweep:
        lines.append(
            f"  sweep ({sweep['points']} pts, {sweep['workers']} workers): "  # type: ignore[index]
            f"serial {sweep['serial_wall_seconds']:.3f}s, "  # type: ignore[index]
            f"process {sweep['process_wall_seconds']:.3f}s "  # type: ignore[index]
            f"({sweep['process_over_serial']}x)"  # type: ignore[index]
        )
    return "\n".join(lines)
