"""Persistent Kcycles/s benchmark reports (the BENCH trajectory).

The paper's headline result is simulation *speed* (§4: 0.47 Kcycles/s
RTL vs 166/456 Kcycles/s TLM), so this repository tracks its own speed
trajectory across PRs: :func:`run_speed_suite` wall-clocks the canonical
§4 workloads, :func:`write_report` persists the numbers to
``BENCH_speed.json`` together with the git revision, and
:func:`compare_reports` flags regressions against the committed
baseline.  ``python -m benchmarks.bench_regression`` (or ``make bench``)
is the CLI over these helpers.

The committed ``BENCH_speed.json`` holds two measurement blocks:

* ``seed`` — the numbers measured on the seed implementation (the
  "before" of the first optimisation PR), kept verbatim so every later
  measurement can report its cumulative speedup, and
* ``current`` — the most recent committed measurement, which future PRs
  regress against (default tolerance: 20 %).

Absolute Kcycles/s are host-dependent, so every measurement block
records the host it ran on and :func:`compare_reports` refuses to
grade a fresh run against a baseline from a *different* host (the CLI
then asks for a local ``--write-baseline`` instead of failing
spuriously on a slower machine).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.speed import SpeedSample, measure_rtl, measure_tlm
from repro.traffic.workloads import single_master_workload, table1_pattern_a

#: Schema version of BENCH_speed.json.
SCHEMA = 1

#: Canonical suite sizing: large enough for stable timings, small
#: enough that the pin-accurate run finishes in well under a second.
TLM_TRANSACTIONS = 300
SINGLE_MASTER_TRANSACTIONS = 600
RTL_TRANSACTIONS = 40

#: Models measured by the suite (report keys).
MODELS = ("tlm_method", "tlm_single_master", "rtl")


def git_revision(default: str = "unknown") -> str:
    """Short git revision of the working tree, or *default*."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return default
    if out.returncode != 0:
        return default
    return out.stdout.strip() or default


def _sample_dict(sample: SpeedSample) -> Dict[str, float]:
    return {
        "kcycles_per_sec": round(sample.kcycles_per_sec, 3),
        "simulated_cycles": sample.simulated_cycles,
        "wall_seconds": round(sample.wall_seconds, 6),
    }


def run_speed_suite(
    repeats_tlm: int = 5, repeats_rtl: int = 3
) -> Dict[str, object]:
    """Run the §4 speed suite; returns one measurement block.

    Best-of-N timing per model (platform construction untimed), exactly
    the methodology of :mod:`repro.analysis.speed`.
    """
    tlm = measure_tlm(table1_pattern_a(TLM_TRANSACTIONS), repeats=repeats_tlm)
    single = measure_tlm(
        single_master_workload(SINGLE_MASTER_TRANSACTIONS), repeats=repeats_tlm
    )
    rtl = measure_rtl(table1_pattern_a(RTL_TRANSACTIONS), repeats=repeats_rtl)
    speedup = (
        tlm.kcycles_per_sec / rtl.kcycles_per_sec
        if rtl.kcycles_per_sec > 0
        else float("inf")
    )
    return {
        "git_rev": git_revision(),
        "python": sys.version.split()[0],
        "host": platform.node() or "unknown",
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "models": {
            "tlm_method": _sample_dict(tlm),
            "tlm_single_master": _sample_dict(single),
            "rtl": _sample_dict(rtl),
        },
        "tlm_over_rtl_speedup": round(speedup, 2),
    }


def speedups_vs(block: Dict[str, object], reference: Dict[str, object]) -> Dict[str, float]:
    """Per-model Kcycles/s ratio of *block* over *reference*."""
    ratios: Dict[str, float] = {}
    block_models = block["models"]  # type: ignore[index]
    ref_models = reference["models"]  # type: ignore[index]
    for model in MODELS:
        mine = block_models.get(model)  # type: ignore[union-attr]
        theirs = ref_models.get(model)  # type: ignore[union-attr]
        if not mine or not theirs:
            continue
        base = theirs["kcycles_per_sec"]
        if base > 0:
            ratios[model] = round(mine["kcycles_per_sec"] / base, 3)
    return ratios


def make_report(
    current: Dict[str, object], seed: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """Assemble the full BENCH_speed.json document."""
    if seed is None:
        seed = current
    return {
        "schema": SCHEMA,
        "note": (
            "Kcycles/s are host-dependent; 'seed' was measured on the "
            "pre-optimisation implementation on the same host as 'current'."
        ),
        "seed": seed,
        "current": current,
        "speedup_vs_seed": speedups_vs(current, seed),
    }


def write_report(path: Path, report: Dict[str, object]) -> None:
    """Persist *report* as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def load_report(path: Path) -> Dict[str, object]:
    """Load a previously written BENCH_speed.json."""
    return json.loads(Path(path).read_text())


def same_host(fresh: Dict[str, object], baseline: Dict[str, object]) -> bool:
    """Whether two blocks/reports were (as far as recorded) measured on
    the same machine.  Missing host information counts as comparable so
    pre-host-field reports keep working."""
    base_block = baseline.get("current", baseline)
    mine = fresh.get("host")
    theirs = base_block.get("host")  # type: ignore[union-attr]
    return mine is None or theirs is None or mine == theirs


def compare_reports(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.20,
) -> List[str]:
    """Regressions of *fresh* against *baseline*'s ``current`` block.

    Returns human-readable failure strings; empty means every model is
    within *threshold* of the committed baseline (or faster).  A
    baseline recorded on a different host is not gradable — absolute
    Kcycles/s do not transfer between machines — so it produces no
    failures; callers should check :func:`same_host` and prompt for a
    local baseline instead.
    """
    if not same_host(fresh, baseline):
        return []
    failures: List[str] = []
    base_block = baseline.get("current", baseline)
    base_models = base_block.get("models", {})  # type: ignore[union-attr]
    fresh_models = fresh["models"]  # type: ignore[index]
    for model in MODELS:
        base = base_models.get(model)
        mine = fresh_models.get(model)  # type: ignore[union-attr]
        if not base or not mine:
            continue
        floor = base["kcycles_per_sec"] * (1.0 - threshold)
        if mine["kcycles_per_sec"] < floor:
            failures.append(
                f"{model}: {mine['kcycles_per_sec']:.1f} Kcyc/s is more than "
                f"{threshold:.0%} below baseline "
                f"{base['kcycles_per_sec']:.1f} Kcyc/s "
                f"(rev {base_block.get('git_rev', '?')})"
            )
    return failures


def render_block(block: Dict[str, object], title: str = "speed") -> str:
    """One-measurement summary table for terminals/logs."""
    lines = [f"== {title} (rev {block.get('git_rev', '?')}) =="]
    models = block["models"]  # type: ignore[index]
    for model in MODELS:
        sample = models.get(model)  # type: ignore[union-attr]
        if sample:
            lines.append(
                f"  {model:<20} {sample['kcycles_per_sec']:>10.1f} Kcycles/s"
                f"  ({sample['simulated_cycles']} cycles in "
                f"{sample['wall_seconds']:.4f}s)"
            )
    lines.append(f"  TLM/RTL speedup: {block.get('tlm_over_rtl_speedup', '?')}x")
    return "\n".join(lines)
