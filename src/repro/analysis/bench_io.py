"""Persistent Kcycles/s benchmark reports (the BENCH trajectory).

The paper's headline result is simulation *speed* (§4: 0.47 Kcycles/s
RTL vs 166/456 Kcycles/s TLM), so this repository tracks its own speed
trajectory across PRs: :func:`run_speed_suite` wall-clocks the canonical
§4 workloads, :func:`write_report` persists the numbers to
``BENCH_speed.json`` together with the git revision, and
:func:`compare_reports` flags regressions against the committed
baseline.  ``python -m benchmarks.bench_regression`` (or ``make bench``)
is the CLI over these helpers.

The committed ``BENCH_speed.json`` holds two measurement blocks:

* ``seed`` — the numbers measured on the seed implementation (the
  "before" of the first optimisation PR), kept verbatim so every later
  measurement can report its cumulative speedup, and
* ``current`` — the most recent committed measurement, which future PRs
  regress against (default tolerance: 20 %).

Absolute Kcycles/s are host-dependent, so every measurement block
records the host it ran on and :func:`compare_reports` refuses to
grade a fresh run against a baseline from a *different* host (the CLI
then asks for a local ``--write-baseline`` instead of failing
spuriously on a slower machine).
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.speed import SpeedSample, measure_rtl, measure_tlm
from repro.errors import ConfigError, SimulationError
from repro.exec import SweepRunner, default_workers, shared_pool
from repro.traffic.generator import generate_items
from repro.traffic.patterns import DMA
from repro.traffic.workloads import single_master_workload, table1_pattern_a

#: Schema version of BENCH_speed.json.
SCHEMA = 1

#: Canonical suite sizing: large enough for stable timings, small
#: enough that the pin-accurate run finishes in well under a second.
TLM_TRANSACTIONS = 300
SINGLE_MASTER_TRANSACTIONS = 600
RTL_TRANSACTIONS = 40

#: Traffic-generation throughput suite sizing.
TRAFFICGEN_ITEMS = 30_000
TRAFFICGEN_SEED = 11

#: Sweep-execution suite sizing (the A5 filter-ablation grid).
SWEEP_TRANSACTIONS = 120

#: Lockstep-batch suite sizing: a seed-axis grid of single-master TLM
#: points, the structure-of-arrays backend's home turf.
BATCH_SEEDS = 100
BATCH_TRANSACTIONS = 300

#: Serving suite sizing: grid size per submission and the burst shape
#: (concurrent clients x duplicate submissions each).
SERVE_TRANSACTIONS = 60
SERVE_CLIENTS = 4
SERVE_SUBMISSIONS_PER_CLIENT = 3

#: Models measured by the suite (report keys).
MODELS = ("tlm_method", "tlm_single_master", "rtl")

#: model -> (engine level, workload factory): the single definition of
#: what each bench model runs.  The speed suite wall-clocks these and
#: ``benchmarks/profile_hotspots.py`` profiles the same pairs, so the
#: profiler's evidence always matches what ``make bench`` times.
BENCH_MODEL_RUNS = {
    "tlm_method": ("tlm", lambda: table1_pattern_a(TLM_TRANSACTIONS)),
    "tlm_single_master": (
        "tlm",
        lambda: single_master_workload(SINGLE_MASTER_TRANSACTIONS),
    ),
    "rtl": ("rtl", lambda: table1_pattern_a(RTL_TRANSACTIONS)),
}


def git_revision(default: str = "unknown") -> str:
    """Short git revision of the working tree, or *default*."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return default
    if out.returncode != 0:
        return default
    return out.stdout.strip() or default


def _sample_dict(sample: SpeedSample) -> Dict[str, float]:
    return {
        "kcycles_per_sec": round(sample.kcycles_per_sec, 3),
        "simulated_cycles": sample.simulated_cycles,
        "wall_seconds": round(sample.wall_seconds, 6),
    }


def run_trafficgen_suite(
    items: int = TRAFFICGEN_ITEMS, repeats: int = 3
) -> Dict[str, object]:
    """Traffic-generation throughput: items/s per generator mode.

    Times the canonical DMA pattern (long bursts, 50 % writes, so the
    data-word draws are exercised) through the legacy-exact ``compat``
    mode and the batched ``stream`` mode.
    """
    modes: Dict[str, object] = {}
    rates: Dict[str, float] = {}
    for mode in ("compat", "stream"):
        best = float("inf")
        for _ in range(max(repeats, 1)):
            start = time.perf_counter()
            generated = generate_items(
                DMA, 0, items, TRAFFICGEN_SEED, mode=mode
            )
            best = min(best, time.perf_counter() - start)
        if len(generated) != items:  # rate guard: must survive python -O
            raise SimulationError(
                f"{mode} generator produced {len(generated)} of {items} items"
            )
        rates[mode] = items / best
        modes[mode] = {
            "items_per_sec": round(rates[mode], 1),
            "wall_seconds": round(best, 6),
        }
    return {
        "items": items,
        "modes": modes,
        "stream_over_compat": round(rates["stream"] / rates["compat"], 3),
    }


def run_sweep_suite(
    transactions: int = SWEEP_TRANSACTIONS,
    workers: Optional[int] = None,
    repeats: int = 3,
) -> Dict[str, object]:
    """End-to-end sweep wall time: serial vs process on the A5 grid.

    Both backends run best-of-*repeats*; the process backend maps over
    one :func:`~repro.exec.shared_pool`, so only the first repeat pays
    pool start-up and the recorded wall time reflects a warm pool — the
    steady state of any caller that executes more than one grid.  Also
    a determinism gate: every repeat's records must equal the serial
    records, or the measurement itself raises.
    """
    from repro.analysis.experiments import filter_ablation_grid

    grid = filter_ablation_grid(transactions)
    resolved_workers = (
        workers if workers is not None else default_workers(len(grid))
    )
    repeats = max(repeats, 1)

    serial_runner = SweepRunner(backend="serial")
    serial_wall = float("inf")
    serial_records = None
    for _ in range(repeats):
        start = time.perf_counter()
        records = serial_runner.run(grid)
        serial_wall = min(serial_wall, time.perf_counter() - start)
        if serial_records is not None and records != serial_records:
            raise SimulationError("serial sweep records changed on repeat")
        serial_records = records

    process_runner = SweepRunner(
        backend="process",
        workers=resolved_workers,
        pool=shared_pool(resolved_workers),
    )
    process_wall = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        process_records = process_runner.run(grid)
        process_wall = min(process_wall, time.perf_counter() - start)
        if serial_records != process_records:
            raise SimulationError(
                "process-backend sweep records diverged from the serial backend"
            )
    return {
        "points": len(grid),
        "transactions": transactions,
        "workers": resolved_workers,
        "repeats": repeats,
        "serial_wall_seconds": round(serial_wall, 6),
        "process_wall_seconds": round(process_wall, 6),
        "process_over_serial": round(serial_wall / process_wall, 3),
    }


def run_batch_suite(
    transactions: int = BATCH_TRANSACTIONS,
    seeds: int = BATCH_SEEDS,
    repeats: int = 3,
) -> Dict[str, object]:
    """Lockstep sweep throughput: serial vs batch on a seed-axis grid.

    The grid is *seeds* single-master TLM points differing only in the
    traffic seed — the shape Monte-Carlo sweeps produce and the
    structure-of-arrays backend lockstep-executes as one numpy program.
    Both backends run best-of-*repeats*; every batch repeat's records
    must equal the serial records (the bit-identical guarantee, measured
    rather than assumed) and every point must actually take the lockstep
    path — a silent fallback would time the serial executor twice and
    report a fake 1.0x.  Without numpy the block records
    ``available: False`` and skips the timing (the backend then degrades
    to per-point serial execution).
    """
    from repro.exec.batch import BATCHED, HAVE_NUMPY
    from repro.system import paper_topology, sweep as sweep_grid

    grid = sweep_grid(
        paper_topology(workload=single_master_workload(transactions)),
        axis="seed",
        values=range(seeds),
    )
    repeats = max(repeats, 1)
    block: Dict[str, object] = {
        "points": len(grid),
        "transactions": transactions,
        "repeats": repeats,
        "available": HAVE_NUMPY,
    }
    if not HAVE_NUMPY:
        return block

    serial_runner = SweepRunner(backend="serial")
    serial_wall = float("inf")
    serial_records = None
    for _ in range(repeats):
        start = time.perf_counter()
        records = serial_runner.run(grid)
        serial_wall = min(serial_wall, time.perf_counter() - start)
        if serial_records is not None and records != serial_records:
            raise SimulationError("serial sweep records changed on repeat")
        serial_records = records

    batch_runner = SweepRunner(backend="batch")
    batch_wall = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        batch_records = batch_runner.run(grid)
        batch_wall = min(batch_wall, time.perf_counter() - start)
        if batch_records != serial_records:
            raise SimulationError(
                "batch-backend sweep records diverged from the serial backend"
            )
        if any(label != BATCHED for label in batch_runner.dispatch_log):
            raise SimulationError(
                "batch suite grid fell back to serial execution; the "
                "timing would not measure the lockstep path"
            )
    block.update(
        {
            "serial_wall_seconds": round(serial_wall, 6),
            "batch_wall_seconds": round(batch_wall, 6),
            "serial_points_per_sec": round(len(grid) / serial_wall, 1),
            "batch_points_per_sec": round(len(grid) / batch_wall, 1),
            "batch_over_serial": round(serial_wall / batch_wall, 3),
        }
    )
    return block


def run_serve_suite(
    transactions: int = SERVE_TRANSACTIONS,
    clients: int = SERVE_CLIENTS,
    submissions_per_client: int = SERVE_SUBMISSIONS_PER_CLIENT,
) -> Dict[str, object]:
    """Serving-layer throughput: a burst of duplicate-heavy submissions.

    Hermetic and in-process: starts a :class:`~repro.serve.SweepServer`
    (auto backend, in-memory store) on a loopback port, primes the
    cache with two cold passes — a single-master seed grid the server
    routes through the lockstep batch backend, then the multi-master
    write-buffer grid that falls back to serial — and fires *clients*
    concurrent threads each submitting the write-buffer grid
    *submissions_per_client* times.  Every burst point must replay from
    the cache — the suite raises if the warm hit-rate is not 100 % or
    any burst record differs from the cold pass (the "cache hit is
    provably correct" guarantee, measured rather than assumed).

    Reported: cold/burst wall seconds, warm submissions/s and points/s,
    the overall cache hit-rate, the queue-depth high-water mark, and —
    since the server routes eligible coalesced bursts through the
    lockstep batch backend — the resolved backend plus which execution
    path served each burst's points.

    Two supervision metrics ride along, recorded rather than gated:
    the admission-control shed rate over the burst (0.0 unless the
    queue bound was hit) and a crash-recovery drill — a second server
    is started on the burst server's store with a journal holding six
    accepted-but-unfinished points, four of which the store already
    has.  The drill records how many replayed from the store versus
    re-ran, the replay hit-rate (4/6 by construction), and the
    wall-clock cost of draining the recovered backlog.
    """
    import threading

    from repro.exec import point_key
    from repro.serve import Journal, ServeClient, SweepServer
    from repro.serve.protocol import point_to_wire
    from repro.system import paper_topology, sweep as sweep_grid

    spec = paper_topology(transactions)
    grid = sweep_grid(spec, axis="write_buffer_depth", values=(1, 2, 4, 8))
    lockstep_grid = sweep_grid(
        paper_topology(workload=single_master_workload(transactions)),
        axis="seed",
        values=range(4),
    )
    clients = max(clients, 1)
    submissions_per_client = max(submissions_per_client, 1)

    with SweepServer() as server:
        host, port = server.address

        # Untimed primer: a lockstep-eligible burst, so the dispatch
        # report covers the batch path as well as the serial fallback.
        primer = ServeClient(host, port).submit(lockstep_grid)
        if primer.misses != len(lockstep_grid):
            raise SimulationError(
                f"lockstep primer expected {len(lockstep_grid)} misses, "
                f"got {primer.misses}"
            )

        start = time.perf_counter()
        cold = ServeClient(host, port).submit(grid)
        cold_wall = time.perf_counter() - start
        if cold.misses != len(grid):
            raise SimulationError(
                f"cold pass expected {len(grid)} misses, got {cold.misses}"
            )

        failures: List[str] = []

        def burst_worker() -> None:
            client = ServeClient(host, port)
            for _ in range(submissions_per_client):
                result = client.submit(grid)
                if result.hits != len(grid):
                    failures.append(
                        f"warm submission hit {result.hits}/{len(grid)}"
                    )
                if result.records != cold.records:
                    failures.append("burst records diverged from cold pass")

        threads = [
            threading.Thread(target=burst_worker) for _ in range(clients)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        burst_wall = time.perf_counter() - start
        if failures:
            raise SimulationError(
                f"serve burst failed: {failures[0]} "
                f"({len(failures)} failures total)"
            )
        stats = server.stats()

    # Admission-control shed rate over the whole run.  At these sizes
    # nothing sheds; the metric is recorded so a regression that starts
    # refusing warm work shows up in the trajectory, not as a gate.
    shed = int(stats.get("shed_submissions") or 0)
    admitted = int(stats.get("submissions") or 0)
    shed_rate = shed / (admitted + shed) if admitted + shed else 0.0

    # Recovery drill on a *separate* server so the burst stats above
    # stay pure: seed a journal with six accepted-but-unfinished points
    # (the four warm grid points plus two genuinely cold ones) and
    # start a server on the same store — restart-after-crash in
    # miniature.  Warm points must replay from the store; cold points
    # must re-run.
    cold_grid = sweep_grid(spec, axis="write_buffer_depth", values=(16, 32))
    recovery_journal = Journal()
    for point in list(grid) + list(cold_grid):
        recovery_journal.record_accept(
            point_key(point.spec, engine=point.engine, max_cycles=None),
            point_to_wire(point),
        )
    start = time.perf_counter()
    with SweepServer(store=server.store, journal=recovery_journal) as rec:
        deadline = start + 120.0
        while len(recovery_journal) or rec.queue_depth():
            if time.perf_counter() > deadline:
                raise SimulationError(
                    "recovery drill did not drain its journal in time"
                )
            time.sleep(0.005)
        recovery_wall = time.perf_counter() - start
        rec_stats = rec.stats()
    replayed = int(rec_stats.get("recovery_replayed") or 0)
    rerun = int(rec_stats.get("recovered_rerun") or 0)
    if replayed + rerun != len(grid) + len(cold_grid):
        raise SimulationError(
            f"recovery drill resolved {replayed + rerun} of "
            f"{len(grid) + len(cold_grid)} journaled points"
        )

    burst_submissions = clients * submissions_per_client
    return {
        "points": len(grid),
        "transactions": transactions,
        "clients": clients,
        "submissions_per_client": submissions_per_client,
        "cold_wall_seconds": round(cold_wall, 6),
        "burst_wall_seconds": round(burst_wall, 6),
        "submissions_per_sec": round(burst_submissions / burst_wall, 1),
        "points_per_sec": round(
            burst_submissions * len(grid) / burst_wall, 1
        ),
        "cache_hit_rate": stats["hit_rate"],
        "max_queue_depth": stats["max_queue_depth"],
        "backend": stats["backend"],
        "dispatch": stats["dispatch"],
        "burst_backends": stats["burst_backends"],
        "shed_rate": round(shed_rate, 6),
        "recovery_replayed": replayed,
        "recovered_rerun": rerun,
        "recovery_replay_hit_rate": round(replayed / (replayed + rerun), 6),
        "recovery_wall_seconds": round(recovery_wall, 6),
    }


def run_speed_suite(
    repeats_tlm: int = 5,
    repeats_rtl: int = 3,
    include_trafficgen: bool = True,
    include_sweep: bool = True,
    include_serve: bool = True,
    include_batch: bool = True,
    models: Optional[Sequence[str]] = None,
) -> Dict[str, object]:
    """Run the §4 speed suite; returns one measurement block.

    Best-of-N timing per model (platform construction untimed), exactly
    the methodology of :mod:`repro.analysis.speed`.  *models* restricts
    the measurement to a subset of :data:`MODELS` (``["rtl"]`` while
    iterating on the pin-accurate hot path); the comparison helpers all
    skip models a block does not carry.  The block also carries the
    traffic-generation items/s, serial-vs-process sweep wall-time,
    lockstep-batch points/s and serving-layer entries unless switched
    off.
    """
    selected = tuple(models) if models is not None else MODELS
    unknown = set(selected) - set(MODELS)
    if unknown:
        raise ConfigError(
            f"unknown bench models {sorted(unknown)}; choose from {MODELS}"
        )
    samples: Dict[str, SpeedSample] = {}
    for name in MODELS:
        if name not in selected:
            continue
        level, make_workload = BENCH_MODEL_RUNS[name]
        if level == "rtl":
            samples[name] = measure_rtl(make_workload(), repeats=repeats_rtl)
        else:
            samples[name] = measure_tlm(make_workload(), repeats=repeats_tlm)
    block: Dict[str, object] = {
        "git_rev": git_revision(),
        "python": sys.version.split()[0],
        "host": platform.node() or "unknown",
        "measured_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "models": {
            name: _sample_dict(sample) for name, sample in samples.items()
        },
    }
    tlm = samples.get("tlm_method")
    rtl = samples.get("rtl")
    if tlm is not None and rtl is not None:
        speedup = (
            tlm.kcycles_per_sec / rtl.kcycles_per_sec
            if rtl.kcycles_per_sec > 0
            else float("inf")
        )
        block["tlm_over_rtl_speedup"] = round(speedup, 2)
    if include_trafficgen:
        block["trafficgen"] = run_trafficgen_suite()
    if include_sweep:
        block["sweep"] = run_sweep_suite()
    if include_batch:
        block["batch"] = run_batch_suite()
    if include_serve:
        block["serve"] = run_serve_suite()
    return block


def speedups_vs(block: Dict[str, object], reference: Dict[str, object]) -> Dict[str, float]:
    """Per-model Kcycles/s ratio of *block* over *reference*."""
    ratios: Dict[str, float] = {}
    block_models = block["models"]  # type: ignore[index]
    ref_models = reference["models"]  # type: ignore[index]
    for model in MODELS:
        mine = block_models.get(model)  # type: ignore[union-attr]
        theirs = ref_models.get(model)  # type: ignore[union-attr]
        if not mine or not theirs:
            continue
        base = theirs["kcycles_per_sec"]
        if base > 0:
            ratios[model] = round(mine["kcycles_per_sec"] / base, 3)
    return ratios


def make_report(
    current: Dict[str, object],
    seed: Optional[Dict[str, object]] = None,
    history: Optional[List[Dict[str, object]]] = None,
) -> Dict[str, object]:
    """Assemble the full BENCH_speed.json document.

    *history* is the speed trajectory: one compact entry per committed
    milestone (see :func:`history_entry`), rendered by
    :func:`render_trajectory`.  Omitted, the report carries none.
    """
    if seed is None:
        seed = current
    report = {
        "schema": SCHEMA,
        "note": (
            "Kcycles/s are host-dependent; 'seed' was measured on the "
            "pre-optimisation implementation on the same host as 'current'."
        ),
        "seed": seed,
        "current": current,
        "speedup_vs_seed": speedups_vs(current, seed),
    }
    if history:
        report["history"] = history
    return report


def history_entry(
    block: Dict[str, object], label: str
) -> Dict[str, object]:
    """Compress a measurement block to one speed-trajectory milestone."""
    models = block.get("models", {})  # type: ignore[union-attr]
    return {
        "label": label,
        "git_rev": block.get("git_rev", "?"),
        "measured_at": block.get("measured_at", "?"),
        "models": {
            name: sample["kcycles_per_sec"]
            for name, sample in models.items()  # type: ignore[union-attr]
        },
    }


def append_history(
    report_history: Optional[List[Dict[str, object]]],
    block: Dict[str, object],
    label: str,
) -> List[Dict[str, object]]:
    """History with *block* appended; same-revision tail entries collapse.

    A collapse keeps the established milestone label (e.g. "PR 3") —
    re-measuring the same revision refreshes the numbers, it does not
    rename the milestone.
    """
    history = list(report_history or [])
    entry = history_entry(block, label)
    if history and history[-1].get("git_rev") == entry["git_rev"]:
        entry["label"] = history[-1].get("label", entry["label"])
        history[-1] = entry
    else:
        history.append(entry)
    return history


def render_trajectory(report: Dict[str, object]) -> str:
    """The speed-trajectory table: seed → committed milestones → current.

    One row per milestone, one column per model (Kcycles/s) plus the
    cumulative speedup over the seed for the models the row carries.
    """
    seed_block = report.get("seed", {})
    rows: List[Dict[str, object]] = [history_entry(seed_block, "seed")]  # type: ignore[arg-type]
    rows.extend(report.get("history", []))  # type: ignore[arg-type]
    rows.append(history_entry(report.get("current", {}), "current"))  # type: ignore[arg-type]
    seed_models = rows[0]["models"]  # type: ignore[index]
    header = f"{'milestone':<12} {'rev':<9}" + "".join(
        f" {model:>18}" for model in MODELS
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        cells = ""
        row_models = row.get("models", {})  # type: ignore[union-attr]
        for model in MODELS:
            rate = row_models.get(model)  # type: ignore[union-attr]
            base = seed_models.get(model)  # type: ignore[union-attr]
            if rate is None:
                cells += f" {'-':>18}"
            elif base:
                cells += f" {rate:>10.1f} ({rate / base:>4.2f}x)"
            else:
                cells += f" {rate:>18.1f}"
        lines.append(
            f"{str(row.get('label', '?')):<12} "
            f"{str(row.get('git_rev', '?')):<9}{cells}"
        )
    return "\n".join(lines)


def render_delta_table(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.20,
) -> str:
    """Readable per-model delta table for the regression gate.

    One row per model: baseline vs fresh Kcycles/s, the relative delta,
    the simulated-cycle determinism check, and a verdict column (``ok``
    / ``FAIL``; speed deltas on a different host grade as ``n/a``).
    """
    base_block = baseline.get("current", baseline)
    base_models = base_block.get("models", {})  # type: ignore[union-attr]
    fresh_models = fresh.get("models", {})  # type: ignore[union-attr]
    gradable = same_host(fresh, baseline)
    header = (
        f"{'model':<20} {'baseline':>10} {'current':>10} {'delta':>8} "
        f"{'cycles':>8} {'verdict':>8}"
    )
    lines = [header, "-" * len(header)]
    for model in MODELS:
        base = base_models.get(model)  # type: ignore[union-attr]
        mine = fresh_models.get(model)  # type: ignore[union-attr]
        if not base or not mine:
            continue
        delta = mine["kcycles_per_sec"] / base["kcycles_per_sec"] - 1.0
        cycles_ok = mine["simulated_cycles"] == base["simulated_cycles"]
        if not cycles_ok:
            verdict = "FAIL"
            cycles = "DRIFT"
        elif not gradable:
            verdict = "n/a"
            cycles = "ok"
        else:
            verdict = "ok" if delta >= -threshold else "FAIL"
            cycles = "ok"
        lines.append(
            f"{model:<20} {base['kcycles_per_sec']:>10.1f} "
            f"{mine['kcycles_per_sec']:>10.1f} {delta:>+7.1%} "
            f"{cycles:>8} {verdict:>8}"
        )
    return "\n".join(lines)


def write_report(path: Path, report: Dict[str, object]) -> None:
    """Persist *report* as pretty-printed JSON."""
    Path(path).write_text(json.dumps(report, indent=2) + "\n")


def load_report(path: Path) -> Dict[str, object]:
    """Load a previously written BENCH_speed.json."""
    return json.loads(Path(path).read_text())


def same_host(fresh: Dict[str, object], baseline: Dict[str, object]) -> bool:
    """Whether two blocks/reports were (as far as recorded) measured on
    the same machine.  Missing host information counts as comparable so
    pre-host-field reports keep working."""
    base_block = baseline.get("current", baseline)
    mine = fresh.get("host")
    theirs = base_block.get("host")  # type: ignore[union-attr]
    return mine is None or theirs is None or mine == theirs


def compare_reports(
    fresh: Dict[str, object],
    baseline: Dict[str, object],
    threshold: float = 0.20,
) -> List[str]:
    """Regressions of *fresh* against *baseline*'s ``current`` block.

    Returns human-readable failure strings; empty means every model is
    within *threshold* of the committed baseline (or faster).  A
    baseline recorded on a different host is not gradable on absolute
    Kcycles/s — they do not transfer between machines — so those
    produce no failures; callers should check :func:`same_host` and
    prompt for a local baseline instead.  Simulated *cycle counts* are
    pure determinism (seeded workloads), so they are gated on every
    host: a fresh run whose cycle counts drift from the committed
    baseline fails regardless of machine.
    """
    failures: List[str] = []
    base_block = baseline.get("current", baseline)
    base_models = base_block.get("models", {})  # type: ignore[union-attr]
    fresh_models = fresh["models"]  # type: ignore[index]
    for model in MODELS:
        base = base_models.get(model)
        mine = fresh_models.get(model)  # type: ignore[union-attr]
        if not base or not mine:
            continue
        if mine["simulated_cycles"] != base["simulated_cycles"]:
            failures.append(
                f"{model}: simulated {mine['simulated_cycles']} cycles but "
                f"baseline recorded {base['simulated_cycles']} "
                f"(rev {base_block.get('git_rev', '?')}) — determinism drift"
            )
    if not same_host(fresh, baseline):
        return failures
    for model in MODELS:
        base = base_models.get(model)
        mine = fresh_models.get(model)  # type: ignore[union-attr]
        if not base or not mine:
            continue
        floor = base["kcycles_per_sec"] * (1.0 - threshold)
        if mine["kcycles_per_sec"] < floor:
            failures.append(
                f"{model}: {mine['kcycles_per_sec']:.1f} Kcyc/s is more than "
                f"{threshold:.0%} below baseline "
                f"{base['kcycles_per_sec']:.1f} Kcyc/s "
                f"(rev {base_block.get('git_rev', '?')})"
            )
    return failures


def render_block(block: Dict[str, object], title: str = "speed") -> str:
    """One-measurement summary table for terminals/logs."""
    lines = [f"== {title} (rev {block.get('git_rev', '?')}) =="]
    models = block["models"]  # type: ignore[index]
    for model in MODELS:
        sample = models.get(model)  # type: ignore[union-attr]
        if sample:
            lines.append(
                f"  {model:<20} {sample['kcycles_per_sec']:>10.1f} Kcycles/s"
                f"  ({sample['simulated_cycles']} cycles in "
                f"{sample['wall_seconds']:.4f}s)"
            )
    lines.append(f"  TLM/RTL speedup: {block.get('tlm_over_rtl_speedup', '?')}x")
    trafficgen = block.get("trafficgen")
    if trafficgen:
        for mode, sample in trafficgen["modes"].items():  # type: ignore[index]
            lines.append(
                f"  trafficgen/{mode:<9} {sample['items_per_sec']:>12,.0f} items/s"
            )
        lines.append(
            f"  trafficgen stream/compat: "
            f"{trafficgen['stream_over_compat']}x"  # type: ignore[index]
        )
    sweep = block.get("sweep")
    if sweep:
        lines.append(
            f"  sweep ({sweep['points']} pts, {sweep['workers']} workers): "  # type: ignore[index]
            f"serial {sweep['serial_wall_seconds']:.3f}s, "  # type: ignore[index]
            f"process {sweep['process_wall_seconds']:.3f}s "  # type: ignore[index]
            f"({sweep['process_over_serial']}x)"  # type: ignore[index]
        )
    batch = block.get("batch")
    if batch:
        if batch.get("available"):  # type: ignore[union-attr]
            lines.append(
                f"  batch ({batch['points']} pts): "  # type: ignore[index]
                f"serial {batch['serial_points_per_sec']:,.0f} pts/s, "  # type: ignore[index]
                f"batch {batch['batch_points_per_sec']:,.0f} pts/s "  # type: ignore[index]
                f"({batch['batch_over_serial']}x)"  # type: ignore[index]
            )
        else:
            lines.append("  batch: numpy unavailable (serial fallback)")
    serve = block.get("serve")
    if serve:
        lines.append(
            f"  serve ({serve['points']} pts, {serve['clients']} clients): "  # type: ignore[index]
            f"{serve['submissions_per_sec']:,.0f} submissions/s warm, "  # type: ignore[index]
            f"hit rate {serve['cache_hit_rate']:.1%}, "  # type: ignore[index]
            f"max queue {serve['max_queue_depth']}"  # type: ignore[index]
        )
        dispatch = serve.get("dispatch")  # type: ignore[union-attr]
        if dispatch:
            served = ", ".join(
                f"{label}:{count}" for label, count in sorted(dispatch.items())
            )
            lines.append(
                f"  serve backend {serve['backend']} served {served} "  # type: ignore[index]
                f"over {len(serve.get('burst_backends', []))} burst(s)"  # type: ignore[union-attr]
            )
        if "recovery_replay_hit_rate" in serve:  # type: ignore[operator]
            lines.append(
                f"  serve recovery: {serve['recovery_replayed']} replayed "  # type: ignore[index]
                f"+ {serve['recovered_rerun']} re-run "  # type: ignore[index]
                f"({serve['recovery_replay_hit_rate']:.1%} replay hits) "  # type: ignore[index]
                f"in {serve['recovery_wall_seconds']:.3f}s, "  # type: ignore[index]
                f"shed rate {serve['shed_rate']:.1%}"  # type: ignore[index]
            )
    return "\n".join(lines)
