"""RTL-vs-TLM accuracy comparison — the machinery behind Table 1.

The paper validates the AHB+ TLM by running the same master traffic on
the transaction-level and pin-accurate models and comparing cycle
counts per traffic pattern; the average difference is below 3 %.  This
module reproduces that methodology: one :func:`compare_models` call runs
a workload on both models (identical seeds), checks functional
equivalence (final memory images, per-master read data) and reports the
per-master and total cycle differences.

Execution rides the :class:`~repro.exec.SweepRunner` layer: the two
models are an *engine-axis sweep* of the same paper-topology spec, and
a collector captures the functional evidence (memory image, read
streams, per-master last bus activity) while each platform is alive —
which is what lets the whole Table-1 regeneration shard over the
process backend (``backend="process"``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import AhbPlusConfig
from repro.errors import SimulationError
from repro.exec import SweepRunner
from repro.system.platform import platform_agents
from repro.system.scenarios import paper_topology
from repro.system.spec import SweepPoint, sweep
from repro.traffic.workloads import Workload


@dataclass(frozen=True)
class MasterAccuracy:
    """One Table 1 row: a master's cycle count at both levels."""

    master: int
    name: str
    rtl_cycles: int
    tlm_cycles: int

    @property
    def difference(self) -> int:
        """Signed TLM - RTL cycle difference (negative = TLM optimistic)."""
        return self.tlm_cycles - self.rtl_cycles

    @property
    def error_pct(self) -> float:
        """Absolute percentage error against the RTL reference."""
        if self.rtl_cycles == 0:
            return 0.0
        return abs(self.difference) / self.rtl_cycles * 100.0

    @property
    def accuracy_pct(self) -> float:
        """The paper's accuracy figure (100 % - error)."""
        return 100.0 - self.error_pct


@dataclass
class WorkloadAccuracy:
    """Accuracy of one traffic-pattern suite."""

    workload: str
    rows: List[MasterAccuracy]
    rtl_total: int
    tlm_total: int
    functional_match: bool
    rtl_transactions: int = 0
    tlm_transactions: int = 0

    @property
    def total_error_pct(self) -> float:
        if self.rtl_total == 0:
            return 0.0
        return abs(self.tlm_total - self.rtl_total) / self.rtl_total * 100.0

    @property
    def average_row_error_pct(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.error_pct for row in self.rows) / len(self.rows)


@dataclass
class Table1Result:
    """The full Table 1 regeneration: all suites plus overall averages."""

    suites: List[WorkloadAccuracy] = field(default_factory=list)

    @property
    def average_error_pct(self) -> float:
        """Mean error of the per-suite total cycle counts.

        This is the paper's metric: each traffic configuration is one
        simulation whose cycle count the TLM must reproduce.
        """
        if not self.suites:
            return 0.0
        return sum(s.total_error_pct for s in self.suites) / len(self.suites)

    @property
    def row_average_error_pct(self) -> float:
        """Mean per-master row error (a stricter, noisier view).

        Individual low-priority masters can reorder significantly
        between abstraction levels while the totals stay tight.
        """
        rows = [row for suite in self.suites for row in suite.rows]
        if not rows:
            return 0.0
        return sum(row.error_pct for row in rows) / len(rows)

    @property
    def average_accuracy_pct(self) -> float:
        """The paper's headline '97 % of accuracy on average'."""
        return 100.0 - self.average_error_pct

    @property
    def all_functional(self) -> bool:
        return all(suite.functional_match for suite in self.suites)


def _last_bus_activity(completed) -> int:
    """Cycle of the master's final *physical* bus effect.

    For posted writes that is the drain reaching memory, not the
    absorption instant — the same observable event in both models, so
    the comparison measures modeling error instead of posting policy.
    """
    return max(max(txn.finished_at, txn.drained_at) for txn in completed)


def _collect_functional(point: SweepPoint, platform, result) -> Dict[str, object]:
    """Functional evidence for the cross-model comparison (picklable).

    The memory image drops zero bytes (zero equals unwritten, matching
    ``MemoryModel.equal_contents``), so two models that wrote the same
    values compare equal however their stores are shaped.
    """
    agents = platform_agents(platform)
    return {
        "image": tuple(
            (addr, byte) for addr, byte in platform.memory.items() if byte
        ),
        "reads": tuple(
            tuple(
                (txn.addr, tuple(txn.data))
                for txn in agent.completed
                if not txn.is_write
            )
            for agent in agents
        ),
        "last_activity": tuple(
            _last_bus_activity(agent.completed) for agent in agents
        ),
    }


def _first_image_difference(
    rtl_image: Tuple[Tuple[int, int], ...], tlm_image: Tuple[Tuple[int, int], ...]
) -> Tuple[int, int, int]:
    """First (addr, rtl_byte, tlm_byte) mismatch between two images."""
    rtl_map, tlm_map = dict(rtl_image), dict(tlm_image)
    for addr in sorted(set(rtl_map) | set(tlm_map)):
        mine, theirs = rtl_map.get(addr, 0), tlm_map.get(addr, 0)
        if mine != theirs:
            return addr, mine, theirs
    raise SimulationError("memory images are identical")


def compare_models(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
    max_rtl_cycles: int = 5_000_000,
    backend: str = "serial",
    runner: Optional[SweepRunner] = None,
) -> WorkloadAccuracy:
    """Run *workload* at both abstraction levels and compare.

    Functional equivalence (identical final memory image and identical
    per-master read data) is a hard requirement — a mismatch raises,
    because timing accuracy numbers are meaningless if the models
    compute different results.
    """
    spec = paper_topology(workload=workload, config=config)
    grid = sweep(spec, axis="engine", values=("rtl", "tlm"))
    active = runner if runner is not None else SweepRunner(backend=backend)
    # One grid, so the process backend runs both models concurrently;
    # the cycle ceiling bounds only the (slow, per-cycle) RTL point —
    # the TLM stays unbounded exactly as the pre-runner harness ran it.
    rtl_rec, tlm_rec = active.run(
        grid,
        collect=_collect_functional,
        max_cycles=lambda point: (
            max_rtl_cycles if point.engine == "rtl" else None
        ),
    )

    memory_match = rtl_rec.metric("image") == tlm_rec.metric("image")
    reads_match = rtl_rec.metric("reads") == tlm_rec.metric("reads")
    if not memory_match:
        addr, rtl_byte, tlm_byte = _first_image_difference(
            rtl_rec.metric("image"), tlm_rec.metric("image")  # type: ignore[arg-type]
        )
        raise SimulationError(
            f"functional mismatch on {workload.name}: memory[{addr:#x}] "
            f"RTL={rtl_byte:#04x} TLM={tlm_byte:#04x}"
        )

    rtl_last = rtl_rec.metric("last_activity")
    tlm_last = tlm_rec.metric("last_activity")
    rows = [
        MasterAccuracy(
            master=index,
            name=spec_.name,
            rtl_cycles=rtl_last[index],  # type: ignore[index]
            tlm_cycles=tlm_last[index],  # type: ignore[index]
        )
        for index, spec_ in enumerate(workload.masters)
    ]
    return WorkloadAccuracy(
        workload=workload.name,
        rows=rows,
        rtl_total=rtl_rec.cycles,
        tlm_total=tlm_rec.cycles,
        functional_match=memory_match and reads_match,
        rtl_transactions=rtl_rec.transactions,
        tlm_transactions=tlm_rec.transactions,
    )


def run_table1(
    workloads: Sequence[Workload],
    config: Optional[AhbPlusConfig] = None,
    backend: str = "serial",
) -> Table1Result:
    """Regenerate Table 1 over the given traffic-pattern suites."""
    result = Table1Result()
    for workload in workloads:
        result.suites.append(
            compare_models(workload, config=config, backend=backend)
        )
    return result
