"""RTL-vs-TLM accuracy comparison — the machinery behind Table 1.

The paper validates the AHB+ TLM by running the same master traffic on
the transaction-level and pin-accurate models and comparing cycle
counts per traffic pattern; the average difference is below 3 %.  This
module reproduces that methodology: one :func:`compare_models` call runs
a workload on both models (identical seeds), checks functional
equivalence (final memory images, per-master read data) and reports the
per-master and total cycle differences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.config import AhbPlusConfig
from repro.errors import SimulationError
from repro.system.platform import PlatformBuilder
from repro.system.scenarios import paper_topology
from repro.traffic.workloads import Workload


@dataclass(frozen=True)
class MasterAccuracy:
    """One Table 1 row: a master's cycle count at both levels."""

    master: int
    name: str
    rtl_cycles: int
    tlm_cycles: int

    @property
    def difference(self) -> int:
        """Signed TLM - RTL cycle difference (negative = TLM optimistic)."""
        return self.tlm_cycles - self.rtl_cycles

    @property
    def error_pct(self) -> float:
        """Absolute percentage error against the RTL reference."""
        if self.rtl_cycles == 0:
            return 0.0
        return abs(self.difference) / self.rtl_cycles * 100.0

    @property
    def accuracy_pct(self) -> float:
        """The paper's accuracy figure (100 % - error)."""
        return 100.0 - self.error_pct


@dataclass
class WorkloadAccuracy:
    """Accuracy of one traffic-pattern suite."""

    workload: str
    rows: List[MasterAccuracy]
    rtl_total: int
    tlm_total: int
    functional_match: bool
    rtl_transactions: int = 0
    tlm_transactions: int = 0

    @property
    def total_error_pct(self) -> float:
        if self.rtl_total == 0:
            return 0.0
        return abs(self.tlm_total - self.rtl_total) / self.rtl_total * 100.0

    @property
    def average_row_error_pct(self) -> float:
        if not self.rows:
            return 0.0
        return sum(row.error_pct for row in self.rows) / len(self.rows)


@dataclass
class Table1Result:
    """The full Table 1 regeneration: all suites plus overall averages."""

    suites: List[WorkloadAccuracy] = field(default_factory=list)

    @property
    def average_error_pct(self) -> float:
        """Mean error of the per-suite total cycle counts.

        This is the paper's metric: each traffic configuration is one
        simulation whose cycle count the TLM must reproduce.
        """
        if not self.suites:
            return 0.0
        return sum(s.total_error_pct for s in self.suites) / len(self.suites)

    @property
    def row_average_error_pct(self) -> float:
        """Mean per-master row error (a stricter, noisier view).

        Individual low-priority masters can reorder significantly
        between abstraction levels while the totals stay tight.
        """
        rows = [row for suite in self.suites for row in suite.rows]
        if not rows:
            return 0.0
        return sum(row.error_pct for row in rows) / len(rows)

    @property
    def average_accuracy_pct(self) -> float:
        """The paper's headline '97 % of accuracy on average'."""
        return 100.0 - self.average_error_pct

    @property
    def all_functional(self) -> bool:
        return all(suite.functional_match for suite in self.suites)


def _read_streams_equal(rtl_agents, tlm_agents) -> bool:
    """Per-master read-data equivalence between the two models."""
    for rtl_agent, tlm_agent in zip(rtl_agents, tlm_agents):
        rtl_reads = [
            (txn.addr, tuple(txn.data))
            for txn in rtl_agent.completed
            if not txn.is_write
        ]
        tlm_reads = [
            (txn.addr, tuple(txn.data))
            for txn in tlm_agent.completed
            if not txn.is_write
        ]
        if rtl_reads != tlm_reads:
            return False
    return True


def _last_bus_activity(completed) -> int:
    """Cycle of the master's final *physical* bus effect.

    For posted writes that is the drain reaching memory, not the
    absorption instant — the same observable event in both models, so
    the comparison measures modeling error instead of posting policy.
    """
    return max(max(txn.finished_at, txn.drained_at) for txn in completed)


def compare_models(
    workload: Workload,
    config: Optional[AhbPlusConfig] = None,
    max_rtl_cycles: int = 5_000_000,
) -> WorkloadAccuracy:
    """Run *workload* at both abstraction levels and compare.

    Functional equivalence (identical final memory image and identical
    per-master read data) is a hard requirement — a mismatch raises,
    because timing accuracy numbers are meaningless if the models
    compute different results.
    """
    builder = PlatformBuilder(paper_topology(workload=workload, config=config))
    rtl = builder.build("rtl")
    rtl_result = rtl.run(max_cycles=max_rtl_cycles)
    tlm = builder.build("tlm")
    tlm_result = tlm.run()

    memory_match = rtl.memory.equal_contents(tlm.memory)
    reads_match = _read_streams_equal(rtl.agents, tlm.masters)
    if not memory_match:
        addr, rtl_byte, tlm_byte = rtl.memory.first_difference(tlm.memory)
        raise SimulationError(
            f"functional mismatch on {workload.name}: memory[{addr:#x}] "
            f"RTL={rtl_byte:#04x} TLM={tlm_byte:#04x}"
        )

    rows = []
    for index, spec in enumerate(workload.masters):
        rtl_last = _last_bus_activity(rtl.agents[index].completed)
        tlm_last = _last_bus_activity(tlm.masters[index].completed)
        rows.append(
            MasterAccuracy(
                master=index,
                name=spec.name,
                rtl_cycles=rtl_last,
                tlm_cycles=tlm_last,
            )
        )
    return WorkloadAccuracy(
        workload=workload.name,
        rows=rows,
        rtl_total=rtl_result.cycles,
        tlm_total=tlm_result.cycles,
        functional_match=memory_match and reads_match,
        rtl_transactions=rtl_result.transactions,
        tlm_transactions=tlm_result.transactions,
    )


def run_table1(
    workloads: Sequence[Workload],
    config: Optional[AhbPlusConfig] = None,
) -> Table1Result:
    """Regenerate Table 1 over the given traffic-pattern suites."""
    result = Table1Result()
    for workload in workloads:
        result.suites.append(compare_models(workload, config=config))
    return result
