"""Analysis: accuracy (Table 1), speed (§4), tables and experiment drivers."""

from repro.analysis.bench_io import (
    compare_reports,
    load_report,
    make_report,
    run_speed_suite,
    run_sweep_suite,
    run_trafficgen_suite,
    write_report,
)
from repro.analysis.accuracy import (
    MasterAccuracy,
    Table1Result,
    WorkloadAccuracy,
    compare_models,
    run_table1,
)
from repro.analysis.experiments import (
    FilterPoint,
    InterleavingPoint,
    QosPoint,
    WriteBufferPoint,
    experiment_bank_interleaving,
    experiment_filters,
    experiment_qos,
    experiment_speed,
    experiment_table1,
    experiment_write_buffer,
)
from repro.analysis.speed import (
    SpeedReport,
    SpeedSample,
    kernel_comparison,
    measure_rtl,
    measure_tlm,
    speed_comparison,
)
from repro.analysis.tables import render_speed, render_table1
from repro.analysis.trace_diff import (
    FUNCTIONAL_FIELDS,
    TraceDiffResult,
    TraceMismatch,
    trace_diff,
)

__all__ = [
    "FUNCTIONAL_FIELDS",
    "FilterPoint",
    "InterleavingPoint",
    "MasterAccuracy",
    "QosPoint",
    "SpeedReport",
    "SpeedSample",
    "Table1Result",
    "TraceDiffResult",
    "TraceMismatch",
    "WorkloadAccuracy",
    "WriteBufferPoint",
    "compare_models",
    "compare_reports",
    "experiment_bank_interleaving",
    "experiment_filters",
    "experiment_qos",
    "experiment_speed",
    "experiment_table1",
    "experiment_write_buffer",
    "kernel_comparison",
    "load_report",
    "make_report",
    "measure_rtl",
    "measure_tlm",
    "render_speed",
    "render_table1",
    "run_speed_suite",
    "run_sweep_suite",
    "run_table1",
    "run_trafficgen_suite",
    "speed_comparison",
    "trace_diff",
    "write_report",
]
