"""Render experiment results in the paper's reporting format."""

from __future__ import annotations

from typing import List, Optional

from repro.analysis.accuracy import Table1Result, WorkloadAccuracy
from repro.analysis.speed import SpeedReport
from repro.profiling.report import format_table


def render_table1(result: Table1Result) -> str:
    """Table 1: per-pattern, per-master cycle counts and accuracy."""
    headers = ["pattern", "master", "RTL cycles", "TL cycles", "diff", "err %"]
    rows: List[List[str]] = []
    for suite in result.suites:
        for row in suite.rows:
            rows.append(
                [
                    suite.workload,
                    row.name,
                    str(row.rtl_cycles),
                    str(row.tlm_cycles),
                    f"{row.difference:+d}",
                    f"{row.error_pct:.2f}",
                ]
            )
        rows.append(
            [
                suite.workload,
                "TOTAL",
                str(suite.rtl_total),
                str(suite.tlm_total),
                f"{suite.tlm_total - suite.rtl_total:+d}",
                f"{suite.total_error_pct:.2f}",
            ]
        )
    body = format_table(headers, rows)
    footer = (
        f"\naverage error (suite totals) : {result.average_error_pct:.2f} %"
        f"\naverage accuracy             : {result.average_accuracy_pct:.2f} % "
        f"(paper: 97 % / avg diff < 3 %)"
        f"\nper-master row error (mean)  : {result.row_average_error_pct:.2f} %"
        f"\nfunctional match             : {'yes' if result.all_functional else 'NO'}"
    )
    return body + footer


def render_speed(report: SpeedReport) -> str:
    """The §4 speed table: Kcycles/s per model and the speedup factor."""
    headers = ["model", "cycles", "wall s", "Kcycles/s"]
    samples = [report.rtl, report.tlm_method]
    if report.tlm_thread is not None:
        samples.append(report.tlm_thread)
    if report.tlm_single_master is not None:
        samples.append(report.tlm_single_master)
    rows = [
        [
            sample.model,
            str(sample.simulated_cycles),
            f"{sample.wall_seconds:.3f}",
            f"{sample.kcycles_per_sec:.1f}",
        ]
        for sample in samples
    ]
    body = format_table(headers, rows)
    footer = f"\nTLM/RTL speedup: {report.speedup:.0f}x  (paper: 353x)"
    ratio = report.method_over_thread
    if ratio is not None:
        footer += f"\nmethod-based over thread-based: {ratio:.2f}x"
    return body + footer
