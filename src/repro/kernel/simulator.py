"""Discrete-event simulation scheduler.

This is the general-purpose kernel used by the transaction-level models:
components schedule callbacks at future cycle counts and the simulator
executes them in time order.  Time is an integer number of bus clock
cycles — the library never uses floating-point time, which keeps
RTL-vs-TLM cycle comparisons exact.

The scheduler is intentionally minimal: the paper's speed advantage of
TLM over RTL comes precisely from the fact that a transaction-level
model touches the scheduler a handful of times per *transaction*, while
a pin-accurate model does work every *cycle*.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SchedulingError, SimulationError
from repro.kernel.events import Action, EventQueue


class Simulator:
    """An integer-time discrete-event scheduler.

    Example
    -------
    >>> sim = Simulator()
    >>> seen = []
    >>> sim.schedule_at(5, lambda: seen.append(sim.now))
    >>> sim.schedule_after(2, lambda: seen.append(sim.now))
    >>> sim.run()
    >>> seen
    [2, 5]
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0
        self._running = False
        self._stopped = False

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of actions still queued."""
        return len(self._queue)

    def schedule_at(self, time: int, action: Action) -> None:
        """Run *action* at absolute cycle *time* (must not be in the past)."""
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at cycle {time}; current time is {self._now}"
            )
        self._queue.push(time, action)

    def schedule_after(self, delay: int, action: Action) -> None:
        """Run *action* ``delay`` cycles from now (``delay >= 0``)."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay}")
        self._queue.push(self._now + delay, action)

    def stop(self) -> None:
        """Request the run loop to halt after the current action."""
        self._stopped = True

    def run(self, until: Optional[int] = None) -> int:
        """Execute queued actions in time order.

        Parameters
        ----------
        until:
            If given, stop once the next action would run *after* this
            cycle; pending later actions stay queued and time advances to
            ``until``.

        Returns the simulation time at which the run stopped.
        """
        if self._running:
            raise SimulationError("run() re-entered; the kernel is not reentrant")
        self._running = True
        self._stopped = False
        queue = self._queue
        # Validate once at entry instead of per event: the bucketed queue
        # pops in non-decreasing time order by construction, and every
        # schedule_* call rejects past times, so checking the head here
        # covers the whole run.
        first = queue.peek_time()
        if first is not None and first < self._now:
            raise SchedulingError(
                f"event queue corrupted: head {first} < now {self._now}"
            )
        try:
            if until is None:
                while queue and not self._stopped:
                    self._now, action = queue.pop()
                    action()
            else:
                while queue and not self._stopped:
                    next_time = queue.peek_time()
                    if next_time > until:  # type: ignore[operator]
                        break
                    self._now, action = queue.pop()
                    action()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Discard all pending work and rewind time to zero."""
        if self._running:
            raise SimulationError("cannot reset a running simulator")
        self._queue.clear()
        self._now = 0
        self._stopped = False


class RepeatingTask:
    """A helper that re-schedules a callback every *period* cycles.

    Used for periodic model behaviour such as DDR refresh in the TLM and
    real-time traffic sources.  The callback may return ``False`` to
    cancel further repetitions.
    """

    def __init__(
        self,
        sim: Simulator,
        period: int,
        action: Callable[[], Any],
        start: Optional[int] = None,
    ) -> None:
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._action = action
        self._cancelled = False
        first = sim.now + period if start is None else start
        sim.schedule_at(first, self._fire)

    def cancel(self) -> None:
        """Stop future firings (the currently queued one becomes a no-op)."""
        self._cancelled = True

    def _fire(self) -> None:
        if self._cancelled:
            return
        keep_going = self._action()
        if keep_going is False:
            self._cancelled = True
            return
        self._sim.schedule_after(self._period, self._fire)
