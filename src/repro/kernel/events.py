"""Event primitives for the discrete-event kernel.

Two small classes live here:

* :class:`Event` — a named notification object that callbacks and
  thread-style processes can wait on.  Mirrors the role of
  ``sc_event`` in SystemC, which the paper's TLM environment is built
  on.
* :class:`EventQueue` — a monotonic priority queue of scheduled actions
  used by :class:`repro.kernel.simulator.Simulator`.

The queue is *bucketed*: a binary heap orders the distinct timestamps,
and each timestamp owns a FIFO deque of actions.  Scheduling N actions
for the same cycle therefore costs one ``heappush`` plus N O(1) deque
appends instead of N heap operations — same-cycle storms (delta
notifications, cycle ticks driven through the event kernel) are the
common case in bus simulation, and this is the kernel's hot path.
FIFO order inside a bucket preserves the old ``(time, seq, action)``
tie-break exactly: two actions scheduled for the same cycle always run
in the order they were scheduled, keeping runs reproducible.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import SchedulingError

Action = Callable[[], Any]


class Event:
    """A notification object that observers can subscribe to.

    Observers are plain callables registered with :meth:`subscribe`.
    Calling :meth:`notify` invokes every observer once, in subscription
    order.  Observers registered *during* a notification are not invoked
    until the next notification, matching SystemC delta semantics.

    Delivery is allocation-free on the common path: the observer list is
    only snapshotted when an observer actually subscribes or
    unsubscribes *mid-fire* (the snapshot is taken just before the first
    mutation, so the delivery round still sees exactly the set of
    observers that existed when :meth:`notify` began).
    """

    __slots__ = ("name", "_observers", "_fire_count", "_notify_depth", "_round")

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self._observers: List[Action] = []
        self._fire_count = 0
        #: Non-zero while a notify() delivery round is in progress.
        self._notify_depth = 0
        #: Snapshot of the observer list taken lazily on mid-fire mutation.
        self._round: Optional[List[Action]] = None

    @property
    def fire_count(self) -> int:
        """Number of times :meth:`notify` has been called."""
        return self._fire_count

    def _snapshot_round(self) -> None:
        """Preserve the in-flight delivery round before a mutation."""
        if self._notify_depth and self._round is None:
            self._round = list(self._observers)

    def subscribe(self, action: Action) -> None:
        """Register *action* to be invoked on every future notification."""
        self._snapshot_round()
        self._observers.append(action)

    def unsubscribe(self, action: Action) -> None:
        """Remove a previously registered observer.

        Raises ``ValueError`` if the action was never subscribed, because
        silently ignoring the mistake would hide wiring bugs in models.
        """
        self._snapshot_round()
        self._observers.remove(action)

    def notify(self) -> None:
        """Fire the event, invoking all currently subscribed observers."""
        self._fire_count += 1
        observers = self._observers
        if not observers:
            return
        if self._notify_depth:
            # Re-entrant notify (an observer fired us again): fall back
            # to an explicit snapshot for the nested round.
            for action in list(observers):
                action()
            return
        self._notify_depth = 1
        self._round = None
        try:
            # `end` is the observer count when delivery began; a lazy
            # snapshot (taken before any mutation) has the same length.
            end = len(observers)
            index = 0
            while index < end:
                frozen = self._round
                if frozen is None:
                    observers[index]()
                else:
                    frozen[index]()
                index += 1
        finally:
            self._notify_depth = 0
            self._round = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, observers={len(self._observers)})"


class EventQueue:
    """Time-ordered queue of scheduled actions (bucketed by timestamp).

    ``_times`` is a heap of the *distinct* pending timestamps; each maps
    to a FIFO deque of actions in ``_buckets``.  Popping drains the
    earliest bucket front-to-back, which reproduces the old global
    insertion-order tie-break without a per-entry sequence counter.

    Invariant: pop order is non-decreasing in time.  The heap guarantees
    it structurally, so consumers (the simulator's run loop) do not need
    a per-event monotonicity check.
    """

    __slots__ = ("_times", "_buckets", "_size")

    def __init__(self) -> None:
        self._times: List[int] = []
        self._buckets: Dict[int, Deque[Action]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, time: int, action: Action) -> None:
        """Schedule *action* to run at absolute *time*."""
        bucket = self._buckets.get(time)
        if bucket is None:
            if time < 0:
                raise SchedulingError(f"cannot schedule at negative time {time}")
            bucket = deque()
            self._buckets[time] = bucket
            heapq.heappush(self._times, time)
        bucket.append(action)
        self._size += 1

    def peek_time(self) -> Optional[int]:
        """Return the timestamp of the earliest entry, or ``None`` if empty."""
        if not self._size:
            return None
        return self._times[0]

    def front(self) -> Optional[Tuple[int, Action]]:
        """Return the earliest ``(time, action)`` pair without removing it.

        Lets consumers that interleave live and stale entries (the cycle
        engine's lazily-invalidated wake schedule) inspect the head and
        decide whether to :meth:`pop` it, without a remove/re-push round
        trip that would perturb FIFO order inside the bucket.
        """
        if not self._size:
            return None
        time = self._times[0]
        return time, self._buckets[time][0]

    def pop(self) -> Tuple[int, Action]:
        """Remove and return the earliest ``(time, action)`` pair."""
        if not self._size:
            raise SchedulingError("pop from an empty event queue")
        time = self._times[0]
        bucket = self._buckets[time]
        action = bucket.popleft()
        self._size -= 1
        if not bucket:
            heapq.heappop(self._times)
            del self._buckets[time]
        return time, action

    def clear(self) -> None:
        """Drop all pending entries."""
        self._times.clear()
        self._buckets.clear()
        self._size = 0
