"""Event primitives for the discrete-event kernel.

Two small classes live here:

* :class:`Event` — a named notification object that callbacks and
  thread-style processes can wait on.  Mirrors the role of
  ``sc_event`` in SystemC, which the paper's TLM environment is built
  on.
* :class:`EventQueue` — a monotonic priority queue of ``(time, seq,
  action)`` entries used by :class:`repro.kernel.simulator.Simulator`.

The queue breaks ties by insertion order (the ``seq`` counter) so that
simulations are fully deterministic: two actions scheduled for the same
cycle always run in the order they were scheduled.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingError

Action = Callable[[], Any]


class Event:
    """A notification object that observers can subscribe to.

    Observers are plain callables registered with :meth:`subscribe`.
    Calling :meth:`notify` invokes every observer once, in subscription
    order.  Observers registered *during* a notification are not invoked
    until the next notification, matching SystemC delta semantics.
    """

    __slots__ = ("name", "_observers", "_fire_count")

    def __init__(self, name: str = "event") -> None:
        self.name = name
        self._observers: List[Action] = []
        self._fire_count = 0

    @property
    def fire_count(self) -> int:
        """Number of times :meth:`notify` has been called."""
        return self._fire_count

    def subscribe(self, action: Action) -> None:
        """Register *action* to be invoked on every future notification."""
        self._observers.append(action)

    def unsubscribe(self, action: Action) -> None:
        """Remove a previously registered observer.

        Raises ``ValueError`` if the action was never subscribed, because
        silently ignoring the mistake would hide wiring bugs in models.
        """
        self._observers.remove(action)

    def notify(self) -> None:
        """Fire the event, invoking all currently subscribed observers."""
        self._fire_count += 1
        # Copy so that observers subscribing/unsubscribing mid-notify do
        # not perturb this delivery round.
        for action in list(self._observers):
            action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Event({self.name!r}, observers={len(self._observers)})"


class EventQueue:
    """Time-ordered queue of scheduled actions.

    Entries are ``(time, seq, action)`` tuples kept in a binary heap.
    ``seq`` is a global insertion counter guaranteeing FIFO order among
    same-time entries, which keeps runs reproducible.
    """

    __slots__ = ("_heap", "_counter")

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Action]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, time: int, action: Action) -> None:
        """Schedule *action* to run at absolute *time*."""
        if time < 0:
            raise SchedulingError(f"cannot schedule at negative time {time}")
        heapq.heappush(self._heap, (time, next(self._counter), action))

    def peek_time(self) -> Optional[int]:
        """Return the timestamp of the earliest entry, or ``None`` if empty."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Tuple[int, Action]:
        """Remove and return the earliest ``(time, action)`` pair."""
        if not self._heap:
            raise SchedulingError("pop from an empty event queue")
        time, _seq, action = heapq.heappop(self._heap)
        return time, action

    def clear(self) -> None:
        """Drop all pending entries."""
        self._heap.clear()
