"""Value-change tracing for the pin-accurate models.

A light-weight VCD (Value Change Dump) writer: RTL platforms register
their signals and the tracer samples them at the end of every cycle,
emitting changes in standard VCD so waveforms can be inspected with any
viewer.  The TLM has its own transaction-level logging in
:mod:`repro.profiling`; VCD is an RTL-side debugging feature, matching
the paper's "functional debugging of the model itself".
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, TextIO

from repro.kernel.signal import Signal

# Printable identifier characters per the VCD grammar.
_ID_CHARS = "".join(chr(c) for c in range(33, 127))


def _identifier(index: int) -> str:
    """Map a signal index to a short VCD identifier string."""
    base = len(_ID_CHARS)
    chars: List[str] = []
    index += 1
    while index:
        index, rem = divmod(index - 1, base)
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


class VcdTracer:
    """Writes signal activity as a VCD stream.

    Parameters
    ----------
    out:
        Target text stream; defaults to an in-memory buffer retrievable
        with :meth:`getvalue` (tests and examples use this).
    timescale:
        VCD timescale string; cycles are emitted as integer timestamps.
    """

    def __init__(self, out: Optional[TextIO] = None, timescale: str = "1 ns") -> None:
        self._out = out if out is not None else io.StringIO()
        self._timescale = timescale
        self._signals: List[Signal] = []
        self._ids: Dict[int, str] = {}
        self._last: Dict[int, int] = {}
        self._header_done = False
        self._changes = 0

    @property
    def change_count(self) -> int:
        """Total value changes emitted (cheap activity metric for tests)."""
        return self._changes

    def add_signals(self, signals: Iterable[Signal]) -> None:
        """Register signals to trace; must happen before the first sample."""
        for sig in signals:
            if self._header_done:
                raise RuntimeError("cannot add signals after tracing started")
            self._ids[id(sig)] = _identifier(len(self._signals))
            self._signals.append(sig)

    def _emit_header(self) -> None:
        out = self._out
        out.write("$date reproduction run $end\n")
        out.write("$version repro VcdTracer $end\n")
        out.write(f"$timescale {self._timescale} $end\n")
        out.write("$scope module top $end\n")
        for sig in self._signals:
            ident = self._ids[id(sig)]
            safe = sig.name.replace(" ", "_")
            out.write(f"$var wire {sig.width} {ident} {safe} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        self._header_done = True

    def _emit_value(self, sig: Signal) -> None:
        ident = self._ids[id(sig)]
        if sig.width == 1:
            self._out.write(f"{sig.value}{ident}\n")
        else:
            self._out.write(f"b{sig.value:b} {ident}\n")
        self._changes += 1

    def sample(self, cycle: int) -> None:
        """Record all changed signals at *cycle* (hook into the cycle engine)."""
        if not self._header_done:
            self._emit_header()
            self._out.write("#0\n")
            for sig in self._signals:
                self._emit_value(sig)
                self._last[id(sig)] = sig.value
            return
        wrote_time = False
        for sig in self._signals:
            if self._last.get(id(sig)) != sig.value:
                if not wrote_time:
                    self._out.write(f"#{cycle}\n")
                    wrote_time = True
                self._emit_value(sig)
                self._last[id(sig)] = sig.value

    def getvalue(self) -> str:
        """Return the VCD text when writing to the default in-memory buffer."""
        if isinstance(self._out, io.StringIO):
            return self._out.getvalue()
        raise RuntimeError("tracer was constructed with an external stream")
