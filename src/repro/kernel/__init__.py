"""Simulation kernel: event-driven scheduler and 2-step cycle engine.

The transaction-level models run on :class:`Simulator` (sparse,
per-transaction events over a *bucketed* :class:`EventQueue` — one heap
entry per distinct timestamp, FIFO deques within it); the pin-accurate
RTL reference runs on :class:`CycleEngine` (per-cycle evaluate/update
with registered *sensitivity lists*, so only combinational processes
whose inputs changed re-evaluate).  Both count time in integer bus
cycles so accuracy comparisons are exact, and both are observably
equivalent to their naive full-sweep forms — see the module docstrings
of :mod:`repro.kernel.events` and :mod:`repro.kernel.cycle`.
"""

from repro.kernel.clock import Clock
from repro.kernel.cycle import (
    CombHandle,
    CycleEngine,
    MAX_SETTLE_ITERATIONS,
    NULL_SEQ_HANDLE,
    SeqHandle,
)
from repro.kernel.events import Event, EventQueue
from repro.kernel.process import (
    MethodProcess,
    ThreadProcess,
    WaitCycles,
    WaitEvent,
)
from repro.kernel.signal import (
    Signal,
    SignalBundle,
    bytes_to_vector,
    vector_to_bytes,
)
from repro.kernel.simulator import RepeatingTask, Simulator
from repro.kernel.tracing import VcdTracer

__all__ = [
    "Clock",
    "CombHandle",
    "CycleEngine",
    "Event",
    "EventQueue",
    "MAX_SETTLE_ITERATIONS",
    "MethodProcess",
    "NULL_SEQ_HANDLE",
    "SeqHandle",
    "RepeatingTask",
    "Signal",
    "SignalBundle",
    "Simulator",
    "ThreadProcess",
    "VcdTracer",
    "WaitCycles",
    "WaitEvent",
    "bytes_to_vector",
    "vector_to_bytes",
]
