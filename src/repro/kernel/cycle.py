"""The 2-step cycle-based simulation engine.

The paper reports using a "2-step cycle-based simulation tool" to speed
up validation of the AHB+ models.  This module implements that engine:
every clock cycle consists of exactly two steps,

1. **Evaluate** — combinational processes run, repeatedly, until no
   signal changes (a bounded settle loop; exceeding the bound means the
   netlist has a combinational feedback loop and raises
   :class:`~repro.errors.CombinationalLoopError`), then
2. **Update** — all sequential processes observe the settled signal
   values and register their next state via
   :meth:`~repro.kernel.signal.Signal.drive_next`; afterwards every
   driven signal commits, and commits are followed by one more settle
   pass so combinational outputs reflect the new state.

Sensitivity semantics
---------------------
The engine supports *registered sensitivity lists*: a combinational
process registered with ``add_combinational(fn, sensitive_to=[...])``
is re-evaluated only when one of its declared input signals changed —
change tracking is push-based (each signal change marks its dependent
processes dirty through a watcher), so a settle pass costs O(dirty
processes) instead of O(netlist).  A process registered without a
sensitivity list is *static* and runs every pass, exactly as the
original full-sweep engine did.

Two obligations come with a sensitivity list and both are enforced by
convention (and verified by the RTL equivalence tests):

* the process must be a pure function of its declared signals plus
  component state that only mutates in the sequential phase, and
* a sequential process that mutates such component state must call
  ``touch()`` on the handle returned by :meth:`add_combinational`, so
  the next evaluate phase re-runs the process even though no signal
  changed.

These conventions are also checked *statically*: ``repro.lint``
(``make lint``) elaborates every registered scenario under a
read-tracking lint mode and reports contract violations as findings —
see the "Static analysis" section of the README for the full contract
table with the rule ID that enforces each obligation.

Sequential quiescence and cycle skip-ahead
------------------------------------------
Sequential processes have the mirror-image discipline:
:meth:`add_sequential` returns a :class:`SeqHandle`, and a component
whose ``update()`` has become a guaranteed no-op may declare itself
idle — ``handle.idle()`` (until an input edge re-arms it) or
``handle.idle(until=cycle)`` (a scheduled self-wake, e.g. a master's
think-time expiry or the DDRC's refresh deadline).  Idle handles are
skipped by :meth:`CycleEngine.step`; they re-arm when their wake cycle
arrives, when another component calls :meth:`SeqHandle.wake`, or when
one of the signals named in ``add_sequential(..., wake_on=[...])``
changes value.  The obligation mirrors the combinational ``touch``
contract: while idle, the reference engine running the process every
cycle would neither change component state (beyond what the component
re-accounts on wake) nor drive any signal to a new value.

Update dispatch is event-driven: scheduled self-wakes live on a
bucketed :class:`~repro.kernel.events.EventQueue` (invalidated lazily —
an entry is live only while its handle is still idle with that exact
wake cycle), and active cycles iterate a registration-order *run list*
of awake handles instead of sweeping every registered process.  An
active cycle therefore costs O(components with pending transitions),
and the skip-ahead wake target is a queue peek instead of an
O(components) scan.  Mid-update wakes preserve the reference sweep's
visit semantics exactly: a handle woken by an earlier-registered
process runs in the same cycle (spliced into the run list at its
registration-order position), one woken by a later-registered process
runs the next cycle.

When *every* sequential handle is idle and no combinational work is
pending, :meth:`CycleEngine.run`/:meth:`run_until` **skip ahead**: the
cycle counter advances analytically to the earliest scheduled wake
instead of spinning through no-op cycles.  Cycle hooks still fire for
every skipped cycle (so VCD sampling and protocol checkers observe an
identical cycle sequence — no signal changes during a skipped region,
so change-based tracers emit nothing); hooks must therefore not mutate
simulation state.

Commit semantics are untouched: the engine observes the same settled
values, commits registered drives simultaneously, and produces
cycle-identical traces to the full sweep (pass ``sensitivity=False`` to
get the original sweep-everything behaviour — it disables quiescence
and skip-ahead too, restoring the reference per-cycle sweep).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CombinationalLoopError, SimulationError
from repro.kernel.events import EventQueue
from repro.kernel.signal import Signal

CombProcess = Callable[[], None]
SeqProcess = Callable[[], None]

#: Safety bound on evaluate-phase iterations per cycle.  Real netlists
#: settle in a handful of passes; hitting the bound means a loop.
MAX_SETTLE_ITERATIONS = 64

#: Lint-elaboration observer (see :mod:`repro.lint.trace`).  ``None``
#: outside a lint elaboration: registration pays one ``is not None``
#: test and the per-cycle hot loops pay nothing at all.  When set, the
#: observer is told about every process registration (it records the
#: declared sensitivity/wake contract and wraps ``handle.fn`` so signal
#: reads can be attributed to the running process).
_lint_observer = None


class CombHandle:
    """Registration handle for one combinational process.

    ``static`` processes (no sensitivity list) run every evaluate pass;
    sensitivity-listed processes run only while ``dirty``.  Sequential
    code that mutates state the process reads must call :meth:`touch`.
    """

    __slots__ = ("fn", "dirty", "static", "engine")

    def __init__(
        self,
        fn: CombProcess,
        static: bool,
        engine: Optional["CycleEngine"] = None,
    ) -> None:
        self.fn = fn
        self.static = static
        self.dirty = True
        self.engine = engine

    def touch(self) -> None:
        """Force re-evaluation in the next settle pass."""
        self.dirty = True
        engine = self.engine
        if engine is not None:
            engine._comb_pending = True


class SeqHandle:
    """Registration handle for one sequential process.

    Components use it to declare quiescence: :meth:`idle` marks the
    process skippable (optionally until a scheduled wake cycle) and
    :meth:`wake` re-arms it.  See the module docstring for the no-op
    obligation an idle declaration carries.

    Scheduled wakes are events: ``idle(until=...)`` pushes a
    ``(cycle, handle)`` entry onto the engine's wake queue.  Entries are
    invalidated lazily — one is live only while its handle is still
    idle with ``wake_at`` at (or before) the popped timestamp — so
    re-arming or re-scheduling never has to search the queue.
    """

    __slots__ = ("fn", "active", "wake_at", "order", "_listed", "_engine")

    def __init__(self, fn: SeqProcess, engine: "CycleEngine", order: int = 0) -> None:
        self.fn = fn
        self._engine = engine
        self.active = True
        #: Registration index — the reference sweep's visit position,
        #: used to keep the event-driven run list order-identical.
        self.order = order
        #: Whether the handle currently has an entry in the engine's run
        #: list (entries persist as skippable stales after idling).
        self._listed = False
        #: Cycle at which the engine re-arms the handle by itself, or
        #: ``None`` for event-only wake (an input edge / explicit wake).
        self.wake_at: Optional[int] = None

    def idle(self, until: Optional[int] = None) -> None:
        """Declare the process a no-op until *until* (or an input edge)."""
        engine = self._engine
        if self.active:
            self.active = False
            engine._active_seq -= 1
        elif self.wake_at == until:
            return  # unchanged schedule: the queued entry is still live
        self.wake_at = until
        if until is not None and engine._quiescence:
            engine._wake_queue.push(until, self)

    def wake(self) -> None:
        """Re-arm the process (no-op when it is already active)."""
        if not self.active:
            self.active = True
            self.wake_at = None
            engine = self._engine
            engine._active_seq += 1
            if not self._listed:
                if engine._in_update and self.order > engine._cur_order:
                    # Woken mid-update by an earlier-registered process:
                    # the reference sweep would still visit it this
                    # cycle, so splice it into the remaining run list.
                    engine._insert_run(self)
                else:
                    engine._run_dirty = True


class _NullSeqHandle:
    """Stand-in handle for components not driven by a cycle engine.

    Unit tests construct RTL components and call ``update()`` directly;
    their quiescence self-assessment then lands here and does nothing.
    """

    __slots__ = ()

    def idle(self, until: Optional[int] = None) -> None:  # noqa: ARG002
        pass

    def wake(self) -> None:
        pass


#: Shared no-op handle (stateless, so one instance serves everyone).
NULL_SEQ_HANDLE = _NullSeqHandle()


class CycleEngine:
    """Two-step (evaluate/update) cycle-based simulator.

    Components register combinational processes (optionally with a
    sensitivity list), sequential processes and the signals they drive.
    :meth:`step` advances exactly one clock cycle; :meth:`run` advances
    many.

    Parameters
    ----------
    sensitivity:
        When true (default), sensitivity-listed combinational processes
        are skipped while their inputs are unchanged.  When false the
        engine sweeps every process every pass — the original reference
        behaviour, kept for equivalence testing.
    quiescence:
        When true, idle-declared sequential processes are skipped and
        :meth:`run`/:meth:`run_until` may skip ahead over fully idle
        cycle ranges.  Defaults to *sensitivity*, so ``full_sweep``
        platforms get the reference per-cycle sweep on both phases.
    """

    def __init__(
        self,
        name: str = "cycle-engine",
        sensitivity: bool = True,
        quiescence: Optional[bool] = None,
    ) -> None:
        self.name = name
        self._comb: List[CombHandle] = []
        self._seq: List[SeqHandle] = []
        self._signals: List[Signal] = []
        self.cycle = 0
        self._eval_passes = 0
        self._on_cycle_end: List[Callable[[int], None]] = []
        self._sensitivity = sensitivity
        self._quiescence = sensitivity if quiescence is None else quiescence
        #: Number of currently active (non-idle) sequential handles.
        self._active_seq = 0
        self._seq_total = 0
        #: Scheduled self-wakes as (cycle, handle) events; entries are
        #: lazily invalidated (see :class:`SeqHandle`).
        self._wake_queue = EventQueue()
        #: Awake handles in registration order; stale (re-idled) entries
        #: are skipped at visit time and dropped at the next rebuild.
        self._run_list: List[SeqHandle] = []
        #: An active handle exists that is not on the run list yet.
        self._run_dirty = True
        #: True while the update phase iterates the run list; gates the
        #: mid-update wake splice in :meth:`SeqHandle.wake`.
        self._in_update = False
        #: Registration order of the handle currently being updated.
        self._cur_order = -1
        #: Run-list index of the handle currently being updated.
        self._run_pos = 0
        #: A static combinational process forbids skip-ahead: it runs
        #: every pass, so an "idle" cycle could still change signals.
        self._has_static_comb = False
        #: Cached ``_has_static_comb or not sensitivity`` — the per-step
        #: "must settle even when nothing is pending" test.
        self._settle_live = not sensitivity
        self.cycles_skipped = 0
        #: signal -> dependent combinational handles (shared with the
        #: watcher closures, so late registrations extend them in place).
        #: Keyed by the Signal object (identity hash), which also keeps
        #: sensitivity-list signals alive for the engine's lifetime.
        self._deps: Dict[Signal, List[CombHandle]] = {}
        #: signals that already carry an engine watcher, mapped to
        #: whether that watcher also reports settle-convergence changes.
        self._watched: Dict[Signal, bool] = {}
        #: Signals driven via drive_next since the last commit phase.
        self._pending_commits: List[Signal] = []
        #: True when any *registered* signal changed in the current pass.
        self._pass_changed = False
        #: True while any combinational handle may be dirty — raised by
        #: every dirty-marking path (watchers, touch, registration) and
        #: lowered per settle pass, so a fully clean settle is one flag
        #: test instead of an O(netlist) sweep.
        self._comb_pending = True

    # -- registration ---------------------------------------------------------

    def _dep_list(self, sig: Signal) -> List[CombHandle]:
        deps = self._deps.get(sig)
        if deps is None:
            deps = []
            self._deps[sig] = deps
        return deps

    def _attach_watcher(self, sig: Signal, registered: bool) -> None:
        """Attach the engine's change watcher to *sig* (at most once each kind)."""
        already = self._watched.get(sig)
        if already is None:
            deps = self._dep_list(sig)
            if registered:

                def on_change(_sig: Signal, deps: List[CombHandle] = deps) -> None:
                    self._pass_changed = True
                    # A dep-free registered signal (data buses, counters)
                    # dirties nothing, so its commit need not schedule a
                    # settle.  The list is shared with _dep_list, so a
                    # later sensitivity registration is seen here.
                    if deps:
                        self._comb_pending = True
                        for handle in deps:
                            handle.dirty = True

            else:

                def on_change(_sig: Signal, deps: List[CombHandle] = deps) -> None:
                    if deps:
                        self._comb_pending = True
                        for handle in deps:
                            handle.dirty = True

            sig.watch(on_change)
            self._watched[sig] = registered
        elif registered and not already:
            # Was watched for dependency marking only (sensitivity list
            # registered before add_signal); add convergence reporting.
            def on_registered(_sig: Signal) -> None:
                self._pass_changed = True

            sig.watch(on_registered)
            self._watched[sig] = True

    def add_combinational(
        self,
        process: CombProcess,
        sensitive_to: Optional[
            Sequence[Union[Signal, Tuple[Signal, Callable[[], bool]]]]
        ] = None,
    ) -> CombHandle:
        """Register a combinational process; returns its :class:`CombHandle`.

        Without *sensitive_to* the process is static (runs every
        evaluate pass).  With a sensitivity list it runs only when one
        of the listed signals changed since its last evaluation — see
        the module docstring for the purity/touch obligations.

        As with :meth:`add_sequential`, an entry may be a ``(signal,
        predicate)`` pair: the change marks the process dirty only while
        ``predicate()`` is true.  The predicate must be conservative
        over the *output* function — whenever the changed signal can
        influence any value the process drives, it returns true.
        Predicates read sequential-phase component state, which is
        stable for the whole settle, so the filter decision cannot
        change mid-evaluate.
        """
        handle = CombHandle(process, static=sensitive_to is None, engine=self)
        self._comb.append(handle)
        self._comb_pending = True
        if sensitive_to is not None:
            for entry in sensitive_to:
                if type(entry) is tuple:
                    sig, predicate = entry

                    def on_change(
                        _sig: Signal,
                        handle: CombHandle = handle,
                        predicate: Callable[[], bool] = predicate,
                    ) -> None:
                        if predicate():
                            handle.dirty = True
                            self._comb_pending = True

                    sig.watch(on_change)
                else:
                    self._dep_list(entry).append(handle)
                    self._attach_watcher(entry, registered=False)
        else:
            self._has_static_comb = True
            self._settle_live = True
        if _lint_observer is not None:
            _lint_observer.combinational(self, handle, process, sensitive_to)
        return handle

    def add_sequential(
        self,
        process: SeqProcess,
        wake_on: Optional[
            Sequence[Union[Signal, Tuple[Signal, Callable[[], bool]]]]
        ] = None,
    ) -> SeqHandle:
        """Register a sequential process; returns its :class:`SeqHandle`.

        The process runs once per cycle at the edge unless its handle
        declares quiescence.  *wake_on* names input signals whose value
        changes re-arm an idle handle — a change during the evaluate
        phase re-arms it for the same cycle's update, a change during
        the commit phase for the next cycle's (exactly when the changed
        value becomes observable to the process).

        An entry may also be a ``(signal, predicate)`` pair: the change
        re-arms the handle only while ``predicate()`` is true.  The
        predicate must be *conservative* — whenever the idle process
        would act on the changed value, it returns true (a spurious true
        only costs one no-op update; a false negative loses a cycle the
        reference sweep would have seen).  Components use this to mask
        edges their current FSM state provably ignores.
        """
        handle = SeqHandle(process, self, order=self._seq_total)
        self._seq.append(handle)
        self._active_seq += 1
        self._seq_total += 1
        self._run_dirty = True
        if wake_on is not None:
            for entry in wake_on:
                if type(entry) is tuple:
                    sig, predicate = entry

                    def on_change(
                        _sig: Signal,
                        handle: SeqHandle = handle,
                        predicate: Callable[[], bool] = predicate,
                    ) -> None:
                        if predicate():
                            handle.wake()

                else:
                    sig = entry

                    def on_change(  # type: ignore[misc]
                        _sig: Signal, handle: SeqHandle = handle
                    ) -> None:
                        handle.wake()

                sig.watch(on_change)
        if _lint_observer is not None:
            _lint_observer.sequential(self, handle, process, wake_on)
        return handle

    def add_signal(self, *signals: Signal) -> None:
        """Register signals so their registered drives commit at the edge."""
        for sig in signals:
            self._signals.append(sig)
            self._attach_watcher(sig, registered=True)
            sig.attach_commit_hook(self._pending_commits.append)

    def add_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every cycle (tracing, monitors)."""
        self._on_cycle_end.append(hook)

    # -- state ------------------------------------------------------------------

    @property
    def evaluate_passes(self) -> int:
        """Total evaluate-phase passes executed (a cost/diagnostic metric)."""
        return self._eval_passes

    @property
    def sensitivity_enabled(self) -> bool:
        """Whether sensitivity-based process skipping is active."""
        return self._sensitivity

    @property
    def quiescence_enabled(self) -> bool:
        """Whether sequential quiescence and skip-ahead are active."""
        return self._quiescence

    # -- execution ---------------------------------------------------------------

    def _settle(self) -> None:
        """Run combinational processes until no registered signal changes."""
        comb = self._comb
        if self._sensitivity:
            if not self._comb_pending and not self._has_static_comb:
                # Nothing was marked dirty since the last convergence:
                # the pass would visit every handle and run none.
                return
            for _iteration in range(MAX_SETTLE_ITERATIONS):
                self._eval_passes += 1
                self._pass_changed = False
                # Cleared before the pass; any dirty-marking during it
                # (watcher or touch) re-raises the flag, so a handle
                # left dirty at convergence keeps the next settle live.
                self._comb_pending = False
                for handle in comb:
                    if handle.dirty or handle.static:
                        handle.dirty = False
                        handle.fn()
                if not self._pass_changed:
                    return
        else:
            # Reference full sweep: every process, every pass, with
            # convergence read from the per-signal changed flags.
            for sig in self._signals:
                sig.consume_changed()
            for _iteration in range(MAX_SETTLE_ITERATIONS):
                self._eval_passes += 1
                for handle in comb:
                    handle.fn()
                changed = False
                for sig in self._signals:
                    if sig.consume_changed():
                        changed = True
                if not changed:
                    return
        raise CombinationalLoopError(
            f"{self.name}: combinational logic failed to settle in "
            f"{MAX_SETTLE_ITERATIONS} iterations at cycle {self.cycle}"
        )

    def _commit_pending(self) -> None:
        """Commit every signal driven since the last edge (order-stable)."""
        pending = self._pending_commits
        if pending:
            for sig in pending:
                sig._commit_queued = False
                sig.commit()
            pending.clear()

    def _rebuild_run_list(self) -> None:
        """Recollect the awake handles in registration order."""
        run_list = []
        for handle in self._seq:
            if handle.active:
                handle._listed = True
                run_list.append(handle)
            else:
                handle._listed = False
        self._run_list = run_list
        self._run_dirty = False

    def _insert_run(self, handle: SeqHandle) -> None:
        """Splice a mid-update wake into the rest of this cycle's pass.

        The run list is sorted by registration order (stale entries keep
        their slots), so a bisect past the current position lands the
        handle exactly where the reference sweep would visit it.
        """
        run_list = self._run_list
        order = handle.order
        lo = self._run_pos + 1
        hi = len(run_list)
        while lo < hi:
            mid = (lo + hi) // 2
            if run_list[mid].order < order:
                lo = mid + 1
            else:
                hi = mid
        run_list.insert(lo, handle)
        handle._listed = True

    def step(self) -> None:
        """Advance one clock cycle (evaluate, then update)."""
        # The _settle/_commit calls are guarded here so a clean phase
        # costs one flag test instead of a function call — this loop is
        # the whole RTL model's per-cycle overhead.
        settle_live = self._settle_live
        # Step 1: evaluate — settle all combinational logic.
        if settle_live or self._comb_pending:
            self._settle()
        # Step 2: update — sequential processes sample settled inputs...
        if self._quiescence:
            cyc = self.cycle
            # Fire due scheduled wakes (think-time expiry, refresh
            # deadline).  Stale entries — handle re-armed or re-scheduled
            # since the push — are discarded here, lazily.
            wake_queue = self._wake_queue
            if wake_queue._size:
                when = wake_queue.peek_time()
                while when is not None and when <= cyc:
                    handle = wake_queue.pop()[1]
                    if (
                        not handle.active
                        and handle.wake_at is not None
                        and handle.wake_at <= cyc
                    ):
                        handle.active = True
                        handle.wake_at = None
                        self._active_seq += 1
                        if not handle._listed:
                            self._run_dirty = True
                    when = wake_queue.peek_time()
            if self._active_seq:
                if self._run_dirty:
                    self._rebuild_run_list()
                run_list = self._run_list
                self._in_update = True
                pos = 0
                n = len(run_list)
                while pos < n:
                    handle = run_list[pos]
                    if handle.active:
                        self._run_pos = pos
                        self._cur_order = handle.order
                        handle.fn()
                        # Only fn() can splice new entries into the list.
                        n = len(run_list)
                    pos += 1
                self._in_update = False
        else:
            for handle in self._seq:
                handle.fn()
        # ...then registered outputs become visible, simultaneously.
        if self._pending_commits:
            self._commit_pending()
        # New register values must propagate through combinational logic
        # before monitors sample end-of-cycle state.
        if settle_live or self._comb_pending:
            self._settle()
        self.cycle += 1
        hooks = self._on_cycle_end
        if hooks:
            for hook in hooks:
                hook(self.cycle)

    # -- skip-ahead --------------------------------------------------------------

    def _can_skip(self) -> bool:
        """All sequential handles idle and no combinational work pending.

        ``_comb_pending`` is raised by every dirty-marking path, so a
        lowered flag proves the next settle would run nothing.
        """
        return not (
            self._has_static_comb
            or self._pending_commits
            or self._comb_pending
        )

    def _wake_target(self, limit: int) -> int:
        """Earliest scheduled wake among idle handles, clamped to *limit*.

        A queue peek instead of an O(components) scan: stale entries at
        the head (handle re-armed or re-scheduled since the push) are
        popped and dropped; the first live entry is left in place for
        :meth:`step`'s due-wake processing and its time returned.  Every
        idle handle with a ``wake_at`` is guaranteed a live entry at
        exactly that cycle (see :meth:`SeqHandle.idle`), so the clamp
        semantics match the old scan bit for bit.
        """
        wake_queue = self._wake_queue
        while True:
            head = wake_queue.front()
            if head is None or head[0] >= limit:
                return limit
            handle = head[1]
            if not handle.active and handle.wake_at == head[0]:
                return head[0]
            wake_queue.pop()

    def _advance_idle(self, target: int) -> None:
        """Jump the cycle counter to *target* without stepping.

        Cycle hooks still observe every skipped cycle number (signal
        values are provably unchanged across the region, so change-based
        consumers like the VCD tracer emit nothing).
        """
        self.cycles_skipped += target - self.cycle
        hooks = self._on_cycle_end
        if hooks:
            while self.cycle < target:
                self.cycle += 1
                for hook in hooks:
                    hook(self.cycle)
        else:
            self.cycle = target

    def run(self, cycles: int) -> int:
        """Advance *cycles* clock cycles; returns the new cycle count.

        Fully idle cycle ranges are skipped analytically (see the module
        docstring); the returned cycle count is identical either way.
        """
        if cycles < 0:
            raise SimulationError(f"cannot run a negative cycle count {cycles}")
        end = self.cycle + cycles
        while self.cycle < end:
            if self._quiescence and self._active_seq == 0 and self._can_skip():
                target = self._wake_target(end)
                if target > self.cycle:
                    self._advance_idle(target)
                    continue
            self.step()
        return self.cycle

    def run_until(
        self, predicate: Callable[[], bool], max_cycles: int = 1_000_000
    ) -> int:
        """Step until *predicate()* is true; returns cycles consumed.

        Raises :class:`~repro.errors.SimulationError` if the predicate is
        still false after *max_cycles* steps, so a deadlocked model fails
        loudly instead of spinning forever.  Skip-ahead assumes the
        predicate is constant while the netlist is quiescent (true for
        any predicate over component/signal state).
        """
        start = self.cycle
        end = start + max_cycles
        while self.cycle < end:
            if predicate():
                return self.cycle - start
            if self._quiescence and self._active_seq == 0 and self._can_skip():
                target = self._wake_target(end)
                if target > self.cycle:
                    self._advance_idle(target)
                    continue
            self.step()
        raise SimulationError(
            f"{self.name}: predicate not satisfied within {max_cycles} cycles"
        )
