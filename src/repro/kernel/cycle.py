"""The 2-step cycle-based simulation engine.

The paper reports using a "2-step cycle-based simulation tool" to speed
up validation of the AHB+ models.  This module implements that engine:
every clock cycle consists of exactly two steps,

1. **Evaluate** — combinational processes run, repeatedly, until no
   signal changes (a bounded settle loop; exceeding the bound means the
   netlist has a combinational feedback loop and raises
   :class:`~repro.errors.CombinationalLoopError`), then
2. **Update** — all sequential processes observe the settled signal
   values and register their next state via
   :meth:`~repro.kernel.signal.Signal.drive_next`; afterwards every
   driven signal commits, and commits are followed by one more settle
   pass so combinational outputs reflect the new state.

Sensitivity semantics
---------------------
The engine supports *registered sensitivity lists*: a combinational
process registered with ``add_combinational(fn, sensitive_to=[...])``
is re-evaluated only when one of its declared input signals changed —
change tracking is push-based (each signal change marks its dependent
processes dirty through a watcher), so a settle pass costs O(dirty
processes) instead of O(netlist).  A process registered without a
sensitivity list is *static* and runs every pass, exactly as the
original full-sweep engine did.

Two obligations come with a sensitivity list and both are enforced by
convention (and verified by the RTL equivalence tests):

* the process must be a pure function of its declared signals plus
  component state that only mutates in the sequential phase, and
* a sequential process that mutates such component state must call
  ``touch()`` on the handle returned by :meth:`add_combinational`, so
  the next evaluate phase re-runs the process even though no signal
  changed.

Sequential quiescence and cycle skip-ahead
------------------------------------------
Sequential processes have the mirror-image discipline:
:meth:`add_sequential` returns a :class:`SeqHandle`, and a component
whose ``update()`` has become a guaranteed no-op may declare itself
idle — ``handle.idle()`` (until an input edge re-arms it) or
``handle.idle(until=cycle)`` (a scheduled self-wake, e.g. a master's
think-time expiry or the DDRC's refresh deadline).  Idle handles are
skipped by :meth:`CycleEngine.step`; they re-arm when their wake cycle
arrives, when another component calls :meth:`SeqHandle.wake`, or when
one of the signals named in ``add_sequential(..., wake_on=[...])``
changes value.  The obligation mirrors the combinational ``touch``
contract: while idle, the reference engine running the process every
cycle would neither change component state (beyond what the component
re-accounts on wake) nor drive any signal to a new value.

When *every* sequential handle is idle and no combinational work is
pending, :meth:`CycleEngine.run`/:meth:`run_until` **skip ahead**: the
cycle counter advances analytically to the earliest scheduled wake
instead of spinning through no-op cycles.  Cycle hooks still fire for
every skipped cycle (so VCD sampling and protocol checkers observe an
identical cycle sequence — no signal changes during a skipped region,
so change-based tracers emit nothing); hooks must therefore not mutate
simulation state.

Commit semantics are untouched: the engine observes the same settled
values, commits registered drives simultaneously, and produces
cycle-identical traces to the full sweep (pass ``sensitivity=False`` to
get the original sweep-everything behaviour — it disables quiescence
and skip-ahead too, restoring the reference per-cycle sweep).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import CombinationalLoopError, SimulationError
from repro.kernel.signal import Signal

CombProcess = Callable[[], None]
SeqProcess = Callable[[], None]

#: Safety bound on evaluate-phase iterations per cycle.  Real netlists
#: settle in a handful of passes; hitting the bound means a loop.
MAX_SETTLE_ITERATIONS = 64


class CombHandle:
    """Registration handle for one combinational process.

    ``static`` processes (no sensitivity list) run every evaluate pass;
    sensitivity-listed processes run only while ``dirty``.  Sequential
    code that mutates state the process reads must call :meth:`touch`.
    """

    __slots__ = ("fn", "dirty", "static", "engine")

    def __init__(
        self,
        fn: CombProcess,
        static: bool,
        engine: Optional["CycleEngine"] = None,
    ) -> None:
        self.fn = fn
        self.static = static
        self.dirty = True
        self.engine = engine

    def touch(self) -> None:
        """Force re-evaluation in the next settle pass."""
        self.dirty = True
        engine = self.engine
        if engine is not None:
            engine._comb_pending = True


class SeqHandle:
    """Registration handle for one sequential process.

    Components use it to declare quiescence: :meth:`idle` marks the
    process skippable (optionally until a scheduled wake cycle) and
    :meth:`wake` re-arms it.  See the module docstring for the no-op
    obligation an idle declaration carries.
    """

    __slots__ = ("fn", "active", "wake_at", "_engine")

    def __init__(self, fn: SeqProcess, engine: "CycleEngine") -> None:
        self.fn = fn
        self._engine = engine
        self.active = True
        #: Cycle at which the engine re-arms the handle by itself, or
        #: ``None`` for event-only wake (an input edge / explicit wake).
        self.wake_at: Optional[int] = None

    def idle(self, until: Optional[int] = None) -> None:
        """Declare the process a no-op until *until* (or an input edge)."""
        if self.active:
            self.active = False
            self._engine._active_seq -= 1
        self.wake_at = until

    def wake(self) -> None:
        """Re-arm the process (no-op when it is already active)."""
        if not self.active:
            self.active = True
            self.wake_at = None
            self._engine._active_seq += 1


class _NullSeqHandle:
    """Stand-in handle for components not driven by a cycle engine.

    Unit tests construct RTL components and call ``update()`` directly;
    their quiescence self-assessment then lands here and does nothing.
    """

    __slots__ = ()

    def idle(self, until: Optional[int] = None) -> None:  # noqa: ARG002
        pass

    def wake(self) -> None:
        pass


#: Shared no-op handle (stateless, so one instance serves everyone).
NULL_SEQ_HANDLE = _NullSeqHandle()


class CycleEngine:
    """Two-step (evaluate/update) cycle-based simulator.

    Components register combinational processes (optionally with a
    sensitivity list), sequential processes and the signals they drive.
    :meth:`step` advances exactly one clock cycle; :meth:`run` advances
    many.

    Parameters
    ----------
    sensitivity:
        When true (default), sensitivity-listed combinational processes
        are skipped while their inputs are unchanged.  When false the
        engine sweeps every process every pass — the original reference
        behaviour, kept for equivalence testing.
    quiescence:
        When true, idle-declared sequential processes are skipped and
        :meth:`run`/:meth:`run_until` may skip ahead over fully idle
        cycle ranges.  Defaults to *sensitivity*, so ``full_sweep``
        platforms get the reference per-cycle sweep on both phases.
    """

    def __init__(
        self,
        name: str = "cycle-engine",
        sensitivity: bool = True,
        quiescence: Optional[bool] = None,
    ) -> None:
        self.name = name
        self._comb: List[CombHandle] = []
        self._seq: List[SeqHandle] = []
        self._signals: List[Signal] = []
        self.cycle = 0
        self._eval_passes = 0
        self._on_cycle_end: List[Callable[[int], None]] = []
        self._sensitivity = sensitivity
        self._quiescence = sensitivity if quiescence is None else quiescence
        #: Number of currently active (non-idle) sequential handles.
        self._active_seq = 0
        self._seq_total = 0
        #: A static combinational process forbids skip-ahead: it runs
        #: every pass, so an "idle" cycle could still change signals.
        self._has_static_comb = False
        self.cycles_skipped = 0
        #: signal -> dependent combinational handles (shared with the
        #: watcher closures, so late registrations extend them in place).
        #: Keyed by the Signal object (identity hash), which also keeps
        #: sensitivity-list signals alive for the engine's lifetime.
        self._deps: Dict[Signal, List[CombHandle]] = {}
        #: signals that already carry an engine watcher, mapped to
        #: whether that watcher also reports settle-convergence changes.
        self._watched: Dict[Signal, bool] = {}
        #: Signals driven via drive_next since the last commit phase.
        self._pending_commits: List[Signal] = []
        #: True when any *registered* signal changed in the current pass.
        self._pass_changed = False
        #: True while any combinational handle may be dirty — raised by
        #: every dirty-marking path (watchers, touch, registration) and
        #: lowered per settle pass, so a fully clean settle is one flag
        #: test instead of an O(netlist) sweep.
        self._comb_pending = True

    # -- registration ---------------------------------------------------------

    def _dep_list(self, sig: Signal) -> List[CombHandle]:
        deps = self._deps.get(sig)
        if deps is None:
            deps = []
            self._deps[sig] = deps
        return deps

    def _attach_watcher(self, sig: Signal, registered: bool) -> None:
        """Attach the engine's change watcher to *sig* (at most once each kind)."""
        already = self._watched.get(sig)
        if already is None:
            deps = self._dep_list(sig)
            if registered:

                def on_change(_sig: Signal, deps: List[CombHandle] = deps) -> None:
                    self._pass_changed = True
                    self._comb_pending = True
                    for handle in deps:
                        handle.dirty = True

            else:

                def on_change(_sig: Signal, deps: List[CombHandle] = deps) -> None:
                    self._comb_pending = True
                    for handle in deps:
                        handle.dirty = True

            sig.watch(on_change)
            self._watched[sig] = registered
        elif registered and not already:
            # Was watched for dependency marking only (sensitivity list
            # registered before add_signal); add convergence reporting.
            def on_registered(_sig: Signal) -> None:
                self._pass_changed = True

            sig.watch(on_registered)
            self._watched[sig] = True

    def add_combinational(
        self,
        process: CombProcess,
        sensitive_to: Optional[Sequence[Signal]] = None,
    ) -> CombHandle:
        """Register a combinational process; returns its :class:`CombHandle`.

        Without *sensitive_to* the process is static (runs every
        evaluate pass).  With a sensitivity list it runs only when one
        of the listed signals changed since its last evaluation — see
        the module docstring for the purity/touch obligations.
        """
        handle = CombHandle(process, static=sensitive_to is None, engine=self)
        self._comb.append(handle)
        self._comb_pending = True
        if sensitive_to is not None:
            for sig in sensitive_to:
                self._dep_list(sig).append(handle)
                self._attach_watcher(sig, registered=False)
        else:
            self._has_static_comb = True
        return handle

    def add_sequential(
        self,
        process: SeqProcess,
        wake_on: Optional[Sequence[Signal]] = None,
    ) -> SeqHandle:
        """Register a sequential process; returns its :class:`SeqHandle`.

        The process runs once per cycle at the edge unless its handle
        declares quiescence.  *wake_on* names input signals whose value
        changes re-arm an idle handle — a change during the evaluate
        phase re-arms it for the same cycle's update, a change during
        the commit phase for the next cycle's (exactly when the changed
        value becomes observable to the process).
        """
        handle = SeqHandle(process, self)
        self._seq.append(handle)
        self._active_seq += 1
        self._seq_total += 1
        if wake_on is not None:
            for sig in wake_on:

                def on_change(_sig: Signal, handle: SeqHandle = handle) -> None:
                    handle.wake()

                sig.watch(on_change)
        return handle

    def add_signal(self, *signals: Signal) -> None:
        """Register signals so their registered drives commit at the edge."""
        for sig in signals:
            self._signals.append(sig)
            self._attach_watcher(sig, registered=True)
            sig.attach_commit_hook(self._pending_commits.append)

    def add_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every cycle (tracing, monitors)."""
        self._on_cycle_end.append(hook)

    # -- state ------------------------------------------------------------------

    @property
    def evaluate_passes(self) -> int:
        """Total evaluate-phase passes executed (a cost/diagnostic metric)."""
        return self._eval_passes

    @property
    def sensitivity_enabled(self) -> bool:
        """Whether sensitivity-based process skipping is active."""
        return self._sensitivity

    @property
    def quiescence_enabled(self) -> bool:
        """Whether sequential quiescence and skip-ahead are active."""
        return self._quiescence

    # -- execution ---------------------------------------------------------------

    def _settle(self) -> None:
        """Run combinational processes until no registered signal changes."""
        comb = self._comb
        if self._sensitivity:
            if not self._comb_pending and not self._has_static_comb:
                # Nothing was marked dirty since the last convergence:
                # the pass would visit every handle and run none.
                return
            for _iteration in range(MAX_SETTLE_ITERATIONS):
                self._eval_passes += 1
                self._pass_changed = False
                # Cleared before the pass; any dirty-marking during it
                # (watcher or touch) re-raises the flag, so a handle
                # left dirty at convergence keeps the next settle live.
                self._comb_pending = False
                for handle in comb:
                    if handle.dirty or handle.static:
                        handle.dirty = False
                        handle.fn()
                if not self._pass_changed:
                    return
        else:
            # Reference full sweep: every process, every pass, with
            # convergence read from the per-signal changed flags.
            for sig in self._signals:
                sig.consume_changed()
            for _iteration in range(MAX_SETTLE_ITERATIONS):
                self._eval_passes += 1
                for handle in comb:
                    handle.fn()
                changed = False
                for sig in self._signals:
                    if sig.consume_changed():
                        changed = True
                if not changed:
                    return
        raise CombinationalLoopError(
            f"{self.name}: combinational logic failed to settle in "
            f"{MAX_SETTLE_ITERATIONS} iterations at cycle {self.cycle}"
        )

    def _commit_pending(self) -> None:
        """Commit every signal driven since the last edge (order-stable)."""
        pending = self._pending_commits
        if pending:
            for sig in pending:
                sig._commit_queued = False
                sig.commit()
            pending.clear()

    def step(self) -> None:
        """Advance one clock cycle (evaluate, then update)."""
        # The _settle/_commit calls are guarded here so a clean phase
        # costs one flag test instead of a function call — this loop is
        # the whole RTL model's per-cycle overhead.
        settle_live = self._has_static_comb or not self._sensitivity
        # Step 1: evaluate — settle all combinational logic.
        if settle_live or self._comb_pending:
            self._settle()
        # Step 2: update — sequential processes sample settled inputs...
        if self._quiescence and self._active_seq != self._seq_total:
            cyc = self.cycle
            for handle in self._seq:
                if handle.active:
                    handle.fn()
                elif handle.wake_at is not None and handle.wake_at <= cyc:
                    # Scheduled self-wake (think-time expiry, refresh
                    # deadline): re-arm and run this cycle.
                    handle.active = True
                    handle.wake_at = None
                    self._active_seq += 1
                    handle.fn()
        else:
            for handle in self._seq:
                handle.fn()
        # ...then registered outputs become visible, simultaneously.
        if self._pending_commits:
            self._commit_pending()
        # New register values must propagate through combinational logic
        # before monitors sample end-of-cycle state.
        if settle_live or self._comb_pending:
            self._settle()
        self.cycle += 1
        hooks = self._on_cycle_end
        if hooks:
            for hook in hooks:
                hook(self.cycle)

    # -- skip-ahead --------------------------------------------------------------

    def _can_skip(self) -> bool:
        """All sequential handles idle and no combinational work pending.

        ``_comb_pending`` is raised by every dirty-marking path, so a
        lowered flag proves the next settle would run nothing.
        """
        return not (
            self._has_static_comb
            or self._pending_commits
            or self._comb_pending
        )

    def _wake_target(self, limit: int) -> int:
        """Earliest scheduled wake among idle handles, clamped to *limit*."""
        target = limit
        for handle in self._seq:
            wake = handle.wake_at
            if wake is not None and wake < target:
                target = wake
        return target

    def _advance_idle(self, target: int) -> None:
        """Jump the cycle counter to *target* without stepping.

        Cycle hooks still observe every skipped cycle number (signal
        values are provably unchanged across the region, so change-based
        consumers like the VCD tracer emit nothing).
        """
        self.cycles_skipped += target - self.cycle
        hooks = self._on_cycle_end
        if hooks:
            while self.cycle < target:
                self.cycle += 1
                for hook in hooks:
                    hook(self.cycle)
        else:
            self.cycle = target

    def run(self, cycles: int) -> int:
        """Advance *cycles* clock cycles; returns the new cycle count.

        Fully idle cycle ranges are skipped analytically (see the module
        docstring); the returned cycle count is identical either way.
        """
        if cycles < 0:
            raise SimulationError(f"cannot run a negative cycle count {cycles}")
        end = self.cycle + cycles
        while self.cycle < end:
            if self._quiescence and self._active_seq == 0 and self._can_skip():
                target = self._wake_target(end)
                if target > self.cycle:
                    self._advance_idle(target)
                    continue
            self.step()
        return self.cycle

    def run_until(
        self, predicate: Callable[[], bool], max_cycles: int = 1_000_000
    ) -> int:
        """Step until *predicate()* is true; returns cycles consumed.

        Raises :class:`~repro.errors.SimulationError` if the predicate is
        still false after *max_cycles* steps, so a deadlocked model fails
        loudly instead of spinning forever.  Skip-ahead assumes the
        predicate is constant while the netlist is quiescent (true for
        any predicate over component/signal state).
        """
        start = self.cycle
        end = start + max_cycles
        while self.cycle < end:
            if predicate():
                return self.cycle - start
            if self._quiescence and self._active_seq == 0 and self._can_skip():
                target = self._wake_target(end)
                if target > self.cycle:
                    self._advance_idle(target)
                    continue
            self.step()
        raise SimulationError(
            f"{self.name}: predicate not satisfied within {max_cycles} cycles"
        )
