"""The 2-step cycle-based simulation engine.

The paper reports using a "2-step cycle-based simulation tool" to speed
up validation of the AHB+ models.  This module implements that engine:
every clock cycle consists of exactly two steps,

1. **Evaluate** — combinational processes run, repeatedly, until no
   signal changes (a bounded settle loop; exceeding the bound means the
   netlist has a combinational feedback loop and raises
   :class:`~repro.errors.CombinationalLoopError`), then
2. **Update** — all sequential processes observe the settled signal
   values and register their next state via
   :meth:`~repro.kernel.signal.Signal.drive_next`; afterwards every
   driven signal commits, and commits are followed by one more settle
   pass so combinational outputs reflect the new state.

Sensitivity semantics
---------------------
The engine supports *registered sensitivity lists*: a combinational
process registered with ``add_combinational(fn, sensitive_to=[...])``
is re-evaluated only when one of its declared input signals changed —
change tracking is push-based (each signal change marks its dependent
processes dirty through a watcher), so a settle pass costs O(dirty
processes) instead of O(netlist).  A process registered without a
sensitivity list is *static* and runs every pass, exactly as the
original full-sweep engine did.

Two obligations come with a sensitivity list and both are enforced by
convention (and verified by the RTL equivalence tests):

* the process must be a pure function of its declared signals plus
  component state that only mutates in the sequential phase, and
* a sequential process that mutates such component state must call
  ``touch()`` on the handle returned by :meth:`add_combinational`, so
  the next evaluate phase re-runs the process even though no signal
  changed.

Commit semantics are untouched: the engine observes the same settled
values, commits registered drives simultaneously, and produces
cycle-identical traces to the full sweep (pass ``sensitivity=False`` to
get the original sweep-everything behaviour for cross-checks).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import CombinationalLoopError, SimulationError
from repro.kernel.signal import Signal

CombProcess = Callable[[], None]
SeqProcess = Callable[[], None]

#: Safety bound on evaluate-phase iterations per cycle.  Real netlists
#: settle in a handful of passes; hitting the bound means a loop.
MAX_SETTLE_ITERATIONS = 64


class CombHandle:
    """Registration handle for one combinational process.

    ``static`` processes (no sensitivity list) run every evaluate pass;
    sensitivity-listed processes run only while ``dirty``.  Sequential
    code that mutates state the process reads must call :meth:`touch`.
    """

    __slots__ = ("fn", "dirty", "static")

    def __init__(self, fn: CombProcess, static: bool) -> None:
        self.fn = fn
        self.static = static
        self.dirty = True

    def touch(self) -> None:
        """Force re-evaluation in the next settle pass."""
        self.dirty = True


class CycleEngine:
    """Two-step (evaluate/update) cycle-based simulator.

    Components register combinational processes (optionally with a
    sensitivity list), sequential processes and the signals they drive.
    :meth:`step` advances exactly one clock cycle; :meth:`run` advances
    many.

    Parameters
    ----------
    sensitivity:
        When true (default), sensitivity-listed combinational processes
        are skipped while their inputs are unchanged.  When false the
        engine sweeps every process every pass — the original reference
        behaviour, kept for equivalence testing.
    """

    def __init__(self, name: str = "cycle-engine", sensitivity: bool = True) -> None:
        self.name = name
        self._comb: List[CombHandle] = []
        self._seq: List[SeqProcess] = []
        self._signals: List[Signal] = []
        self._cycle = 0
        self._eval_passes = 0
        self._on_cycle_end: List[Callable[[int], None]] = []
        self._sensitivity = sensitivity
        #: signal -> dependent combinational handles (shared with the
        #: watcher closures, so late registrations extend them in place).
        #: Keyed by the Signal object (identity hash), which also keeps
        #: sensitivity-list signals alive for the engine's lifetime.
        self._deps: Dict[Signal, List[CombHandle]] = {}
        #: signals that already carry an engine watcher, mapped to
        #: whether that watcher also reports settle-convergence changes.
        self._watched: Dict[Signal, bool] = {}
        #: Signals driven via drive_next since the last commit phase.
        self._pending_commits: List[Signal] = []
        #: True when any *registered* signal changed in the current pass.
        self._pass_changed = False

    # -- registration ---------------------------------------------------------

    def _dep_list(self, sig: Signal) -> List[CombHandle]:
        deps = self._deps.get(sig)
        if deps is None:
            deps = []
            self._deps[sig] = deps
        return deps

    def _attach_watcher(self, sig: Signal, registered: bool) -> None:
        """Attach the engine's change watcher to *sig* (at most once each kind)."""
        already = self._watched.get(sig)
        if already is None:
            deps = self._dep_list(sig)
            if registered:

                def on_change(_sig: Signal, deps: List[CombHandle] = deps) -> None:
                    self._pass_changed = True
                    for handle in deps:
                        handle.dirty = True

            else:

                def on_change(_sig: Signal, deps: List[CombHandle] = deps) -> None:
                    for handle in deps:
                        handle.dirty = True

            sig.watch(on_change)
            self._watched[sig] = registered
        elif registered and not already:
            # Was watched for dependency marking only (sensitivity list
            # registered before add_signal); add convergence reporting.
            def on_registered(_sig: Signal) -> None:
                self._pass_changed = True

            sig.watch(on_registered)
            self._watched[sig] = True

    def add_combinational(
        self,
        process: CombProcess,
        sensitive_to: Optional[Sequence[Signal]] = None,
    ) -> CombHandle:
        """Register a combinational process; returns its :class:`CombHandle`.

        Without *sensitive_to* the process is static (runs every
        evaluate pass).  With a sensitivity list it runs only when one
        of the listed signals changed since its last evaluation — see
        the module docstring for the purity/touch obligations.
        """
        handle = CombHandle(process, static=sensitive_to is None)
        self._comb.append(handle)
        if sensitive_to is not None:
            for sig in sensitive_to:
                self._dep_list(sig).append(handle)
                self._attach_watcher(sig, registered=False)
        return handle

    def add_sequential(self, process: SeqProcess) -> None:
        """Register a sequential process (runs once per cycle, at the edge)."""
        self._seq.append(process)

    def add_signal(self, *signals: Signal) -> None:
        """Register signals so their registered drives commit at the edge."""
        for sig in signals:
            self._signals.append(sig)
            self._attach_watcher(sig, registered=True)
            sig.attach_commit_hook(self._pending_commits.append)

    def add_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every cycle (tracing, monitors)."""
        self._on_cycle_end.append(hook)

    # -- state ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._cycle

    @property
    def evaluate_passes(self) -> int:
        """Total evaluate-phase passes executed (a cost/diagnostic metric)."""
        return self._eval_passes

    @property
    def sensitivity_enabled(self) -> bool:
        """Whether sensitivity-based process skipping is active."""
        return self._sensitivity

    # -- execution ---------------------------------------------------------------

    def _settle(self) -> None:
        """Run combinational processes until no registered signal changes."""
        comb = self._comb
        if self._sensitivity:
            for _iteration in range(MAX_SETTLE_ITERATIONS):
                self._eval_passes += 1
                self._pass_changed = False
                for handle in comb:
                    if handle.dirty or handle.static:
                        handle.dirty = False
                        handle.fn()
                if not self._pass_changed:
                    return
        else:
            # Reference full sweep: every process, every pass, with
            # convergence read from the per-signal changed flags.
            for sig in self._signals:
                sig.consume_changed()
            for _iteration in range(MAX_SETTLE_ITERATIONS):
                self._eval_passes += 1
                for handle in comb:
                    handle.fn()
                changed = False
                for sig in self._signals:
                    if sig.consume_changed():
                        changed = True
                if not changed:
                    return
        raise CombinationalLoopError(
            f"{self.name}: combinational logic failed to settle in "
            f"{MAX_SETTLE_ITERATIONS} iterations at cycle {self._cycle}"
        )

    def _commit_pending(self) -> None:
        """Commit every signal driven since the last edge (order-stable)."""
        pending = self._pending_commits
        if pending:
            for sig in pending:
                sig._commit_queued = False
                sig.commit()
            pending.clear()

    def step(self) -> None:
        """Advance one clock cycle (evaluate, then update)."""
        # Step 1: evaluate — settle all combinational logic.
        self._settle()
        # Step 2: update — sequential processes sample settled inputs...
        for process in self._seq:
            process()
        # ...then registered outputs become visible, simultaneously.
        self._commit_pending()
        # New register values must propagate through combinational logic
        # before monitors sample end-of-cycle state.
        self._settle()
        self._cycle += 1
        for hook in self._on_cycle_end:
            hook(self._cycle)

    def run(self, cycles: int) -> int:
        """Advance *cycles* clock cycles; returns the new cycle count."""
        if cycles < 0:
            raise SimulationError(f"cannot run a negative cycle count {cycles}")
        for _ in range(cycles):
            self.step()
        return self._cycle

    def run_until(
        self, predicate: Callable[[], bool], max_cycles: int = 1_000_000
    ) -> int:
        """Step until *predicate()* is true; returns cycles consumed.

        Raises :class:`~repro.errors.SimulationError` if the predicate is
        still false after *max_cycles* steps, so a deadlocked model fails
        loudly instead of spinning forever.
        """
        for elapsed in range(max_cycles):
            if predicate():
                return elapsed
            self.step()
        raise SimulationError(
            f"{self.name}: predicate not satisfied within {max_cycles} cycles"
        )
