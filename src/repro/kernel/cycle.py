"""The 2-step cycle-based simulation engine.

The paper reports using a "2-step cycle-based simulation tool" to speed
up validation of the AHB+ models.  This module implements that engine:
every clock cycle consists of exactly two steps,

1. **Evaluate** — all combinational processes run, repeatedly, until no
   signal changes (a bounded settle loop; exceeding the bound means the
   netlist has a combinational feedback loop and raises
   :class:`~repro.errors.CombinationalLoopError`), then
2. **Update** — all sequential processes observe the settled signal
   values and register their next state via
   :meth:`~repro.kernel.signal.Signal.drive_next`; afterwards every
   registered signal commits, and commits are followed by one more
   settle pass so combinational outputs reflect the new state.

Compared to an event-driven simulator this engine never maintains a
per-signal sensitivity queue — it simply sweeps the whole netlist each
cycle, which is exactly the cost model of commercial cycle-based tools
(fast for dense activity like an RTL bus model, wasteful for sparse
activity, which is why the TLM bypasses it entirely).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import CombinationalLoopError, SimulationError
from repro.kernel.signal import Signal

CombProcess = Callable[[], None]
SeqProcess = Callable[[], None]

#: Safety bound on evaluate-phase iterations per cycle.  Real netlists
#: settle in a handful of passes; hitting the bound means a loop.
MAX_SETTLE_ITERATIONS = 64


class CycleEngine:
    """Two-step (evaluate/update) cycle-based simulator.

    Components register combinational processes, sequential processes
    and the signals they drive.  :meth:`step` advances exactly one clock
    cycle; :meth:`run` advances many.
    """

    def __init__(self, name: str = "cycle-engine") -> None:
        self.name = name
        self._comb: List[CombProcess] = []
        self._seq: List[SeqProcess] = []
        self._signals: List[Signal] = []
        self._cycle = 0
        self._eval_passes = 0
        self._on_cycle_end: List[Callable[[int], None]] = []

    # -- registration ---------------------------------------------------------

    def add_combinational(self, process: CombProcess) -> None:
        """Register a combinational process (runs every evaluate pass)."""
        self._comb.append(process)

    def add_sequential(self, process: SeqProcess) -> None:
        """Register a sequential process (runs once per cycle, at the edge)."""
        self._seq.append(process)

    def add_signal(self, *signals: Signal) -> None:
        """Register signals so their registered drives commit at the edge."""
        self._signals.extend(signals)

    def add_cycle_hook(self, hook: Callable[[int], None]) -> None:
        """Call ``hook(cycle)`` at the end of every cycle (tracing, monitors)."""
        self._on_cycle_end.append(hook)

    # -- state ------------------------------------------------------------------

    @property
    def cycle(self) -> int:
        """Number of completed cycles."""
        return self._cycle

    @property
    def evaluate_passes(self) -> int:
        """Total evaluate-phase passes executed (a cost/diagnostic metric)."""
        return self._eval_passes

    # -- execution ---------------------------------------------------------------

    def _settle(self) -> None:
        """Run combinational processes until no signal changes."""
        for sig in self._signals:
            sig.consume_changed()
        for _iteration in range(MAX_SETTLE_ITERATIONS):
            self._eval_passes += 1
            for process in self._comb:
                process()
            changed = False
            for sig in self._signals:
                if sig.consume_changed():
                    changed = True
            if not changed:
                return
        raise CombinationalLoopError(
            f"{self.name}: combinational logic failed to settle in "
            f"{MAX_SETTLE_ITERATIONS} iterations at cycle {self._cycle}"
        )

    def step(self) -> None:
        """Advance one clock cycle (evaluate, then update)."""
        # Step 1: evaluate — settle all combinational logic.
        self._settle()
        # Step 2: update — sequential processes sample settled inputs...
        for process in self._seq:
            process()
        # ...then registered outputs become visible, simultaneously.
        for sig in self._signals:
            sig.commit()
        # New register values must propagate through combinational logic
        # before monitors sample end-of-cycle state.
        self._settle()
        self._cycle += 1
        for hook in self._on_cycle_end:
            hook(self._cycle)

    def run(self, cycles: int) -> int:
        """Advance *cycles* clock cycles; returns the new cycle count."""
        if cycles < 0:
            raise SimulationError(f"cannot run a negative cycle count {cycles}")
        for _ in range(cycles):
            self.step()
        return self._cycle

    def run_until(
        self, predicate: Callable[[], bool], max_cycles: int = 1_000_000
    ) -> int:
        """Step until *predicate()* is true; returns cycles consumed.

        Raises :class:`~repro.errors.SimulationError` if the predicate is
        still false after *max_cycles* steps, so a deadlocked model fails
        loudly instead of spinning forever.
        """
        for elapsed in range(max_cycles):
            if predicate():
                return elapsed
            self.step()
        raise SimulationError(
            f"{self.name}: predicate not satisfied within {max_cycles} cycles"
        )
