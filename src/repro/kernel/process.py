"""Method-based and thread-based process shells.

Section 4 of the paper notes that the AHB+ TLM uses *method-based*
modeling rather than *thread-based* modeling "to increase simulation
speed".  This module provides both styles over the same
:class:`~repro.kernel.simulator.Simulator` so the claim can be measured:

* :class:`MethodProcess` — a plain callback invoked by the kernel; state
  lives in instance attributes.  No context switching, no suspended
  frame.  This is the style the production TLM bus uses.
* :class:`ThreadProcess` — a Python generator that ``yield``s wait
  requests.  Each resume costs a generator frame switch, mirroring the
  ``sc_thread`` overhead the paper avoided.

Both styles schedule on integer cycle time and may wait on
:class:`~repro.kernel.events.Event` objects.
"""

from __future__ import annotations

from typing import Callable, Generator, Optional, Union

from repro.errors import SimulationError
from repro.kernel.events import Event
from repro.kernel.simulator import Simulator


class WaitCycles:
    """Yielded by a thread process to sleep for a number of cycles."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int) -> None:
        if cycles < 0:
            raise SimulationError(f"cannot wait a negative cycle count {cycles}")
        self.cycles = cycles


class WaitEvent:
    """Yielded by a thread process to block until *event* fires."""

    __slots__ = ("event",)

    def __init__(self, event: Event) -> None:
        self.event = event


WaitRequest = Union[WaitCycles, WaitEvent]
ThreadBody = Generator[WaitRequest, None, None]


class MethodProcess:
    """Callback-style process: the kernel calls :attr:`action` directly.

    The action receives the owning process so it can re-arm itself via
    :meth:`call_after` — the idiom used throughout the TLM bus model.
    """

    def __init__(
        self, sim: Simulator, name: str, action: Callable[["MethodProcess"], None]
    ) -> None:
        self.sim = sim
        self.name = name
        self.action = action
        self.invocations = 0

    def call_now(self) -> None:
        """Invoke the action synchronously."""
        self.invocations += 1
        self.action(self)

    def call_after(self, delay: int) -> None:
        """Schedule the action *delay* cycles in the future."""
        self.sim.schedule_after(delay, self.call_now)

    def sensitize(self, event: Event) -> None:
        """Invoke the action every time *event* fires."""
        event.subscribe(self.call_now)


class ThreadProcess:
    """Generator-style process: ``yield WaitCycles(n)`` / ``WaitEvent(e)``.

    The generator is resumed by the kernel each time its wait completes.
    When the generator returns, :attr:`finished` becomes true.
    """

    def __init__(self, sim: Simulator, name: str, body: ThreadBody) -> None:
        self.sim = sim
        self.name = name
        self._body = body
        self.finished = False
        self.resumes = 0
        self._waiting_event: Optional[Event] = None

    def start(self, delay: int = 0) -> None:
        """Schedule the first resume *delay* cycles from now."""
        self.sim.schedule_after(delay, self._resume)

    def _resume(self) -> None:
        if self.finished:
            return
        self.resumes += 1
        try:
            request = next(self._body)
        except StopIteration:
            self.finished = True
            return
        self._arm(request)

    def _arm(self, request: WaitRequest) -> None:
        if isinstance(request, WaitCycles):
            self.sim.schedule_after(request.cycles, self._resume)
        elif isinstance(request, WaitEvent):
            self._waiting_event = request.event
            request.event.subscribe(self._resume_once)
        else:
            raise SimulationError(
                f"thread {self.name} yielded unsupported request {request!r}"
            )

    def _resume_once(self) -> None:
        event = self._waiting_event
        if event is not None:
            event.unsubscribe(self._resume_once)
            self._waiting_event = None
        self._resume()
