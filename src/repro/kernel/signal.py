"""Two-phase signals for the pin-accurate models.

A :class:`Signal` mimics an ``sc_signal``/Verilog wire-or-reg pair:

* **Combinational drive** (:meth:`drive`) takes effect immediately and
  marks the signal changed, so the cycle engine's evaluate phase can
  iterate until the netlist settles.
* **Registered drive** (:meth:`drive_next`) stores a pending value that
  only becomes visible when :meth:`commit` runs at the clock edge —
  the classic two-phase (evaluate/update) discipline that prevents
  race conditions between flip-flops.

Signals carry integer values only (buses are modelled as integers of the
configured width); ``bool`` is accepted and normalised to ``0``/``1``.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.errors import SimulationError

_UNSET = object()

#: Constructor used for bundle-built signals.  ``repro.lint`` swaps in
#: a read-tracking subclass for the duration of a lint elaboration;
#: normal runs never see anything but :class:`Signal`.  The hook is
#: consulted at *construction time only* — the per-cycle read/write
#: paths are untouched, so lint support costs the hot path nothing.
_signal_class: "Optional[type]" = None


def make_signal(name: str, width: int = 1, reset: int = 0) -> "Signal":
    """Build a signal through the lint-elaboration hook.

    Returns a plain :class:`Signal` unless a lint elaboration is in
    progress (see :mod:`repro.lint.trace`), in which case the traced
    subclass is instantiated instead.
    """
    cls = _signal_class
    if cls is None:
        cls = Signal
    return cls(name, width=width, reset=reset)


class Signal:
    """A named, width-checked wire with two-phase update semantics."""

    __slots__ = (
        "name",
        "width",
        "value",
        "_next",
        "_changed",
        "_watchers",
        "_mask",
        "_commit_hook",
        "_commit_queued",
    )

    def __init__(self, name: str, width: int = 1, reset: int = 0) -> None:
        if width < 1 or width > 128:
            raise SimulationError(f"signal {name}: unsupported width {width}")
        self.name = name
        self.width = width
        self._mask = (1 << width) - 1
        #: The currently visible (committed) value.  A plain attribute,
        #: not a property: per-cycle models read signals millions of
        #: times and the descriptor call was a measurable hot-path cost.
        #: Treat it as read-only — writes go through drive/drive_next.
        self.value = self._coerce(reset)
        self._next: object = _UNSET
        self._changed = False
        self._watchers: List[Callable[["Signal"], None]] = []
        # Set by a cycle engine so it only commits signals that were
        # actually driven this cycle instead of sweeping the netlist.
        self._commit_hook: Optional[Callable[["Signal"], None]] = None
        self._commit_queued = False

    def _coerce(self, value: object) -> int:
        # Exact-type test first: plain ints dominate the hot path.
        if type(value) is int:
            return value & self._mask
        if isinstance(value, int):  # bool, IntEnum, other int subclasses
            return int(value) & self._mask
        raise SimulationError(
            f"signal {self.name}: non-integer value {value!r}"
        )

    # -- read ---------------------------------------------------------------

    def __bool__(self) -> bool:
        return bool(self.value)

    # -- combinational drive -------------------------------------------------

    def drive(self, value: object) -> bool:
        """Immediately set the value (combinational logic).

        Returns ``True`` when the visible value actually changed, which
        the cycle engine uses to decide whether the netlist has settled.
        """
        # Inline the exact-int coercion: this is the hottest write path.
        if type(value) is int:
            coerced = value & self._mask
        else:
            coerced = self._coerce(value)
        if coerced == self.value:
            return False
        self.value = coerced
        self._changed = True
        for watcher in self._watchers:
            watcher(self)
        return True

    # -- registered drive ----------------------------------------------------

    def drive_next(self, value: object) -> None:
        """Schedule *value* to appear at the next :meth:`commit` (clock edge)."""
        if type(value) is int:
            self._next = value & self._mask
        else:
            self._next = self._coerce(value)
        if self._commit_hook is not None and not self._commit_queued:
            self._commit_queued = True
            self._commit_hook(self)

    def drive_next_lazy(self, value: object) -> None:
        """:meth:`drive_next`, eliding the no-op commit.

        When nothing else is pending and the registered value equals the
        visible one, scheduling it would only produce a commit that
        compares equal and returns — so the schedule is skipped.  Any
        pending value falls through to a real registered drive (the
        later registered drive must still win the edge).  Observable
        semantics are exactly :meth:`drive_next`'s; per-cycle FSM
        outputs use this because they re-drive mostly-stable values.
        """
        if type(value) is int:
            coerced = value & self._mask
        else:
            coerced = self._coerce(value)
        if coerced == self.value and self._next is _UNSET:
            return
        self._next = coerced
        if self._commit_hook is not None and not self._commit_queued:
            self._commit_queued = True
            self._commit_hook(self)

    def attach_commit_hook(self, hook: Callable[["Signal"], None]) -> None:
        """Let a cycle engine track which signals need committing.

        A registered drive issued *before* attachment (reset idiom:
        ``sig.drive_next(v)`` in a component constructor, engine
        registration later) is immediately reported through *hook* so it
        still commits at the first edge.
        """
        self._commit_hook = hook
        if self._next is not _UNSET and not self._commit_queued:
            self._commit_queued = True
            hook(self)

    def commit(self) -> bool:
        """Publish the pending registered value, if any.

        Returns ``True`` when the visible value changed.
        """
        pending = self._next
        if pending is _UNSET:
            return False
        self._next = _UNSET
        if pending == self.value:
            return False
        self.value = pending
        self._changed = True
        for watcher in self._watchers:
            watcher(self)
        return True

    # -- change tracking -----------------------------------------------------

    def consume_changed(self) -> bool:
        """Return and clear the changed flag (used by the settle loop)."""
        was = self._changed
        self._changed = False
        return was

    def watch(self, callback: Callable[["Signal"], None]) -> None:
        """Invoke *callback(signal)* whenever the visible value changes."""
        self._watchers.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, width={self.width}, value={self.value:#x})"


class SignalBundle:
    """A named group of signals, handy for ports of RTL components.

    Subclasses (or callers) add :class:`Signal` attributes; the bundle
    provides iteration and bulk reset so platforms can wire and reset
    whole interfaces at once.
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix

    def signals(self) -> Iterable[Signal]:
        """Yield every :class:`Signal` attribute of the bundle."""
        for attr in vars(self).values():
            if isinstance(attr, Signal):
                yield attr

    def make(self, name: str, width: int = 1, reset: int = 0) -> Signal:
        """Create a signal named ``<prefix>.<name>`` and attach it."""
        sig = make_signal(f"{self.prefix}.{name}", width=width, reset=reset)
        setattr(self, name, sig)
        return sig

    def reset_all(self, value: int = 0) -> None:
        """Combinationally drive every signal in the bundle to *value*."""
        for sig in self.signals():
            sig.drive(value)


def settle(signals: Iterable[Signal]) -> bool:
    """Clear the changed flags of *signals*, reporting whether any were set."""
    any_changed = False
    for sig in signals:
        if sig.consume_changed():
            any_changed = True
    return any_changed


def vector_to_bytes(value: int, width_bits: int) -> bytes:
    """Render an integer bus value as little-endian bytes of the bus width."""
    nbytes = (width_bits + 7) // 8
    return value.to_bytes(nbytes, "little")


def bytes_to_vector(data: bytes) -> int:
    """Inverse of :func:`vector_to_bytes`."""
    return int.from_bytes(data, "little")
