"""Clock bookkeeping shared by the TLM and RTL platforms.

The bus clock is the single time base of the whole system.  The TLM
does not toggle a clock signal — it simply advances an integer cycle
counter — but both models report time in the same units so accuracy
comparisons are direct cycle-count comparisons.
"""

from __future__ import annotations

from repro.errors import ConfigError


class Clock:
    """An integer cycle counter with an optional nominal frequency.

    The frequency is only used to convert cycle counts into nominal
    seconds for reports; simulation semantics never depend on it.
    """

    def __init__(self, name: str = "HCLK", frequency_mhz: float = 133.0) -> None:
        if frequency_mhz <= 0:
            raise ConfigError(f"clock {name}: non-positive frequency {frequency_mhz}")
        self.name = name
        self.frequency_mhz = frequency_mhz
        self._cycle = 0

    @property
    def cycle(self) -> int:
        """Cycles elapsed since reset."""
        return self._cycle

    def advance(self, cycles: int = 1) -> int:
        """Move the clock forward by *cycles* (non-negative)."""
        if cycles < 0:
            raise ConfigError(f"clock {self.name}: negative advance {cycles}")
        self._cycle += cycles
        return self._cycle

    def advance_to(self, cycle: int) -> int:
        """Move the clock forward to absolute *cycle* (monotonic)."""
        if cycle < self._cycle:
            raise ConfigError(
                f"clock {self.name}: cannot rewind from {self._cycle} to {cycle}"
            )
        self._cycle = cycle
        return self._cycle

    def reset(self) -> None:
        """Rewind to cycle zero (between independent simulation runs)."""
        self._cycle = 0

    def cycles_to_us(self, cycles: int) -> float:
        """Convert a cycle count to nominal microseconds."""
        return cycles / self.frequency_mhz

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock({self.name!r}, cycle={self._cycle})"
