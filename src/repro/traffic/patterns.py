"""Traffic pattern descriptors.

The paper evaluates the AHB+ TLM by "changing the traffic patterns of
the masters" (§4, Table 1).  The original patterns came from Samsung's
DVD-player platform; this module provides parameterised synthetic
equivalents that exercise the same code paths: burst-length mix,
read/write ratio, spatial locality (row hits vs row conflicts at the
DDRC), think time (bus contention) and real-time periodicity (QoS).

A :class:`TrafficPattern` is pure description — generation happens in
:mod:`repro.traffic.generator` with an explicit seed, so every model
(plain AHB, AHB+ TLM, threaded TLM, RTL) replays the identical stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Optional, Sequence, Tuple

from repro.errors import TrafficError

#: (beats, weight) pairs; weights need not be normalised.
BurstMix = Sequence[Tuple[int, float]]


@dataclass(frozen=True)
class TrafficPattern:
    """Statistical description of one master's access behaviour."""

    name: str
    #: Probability an access is a read (the rest are writes).
    read_fraction: float = 0.7
    #: Burst-length mix as (beats, weight) pairs.
    burst_mix: BurstMix = ((1, 0.25), (4, 0.5), (8, 0.25))
    #: Closed-loop think time between completing one access and issuing
    #: the next, drawn uniformly from this inclusive range.
    think_range: Tuple[int, int] = (0, 8)
    #: Base byte address and span of the master's working window.
    base_addr: int = 0
    addr_span: int = 1 << 20
    #: Probability the next access continues sequentially after the
    #: previous one (spatial locality — drives DDR row hits).
    sequential_fraction: float = 0.5
    #: Sequential advance between accesses; ``None`` = contiguous (the
    #: burst size).  A stride of one DDR row-group makes every access
    #: open a new row in the same bank — the bank-interleaving stressor.
    stride_bytes: Optional[int] = None
    #: Bytes per beat.
    size_bytes: int = 4
    #: Fraction of eligible bursts (4/8/16 beats) issued as WRAPx
    #: (cache-line-fill style) instead of INCRx.
    wrap_fraction: float = 0.0
    #: Real-time streaming: issue period in cycles (``None`` = closed
    #: loop only) and the completion deadline after issue.
    period: Optional[int] = None
    deadline_offset: Optional[int] = None
    #: Bursty (MPEG-like) arrivals: ``(accesses_per_burst, gap_lo,
    #: gap_hi)``.  Every ``accesses_per_burst``-th item (after the
    #: first) draws its think time from the *gap* range instead of
    #: ``think_range``, producing frame-sized request clumps separated
    #: by long idle gaps.  ``None`` keeps the uniform closed-loop model.
    burst_gap: Optional[Tuple[int, int, int]] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.read_fraction <= 1.0:
            raise TrafficError("read_fraction must be within [0, 1]")
        if not self.burst_mix:
            raise TrafficError("burst_mix cannot be empty")
        for beats, weight in self.burst_mix:
            if beats < 1 or beats > 1024:
                raise TrafficError(f"bad burst length {beats}")
            if weight < 0:
                raise TrafficError("burst weights cannot be negative")
        if sum(w for _b, w in self.burst_mix) <= 0:
            raise TrafficError("burst weights sum to zero")
        lo, hi = self.think_range
        if lo < 0 or hi < lo:
            raise TrafficError(f"bad think range {self.think_range}")
        if not 0.0 <= self.sequential_fraction <= 1.0:
            raise TrafficError("sequential_fraction must be within [0, 1]")
        if self.stride_bytes is not None and self.stride_bytes < self.size_bytes:
            raise TrafficError("stride must be at least one beat")
        if not 0.0 <= self.wrap_fraction <= 1.0:
            raise TrafficError("wrap_fraction must be within [0, 1]")
        if self.size_bytes not in (1, 2, 4, 8, 16):
            raise TrafficError(f"bad beat size {self.size_bytes}")
        if self.addr_span < self.size_bytes * 32:
            raise TrafficError("address span too small for burst traffic")
        if self.period is not None and self.period < 1:
            raise TrafficError("period must be positive")
        if self.deadline_offset is not None and self.deadline_offset < 1:
            raise TrafficError("deadline offset must be positive")
        if self.burst_gap is not None:
            per_burst, gap_lo, gap_hi = self.burst_gap
            if per_burst < 1:
                raise TrafficError("burst_gap needs at least one access per burst")
            if gap_lo < 0 or gap_hi < gap_lo:
                raise TrafficError(f"bad burst gap range ({gap_lo}, {gap_hi})")

    @property
    def is_real_time(self) -> bool:
        """Patterns with a deadline are real-time streams."""
        return self.deadline_offset is not None

    def to_dict(self) -> dict:
        """JSON-ready mapping of the pattern's knobs."""
        return {
            "name": self.name,
            "read_fraction": self.read_fraction,
            "burst_mix": [list(pair) for pair in self.burst_mix],
            "think_range": list(self.think_range),
            "base_addr": self.base_addr,
            "addr_span": self.addr_span,
            "sequential_fraction": self.sequential_fraction,
            "stride_bytes": self.stride_bytes,
            "size_bytes": self.size_bytes,
            "wrap_fraction": self.wrap_fraction,
            "period": self.period,
            "deadline_offset": self.deadline_offset,
            "burst_gap": (
                None if self.burst_gap is None else list(self.burst_gap)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TrafficPattern":
        """Rebuild a pattern; the constructor re-validates every knob."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TrafficError(
                f"unknown TrafficPattern fields {sorted(unknown)}"
            )
        kwargs = dict(data)
        if "burst_mix" in kwargs:
            kwargs["burst_mix"] = tuple(
                (int(beats), float(weight)) for beats, weight in kwargs["burst_mix"]
            )
        if "think_range" in kwargs:
            lo, hi = kwargs["think_range"]
            kwargs["think_range"] = (int(lo), int(hi))
        if kwargs.get("burst_gap") is not None:
            per_burst, gap_lo, gap_hi = kwargs["burst_gap"]
            kwargs["burst_gap"] = (int(per_burst), int(gap_lo), int(gap_hi))
        return cls(**kwargs)


# -- canonical patterns (the knobs behind Table 1's traffic variations) -----

#: Processor-like: moderate locality, mixed bursts, read-dominated.
CPU = TrafficPattern(
    name="cpu",
    read_fraction=0.75,
    burst_mix=((1, 0.3), (4, 0.5), (8, 0.2)),
    think_range=(2, 20),
    sequential_fraction=0.45,
)

#: DMA engine: long incrementing bursts, minimal think time.
DMA = TrafficPattern(
    name="dma",
    read_fraction=0.5,
    burst_mix=((8, 0.4), (16, 0.6)),
    think_range=(0, 4),
    sequential_fraction=0.9,
)

#: Video stream: periodic real-time burst reads with deadlines.
VIDEO = TrafficPattern(
    name="video",
    read_fraction=1.0,
    burst_mix=((16, 1.0),),
    think_range=(0, 0),
    sequential_fraction=0.95,
    period=200,
    deadline_offset=180,
)

#: Audio stream: low-rate periodic real-time accesses.
AUDIO = TrafficPattern(
    name="audio",
    read_fraction=0.9,
    burst_mix=((4, 1.0),),
    think_range=(0, 0),
    sequential_fraction=0.9,
    period=400,
    deadline_offset=160,
)

#: Write-dominated producer (exercises the write buffer).
WRITER = TrafficPattern(
    name="writer",
    read_fraction=0.1,
    burst_mix=((1, 0.4), (4, 0.6)),
    think_range=(1, 10),
    sequential_fraction=0.4,
)

#: MPEG-like decoder: frame-sized clumps of long sequential bursts
#: separated by inter-frame idle gaps (the bursty arrival process the
#: scenario backlog asks for; generate with ``mode="stream"`` so the
#: gap draws batch).
MPEG = TrafficPattern(
    name="mpeg",
    read_fraction=0.85,
    burst_mix=((8, 0.5), (16, 0.5)),
    think_range=(0, 2),
    sequential_fraction=0.9,
    burst_gap=(12, 150, 400),
    deadline_offset=220,
)

#: Fully random single transfers — the worst case for row locality.
RANDOM = TrafficPattern(
    name="random",
    read_fraction=0.6,
    burst_mix=((1, 0.7), (4, 0.3)),
    think_range=(0, 12),
    sequential_fraction=0.05,
)

#: Placeholder carried by trace-backed workload master specs.  A
#: trace replay never draws from its pattern — the items come verbatim
#: from the archived records — but :class:`~repro.traffic.workloads.
#: MasterSpec` wants one for serialisation symmetry, so this inert
#: descriptor marks the slot.  Deliberately absent from
#: ``NAMED_PATTERNS``: it would generate degenerate synthetic traffic.
REPLAY = TrafficPattern(
    name="trace-replay",
    burst_mix=((1, 1.0),),
    think_range=(0, 0),
)

NAMED_PATTERNS = {
    pattern.name: pattern
    for pattern in (CPU, DMA, VIDEO, AUDIO, WRITER, MPEG, RANDOM)
}


def named_pattern(name: str) -> TrafficPattern:
    """Look up one of the canonical patterns by name."""
    try:
        return NAMED_PATTERNS[name]
    except KeyError:
        raise TrafficError(
            f"unknown pattern {name!r}; choose from {sorted(NAMED_PATTERNS)}"
        ) from None
