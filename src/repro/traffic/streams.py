"""Batched traffic streams: bulk RNG draws, lazy materialisation.

The legacy generator produced one :class:`TrafficItem` at a time, paying
a handful of scalar ``random.Random`` calls per item.  This module keeps
that algorithm — verbatim — as the **compat** mode (the stream is a pure
function of ``(pattern, master_index, count, seed)`` and golden traces
pin it bit-for-bit), and adds a **stream** mode that draws the
address / burst / think-time / data fields as *arrays*, one bulk draw
per field per chunk, then assembles the items in a cheap scalar pass.

Both modes are deterministic per seed and produce protocol-legal traffic
(1 KB-boundary clamp, window containment, aligned wrap blocks); they are
*different* deterministic streams — stream mode uses a bulk RNG, so its
sequence intentionally does not match compat mode.

A :class:`TrafficStream` is lazily iterable: items materialise chunk by
chunk as a bus master consumes them, so building a platform no longer
generates the whole workload up front.  The bulk draws use NumPy when
available and fall back to batched ``random.Random`` list draws
otherwise — same stream *semantics*, no hard dependency.  One honest
caveat follows: the two backends draw different value sequences from
the same field seeds (PCG64 vs Mersenne Twister), so stream mode is
reproducible per seed *on a given RNG backend*, not across
environments that disagree about NumPy.  Artifacts that must be
portable bit-for-bit (golden traces, committed BENCH cycle counts)
therefore pin **compat** mode, which depends on nothing but the
standard library.  Within one environment every engine level sees the
identical stream either way — the accuracy comparison stays sound.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterator, List, Optional, Sequence, Tuple

# NumPy is optional (the fallback batches draws with random.Random) and
# deliberately *lazy*: importing it costs tens of milliseconds, which
# every `import repro.traffic` — including each sweep pool worker — used
# to pay even when no stream-mode generation ever ran.
_np = None
_np_checked = False


def _numpy():
    """Import numpy on first stream-mode use; None when unavailable."""
    global _np, _np_checked
    if not _np_checked:
        _np_checked = True
        try:
            import numpy
        except ImportError:  # pragma: no cover - only without numpy
            numpy = None
        _np = numpy
    return _np

from repro.ahb.burst import KB_BOUNDARY
from repro.ahb.master import TrafficItem
from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.errors import TrafficError
from repro.traffic.patterns import TrafficPattern

#: Generation modes: ``compat`` replays the legacy per-item draw
#: sequence bit-for-bit; ``stream`` batches the draws per chunk.
GENERATION_MODES = ("compat", "stream")

#: Items materialised per bulk draw in stream mode.
STREAM_CHUNK = 2048

_WRAP_BEATS = (4, 8, 16)


def _legal_beats(addr: int, beats: int, size_bytes: int, span_end: int) -> int:
    """Clamp *beats* to the 1 KB rule and the address window."""
    room_kb = (KB_BOUNDARY - addr % KB_BOUNDARY) // size_bytes
    room_span = (span_end - addr) // size_bytes
    return max(1, min(beats, room_kb, room_span))


def _check_mode(mode: str) -> None:
    if mode not in GENERATION_MODES:
        raise TrafficError(
            f"unknown generation mode {mode!r}; choose from {GENERATION_MODES}"
        )


def _think_range_for(pattern: TrafficPattern, index: int) -> Tuple[int, int]:
    """The think-time range item *index* draws from (burst-gap aware)."""
    if (
        pattern.burst_gap is not None
        and index > 0
        and index % pattern.burst_gap[0] == 0
    ):
        return pattern.burst_gap[1], pattern.burst_gap[2]
    return pattern.think_range


# -- compat mode: the legacy per-item draw sequence, verbatim -------------------


def _compat_items(
    pattern: TrafficPattern, master_index: int, count: int, seed: int
) -> Iterator[TrafficItem]:
    """Yield the legacy generator's exact item stream, lazily."""
    rng = random.Random(f"{seed}/{pattern.name}/{master_index}")
    burst_choices = [beats for beats, _w in pattern.burst_mix]
    burst_weights = [weight for _b, weight in pattern.burst_mix]
    span_end = pattern.base_addr + pattern.addr_span
    next_sequential = pattern.base_addr
    data_mask = (1 << (8 * pattern.size_bytes)) - 1
    for index in range(count):
        beats = rng.choices(burst_choices, weights=burst_weights)[0]
        if rng.random() < pattern.sequential_fraction:
            addr = next_sequential
            if addr + beats * pattern.size_bytes > span_end:
                addr = pattern.base_addr
        else:
            span_words = pattern.addr_span // pattern.size_bytes
            addr = (
                pattern.base_addr
                + rng.randrange(span_words) * pattern.size_bytes
            )
        # Wrapping (cache-line-fill) bursts: the aligned wrap block must
        # lie entirely inside the pattern's window.
        wrapping = False
        if beats in _WRAP_BEATS and pattern.wrap_fraction > 0:
            block = beats * pattern.size_bytes
            block_base = (addr // block) * block
            if (
                block_base >= pattern.base_addr
                and block_base + block <= span_end
                and rng.random() < pattern.wrap_fraction
            ):
                wrapping = True
        if not wrapping:
            beats = _legal_beats(addr, beats, pattern.size_bytes, span_end)
        advance = (
            pattern.stride_bytes
            if pattern.stride_bytes is not None
            else beats * pattern.size_bytes
        )
        next_sequential = addr + advance
        if next_sequential >= span_end:
            next_sequential = pattern.base_addr
        is_read = rng.random() < pattern.read_fraction
        txn = Transaction(
            master=master_index,
            kind=AccessKind.READ if is_read else AccessKind.WRITE,
            addr=addr,
            beats=beats,
            size_bytes=pattern.size_bytes,
            wrapping=wrapping,
            data=(
                []
                if is_read
                else [rng.getrandbits(32) & data_mask for _ in range(beats)]
            ),
        )
        think = rng.randint(*_think_range_for(pattern, index))
        not_before = None
        absolute_deadline = None
        if pattern.period is not None:
            not_before = index * pattern.period
            if pattern.deadline_offset is not None:
                # Streaming deadlines follow the frame schedule, not the
                # (possibly starved) issue instant.
                absolute_deadline = not_before + pattern.deadline_offset
        yield TrafficItem(
            txn=txn,
            think_cycles=think,
            not_before=not_before,
            deadline_offset=(
                None if absolute_deadline is not None else pattern.deadline_offset
            ),
            absolute_deadline=absolute_deadline,
        )


# -- stream mode: one bulk draw per field per chunk -----------------------------


def _field_seed(
    pattern: TrafficPattern, master_index: int, seed: int, fld: str
) -> int:
    """A stable 64-bit seed for one field's sub-stream.

    Each drawn field (burst lengths, locality flags, think times, data
    words, ...) owns an independent deterministic RNG stream, which is
    what makes the generated sequence invariant under the chunk size:
    a chunk boundary only decides *how many* values a field's stream
    yields per bulk draw, never *which* values.
    """
    key = f"{seed}/{pattern.name}/{master_index}/{fld}".encode()
    return int.from_bytes(hashlib.sha256(key).digest()[:8], "little")


class _NumpyDraws:
    """Bulk field draws, one ``numpy.random.Generator`` per field."""

    def __init__(self, pattern: TrafficPattern, master_index: int, seed: int) -> None:
        np = _numpy()
        assert np is not None  # caller checked _numpy() already
        self._np = np

        def rng(fld: str):
            return np.random.Generator(
                np.random.PCG64(_field_seed(pattern, master_index, seed, fld))
            )

        self._rng = rng
        self._streams: dict = {}
        weights = np.asarray(
            [w for _b, w in pattern.burst_mix], dtype=np.float64
        )
        self._burst_p = weights / weights.sum()
        self._burst_choices = np.asarray(
            [b for b, _w in pattern.burst_mix], dtype=np.int64
        )

    def _stream(self, fld: str):
        stream = self._streams.get(fld)
        if stream is None:
            stream = self._streams[fld] = self._rng(fld)
        return stream

    def bursts(self, n: int) -> List[int]:
        return self._stream("burst").choice(
            self._burst_choices, size=n, p=self._burst_p
        ).tolist()

    def fractions(self, fld: str, n: int) -> List[float]:
        return self._stream(fld).random(n).tolist()

    def integers(self, fld: str, n: int, lo: int, hi: int) -> List[int]:
        """*n* integers uniform in the inclusive range [lo, hi]."""
        if hi <= lo:
            return [lo] * n
        return self._stream(fld).integers(
            lo, hi + 1, size=n, dtype=self._np.int64
        ).tolist()

    def words(self, n: int) -> List[int]:
        """*n* raw 32-bit data words."""
        return self._stream("data").integers(
            0, 1 << 32, size=n, dtype=self._np.int64
        ).tolist()


class _PurePythonDraws:
    """Bulk field draws batched over per-field ``random.Random`` streams."""

    def __init__(self, pattern: TrafficPattern, master_index: int, seed: int) -> None:
        def rng(fld: str) -> random.Random:
            return random.Random(_field_seed(pattern, master_index, seed, fld))

        self._rng = rng
        self._streams: dict = {}
        self._burst_choices = [b for b, _w in pattern.burst_mix]
        self._burst_weights = [w for _b, w in pattern.burst_mix]

    def _stream(self, fld: str) -> random.Random:
        stream = self._streams.get(fld)
        if stream is None:
            stream = self._streams[fld] = self._rng(fld)
        return stream

    def bursts(self, n: int) -> List[int]:
        return self._stream("burst").choices(
            self._burst_choices, weights=self._burst_weights, k=n
        )

    def fractions(self, fld: str, n: int) -> List[float]:
        rand = self._stream(fld).random
        return [rand() for _ in range(n)]

    def integers(self, fld: str, n: int, lo: int, hi: int) -> List[int]:
        if hi <= lo:
            return [lo] * n
        randint = self._stream(fld).randint
        return [randint(lo, hi) for _ in range(n)]

    def words(self, n: int) -> List[int]:
        bits = self._stream("data").getrandbits
        return [bits(32) for _ in range(n)]


def _stream_items(
    pattern: TrafficPattern,
    master_index: int,
    count: int,
    seed: int,
    chunk: int = STREAM_CHUNK,
) -> Iterator[TrafficItem]:
    """Yield items chunk by chunk, one bulk draw per field per chunk."""
    draws = (
        _NumpyDraws(pattern, master_index, seed)
        if _numpy() is not None
        else _PurePythonDraws(pattern, master_index, seed)
    )
    span_end = pattern.base_addr + pattern.addr_span
    span_words = pattern.addr_span // pattern.size_bytes
    size_bytes = pattern.size_bytes
    data_mask = (1 << (8 * size_bytes)) - 1
    mask32 = data_mask & 0xFFFF_FFFF
    next_sequential = pattern.base_addr
    can_wrap = pattern.wrap_fraction > 0 and any(
        b in _WRAP_BEATS for b, _w in pattern.burst_mix
    )
    produced = 0
    while produced < count:
        n = min(chunk, count - produced)
        beats_arr = draws.bursts(n)
        seq_arr = draws.fractions("seq", n)
        rand_words = draws.integers("addr", n, 0, span_words - 1)
        wrap_arr = draws.fractions("wrap", n) if can_wrap else None
        read_arr = draws.fractions("read", n)
        # Think times batch per range: the common range in one draw and,
        # for bursty patterns, the inter-burst gaps in a second draw.
        think_arr = draws.integers("think", n, *pattern.think_range)
        if pattern.burst_gap is not None:
            per_burst, gap_lo, gap_hi = pattern.burst_gap
            gap_indices = [
                i
                for i in range(n)
                if (produced + i) > 0 and (produced + i) % per_burst == 0
            ]
            gaps = draws.integers("gap", len(gap_indices), gap_lo, gap_hi)
            for i, gap in zip(gap_indices, gaps):
                think_arr[i] = gap
        # Write data: one flat draw sized by the chunk's write beats.
        write_beats = sum(
            b for b, r in zip(beats_arr, read_arr)
            if r >= pattern.read_fraction
        )
        data_words = draws.words(write_beats)
        data_pos = 0

        for i in range(n):
            index = produced + i
            beats = beats_arr[i]
            if seq_arr[i] < pattern.sequential_fraction:
                addr = next_sequential
                if addr + beats * size_bytes > span_end:
                    addr = pattern.base_addr
            else:
                addr = pattern.base_addr + rand_words[i] * size_bytes
            wrapping = False
            if wrap_arr is not None and beats in _WRAP_BEATS:
                block = beats * size_bytes
                block_base = (addr // block) * block
                if (
                    block_base >= pattern.base_addr
                    and block_base + block <= span_end
                    and wrap_arr[i] < pattern.wrap_fraction
                ):
                    wrapping = True
            if not wrapping:
                beats = _legal_beats(addr, beats, size_bytes, span_end)
            advance = (
                pattern.stride_bytes
                if pattern.stride_bytes is not None
                else beats * size_bytes
            )
            next_sequential = addr + advance
            if next_sequential >= span_end:
                next_sequential = pattern.base_addr
            is_read = read_arr[i] < pattern.read_fraction
            if is_read:
                data: List[int] = []
            else:
                # The flat buffer is consumed at the *drawn* burst length
                # so the word sequence is independent of clamping.
                data = [
                    word & mask32
                    for word in data_words[data_pos : data_pos + beats]
                ]
                data_pos += beats_arr[i]
            not_before = None
            absolute_deadline = None
            if pattern.period is not None:
                not_before = index * pattern.period
                if pattern.deadline_offset is not None:
                    absolute_deadline = not_before + pattern.deadline_offset
            yield TrafficItem(
                txn=Transaction(
                    master=master_index,
                    kind=AccessKind.READ if is_read else AccessKind.WRITE,
                    addr=addr,
                    beats=beats,
                    size_bytes=size_bytes,
                    wrapping=wrapping,
                    data=data,
                ),
                think_cycles=think_arr[i],
                not_before=not_before,
                deadline_offset=(
                    None
                    if absolute_deadline is not None
                    else pattern.deadline_offset
                ),
                absolute_deadline=absolute_deadline,
            )
        produced += n


# -- the stream object ----------------------------------------------------------


class TrafficStream:
    """A lazy, re-iterable traffic source for one master.

    Each ``iter()`` restarts the deterministic stream from the seed, so
    the same :class:`TrafficStream` can feed several platform builds
    (every engine replays the identical sequence).  ``len()`` is the
    item count without materialising anything.
    """

    def __init__(
        self,
        pattern: TrafficPattern,
        master_index: int,
        count: int,
        seed: int,
        mode: str = "compat",
        chunk: int = STREAM_CHUNK,
    ) -> None:
        if count < 0:
            raise TrafficError(f"negative transaction count {count}")
        _check_mode(mode)
        if chunk < 1:
            raise TrafficError(f"chunk size must be positive, got {chunk}")
        self.pattern = pattern
        self.master_index = master_index
        self.count = count
        self.seed = seed
        self.mode = mode
        self.chunk = chunk

    def __len__(self) -> int:
        return self.count

    def __iter__(self) -> Iterator[TrafficItem]:
        if self.mode == "compat":
            return _compat_items(
                self.pattern, self.master_index, self.count, self.seed
            )
        return _stream_items(
            self.pattern, self.master_index, self.count, self.seed, self.chunk
        )

    def materialise(self) -> List[TrafficItem]:
        """The full item list (eager callers / tests)."""
        return list(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TrafficStream({self.pattern.name!r}, master={self.master_index}, "
            f"count={self.count}, seed={self.seed}, mode={self.mode!r})"
        )
