"""Named workload suites, including the Table 1 reproduction set.

A :class:`Workload` binds traffic patterns, per-master transaction
counts and QoS settings into a reproducible multi-master scenario.  The
three Table 1 suites vary the master mix the way the paper varied its
traffic patterns:

* ``pattern_a`` — burst-heavy (DMA-dominated, high locality),
* ``pattern_b`` — random-heavy (poor locality, many row conflicts),
* ``pattern_c`` — mixed RT/NRT (streaming masters with deadlines under
  CPU + writer interference).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ahb.master import TlmMaster
from repro.canonical import register_content_schema
from repro.ahb.transaction import WRITE_BUFFER_MASTER
from repro.core.qos import QosSetting
from repro.errors import TrafficError
from repro.traffic.faults import FaultInjector, FaultSpec
from repro.traffic.generator import generate_items, stream_items
from repro.traffic.streams import GENERATION_MODES
from repro.traffic.patterns import (
    AUDIO,
    CPU,
    DMA,
    RANDOM,
    REPLAY,
    VIDEO,
    WRITER,
    TrafficPattern,
)
from repro.traffic.trace import (
    TraceRecord,
    TraceSource,
    group_by_master,
    replay_items,
    trace_masters,
)

#: Where a workload's items come from: drawn from seeded patterns, or
#: replayed verbatim from an archived trace.
WORKLOAD_SOURCES = ("synthetic", "trace")


@dataclass(frozen=True)
class MasterSpec:
    """One master's role inside a workload."""

    name: str
    pattern: TrafficPattern
    transactions: int
    qos: QosSetting = field(default_factory=QosSetting)

    def to_dict(self) -> dict:
        """JSON-ready mapping (patterns/QoS nest their own dicts)."""
        return {
            "name": self.name,
            "pattern": self.pattern.to_dict(),
            "transactions": self.transactions,
            "qos": self.qos.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MasterSpec":
        missing = {"name", "pattern", "transactions"} - set(data)
        if missing:
            raise TrafficError(f"MasterSpec needs fields {sorted(missing)}")
        return cls(
            name=data["name"],
            pattern=TrafficPattern.from_dict(data["pattern"]),
            transactions=int(data["transactions"]),
            qos=QosSetting.from_dict(data.get("qos", {})),
        )


#: Schema tag of :meth:`Workload.content_key` payloads; bump on
#: incompatible ``to_dict`` change to invalidate every cached key.
WORKLOAD_KEY_SCHEMA = register_content_schema(
    "ahbplus-workload-v1", "repro.traffic.workloads.Workload"
)


@dataclass(frozen=True)
class Workload:
    """A complete, seeded multi-master scenario.

    ``gen_mode`` selects the traffic generator: ``"compat"`` (default)
    materialises the legacy bit-exact stream eagerly at build time;
    ``"stream"`` feeds masters a lazy batched
    :class:`~repro.traffic.streams.TrafficStream`.
    """

    name: str
    masters: Tuple[MasterSpec, ...]
    seed: int = 1
    gen_mode: str = "compat"
    #: ``"synthetic"`` draws from the master specs' patterns;
    #: ``"trace"`` replays the bound :class:`TraceSource` verbatim
    #: (build via :meth:`from_trace`).
    source: str = "synthetic"
    trace: Optional[TraceSource] = None
    #: Workload-wide fault model (seeded ERROR/RETRY injection on every
    #: slave); slave-scoped models ride on ``SlaveSpec.fault`` instead.
    fault: Optional[FaultSpec] = None

    def __post_init__(self) -> None:
        if not self.masters:
            raise TrafficError("workload needs at least one master")
        if self.gen_mode not in GENERATION_MODES:
            raise TrafficError(
                f"unknown gen_mode {self.gen_mode!r}; "
                f"choose from {GENERATION_MODES}"
            )
        if self.source not in WORKLOAD_SOURCES:
            raise TrafficError(
                f"unknown workload source {self.source!r}; "
                f"choose from {WORKLOAD_SOURCES}"
            )
        if (self.source == "trace") != (self.trace is not None):
            raise TrafficError(
                "trace workloads need trace=; synthetic ones must not "
                "carry a trace source"
            )

    @property
    def num_masters(self) -> int:
        return len(self.masters)

    @property
    def total_transactions(self) -> int:
        return sum(spec.transactions for spec in self.masters)

    def qos_map(self) -> Dict[int, QosSetting]:
        """Master-index → QoS setting map for the platform config."""
        return {
            index: spec.qos
            for index, spec in enumerate(self.masters)
            if spec.qos.real_time
        }

    def build_masters(
        self, extra_faults: Sequence[FaultSpec] = ()
    ) -> List[TlmMaster]:
        """Instantiate fresh traffic agents (one run's worth).

        Compat mode materialises items eagerly (bit-exact legacy
        behaviour: generation cost stays in the untimed build phase);
        stream mode hands each master a lazy batched stream.  Trace
        workloads replay the archived records instead — every engine
        level gets the identical per-master item sequence, issue-order
        sorted, with the original issue cycles as ``not_before``
        constraints when the source preserves them.

        ``extra_faults`` carries slave-scoped fault models the platform
        builder collected from the system spec; together with the
        workload's own :attr:`fault` they are stamped onto the items at
        build time — identically at every engine level, which is what
        keeps injected ERROR/RETRY sequences cross-engine deterministic.
        Transactions replayed from a trace keep any restored plan
        (restored plans win over fresh stamping).
        """
        specs: Tuple[FaultSpec, ...] = tuple(
            s
            for s in (self.fault, *extra_faults)
            if s is not None and s.active
        )

        def wrap(items, index: int):
            if not specs:
                return items
            return FaultInjector(items, index, specs)

        if self.source == "trace":
            assert self.trace is not None  # __post_init__ invariant
            grouped = group_by_master(self.trace.resolve())
            uncovered = sorted(
                index
                for index in grouped
                if index != WRITE_BUFFER_MASTER and index >= len(self.masters)
            )
            if uncovered:
                raise TrafficError(
                    f"workload {self.name!r} has {len(self.masters)} "
                    f"masters but its trace names masters {uncovered}; "
                    f"their streams would be dropped"
                )
            return [
                TlmMaster(
                    index,
                    spec.name,
                    wrap(
                        replay_items(
                            grouped.get(index, ()),
                            index,
                            preserve_issue_times=self.trace.preserve_issue_times,
                        ),
                        index,
                    ),
                )
                for index, spec in enumerate(self.masters)
            ]
        agents: List[TlmMaster] = []
        for index, spec in enumerate(self.masters):
            if self.gen_mode == "compat":
                items = generate_items(
                    spec.pattern, index, spec.transactions, self.seed
                )
            else:
                items = stream_items(
                    spec.pattern,
                    index,
                    spec.transactions,
                    self.seed,
                    mode=self.gen_mode,
                )
            agents.append(TlmMaster(index, spec.name, wrap(items, index)))
        return agents

    def scaled(self, factor: float) -> "Workload":
        """Same mix with transaction counts scaled by *factor*."""
        if self.source == "trace":
            raise TrafficError(
                "a trace-backed workload replays a fixed record set and "
                "cannot be scaled; transform the trace instead"
            )
        masters = tuple(
            replace(spec, transactions=max(1, int(spec.transactions * factor)))
            for spec in self.masters
        )
        return replace(self, masters=masters)

    def with_seed(self, seed: int) -> "Workload":
        """Same mix under a different seed."""
        return replace(self, seed=seed)

    def content_key(self) -> str:
        """Canonical content address of this scenario description.

        Stable across dict ordering, JSON round-trips and processes
        (sorted-key canonical JSON, not ``hash()``); two workloads with
        equal descriptions — including the seed — share a key.  The
        serving layer folds this into its simulation-request keys via
        :func:`repro.exec.records.point_key`.
        """
        from repro.canonical import stable_hash

        return stable_hash(self.to_dict(), WORKLOAD_KEY_SCHEMA)

    def to_dict(self) -> dict:
        """JSON-ready mapping of the full scenario description."""
        payload = {
            "name": self.name,
            "seed": self.seed,
            "gen_mode": self.gen_mode,
            "source": self.source,
            "masters": [spec.to_dict() for spec in self.masters],
        }
        if self.trace is not None:
            payload["trace"] = self.trace.to_dict()
        if self.fault is not None:
            payload["fault"] = self.fault.to_dict()
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "Workload":
        """Rebuild a workload; constructors re-validate all the way down."""
        missing = {"name", "masters"} - set(data)
        if missing:
            raise TrafficError(f"Workload needs fields {sorted(missing)}")
        raw_trace = data.get("trace")
        raw_fault = data.get("fault")
        return cls(
            name=data["name"],
            masters=tuple(
                MasterSpec.from_dict(spec) for spec in data["masters"]
            ),
            seed=int(data.get("seed", 1)),
            gen_mode=str(data.get("gen_mode", "compat")),
            source=str(data.get("source", "synthetic")),
            trace=(
                None if raw_trace is None else TraceSource.from_dict(raw_trace)
            ),
            fault=(
                None if raw_fault is None else FaultSpec.from_dict(raw_fault)
            ),
        )

    # -- trace binding ----------------------------------------------------------

    @classmethod
    def from_trace(
        cls,
        source: "TraceSource | str | Sequence[TraceRecord]",
        name: str = "trace_replay",
        qos: Optional[Dict[int, QosSetting]] = None,
        num_masters: Optional[int] = None,
        preserve_issue_times: Optional[bool] = None,
        master_names: Optional[Sequence[str]] = None,
    ) -> "Workload":
        """Bind an archived trace as a first-class workload.

        *source* is a :class:`~repro.traffic.trace.TraceSource`, a path
        to a JSON-lines trace file (kept path-picklable: sweep workers
        re-read it), or an in-memory record sequence (shipped inline).
        One :class:`MasterSpec` is synthesized per master index up to
        the trace's highest real master (records of the write buffer's
        pseudo-master are ignored — they are bus bookkeeping, not
        offered traffic), carrying the inert ``REPLAY`` pattern and the
        per-master record count; *qos* re-attaches QoS settings the
        trace itself does not archive.  *preserve_issue_times* defaults
        to the source's own setting (``True`` for paths/records) and
        overrides it when given explicitly — including on a prepared
        :class:`TraceSource`.
        """
        if isinstance(source, TraceSource):
            trace = source
            if preserve_issue_times is not None:
                trace = replace(
                    trace, preserve_issue_times=preserve_issue_times
                )
        else:
            anchored = (
                True if preserve_issue_times is None else preserve_issue_times
            )
            if isinstance(source, (str, os.PathLike)):
                trace = TraceSource(
                    path=os.fspath(source), preserve_issue_times=anchored
                )
            else:
                trace = TraceSource(
                    records=tuple(source), preserve_issue_times=anchored
                )
        records = trace.resolve()
        indices = trace_masters(records)
        if not indices:
            raise TrafficError(f"trace for workload {name!r} has no records")
        count = max(indices) + 1
        if num_masters is not None:
            if num_masters < count:
                raise TrafficError(
                    f"trace names master {max(indices)} but num_masters is "
                    f"{num_masters}"
                )
            count = num_masters
        if master_names is not None and len(master_names) != count:
            raise TrafficError(
                f"need {count} master names, got {len(master_names)}"
            )
        per_master: Dict[int, int] = {index: 0 for index in range(count)}
        for record in records:
            if record.master in per_master:
                per_master[record.master] += 1
        qos = qos or {}
        stray = sorted(index for index in qos if not 0 <= index < count)
        if stray:
            raise TrafficError(
                f"qos names masters {stray} outside the trace's "
                f"0..{count - 1} range"
            )
        specs = tuple(
            MasterSpec(
                name=(
                    master_names[index]
                    if master_names is not None
                    else f"m{index}"
                ),
                pattern=REPLAY,
                transactions=per_master[index],
                qos=qos.get(index, QosSetting()),
            )
            for index in range(count)
        )
        return cls(name=name, masters=specs, source="trace", trace=trace)


def _window(pattern: TrafficPattern, index: int, window: int = 1 << 20) -> TrafficPattern:
    """Give each master a disjoint address window.

    Disjoint windows keep the final memory image order-independent, so
    functional equivalence between abstraction levels is a strict check
    even when arbitration orders differ slightly.
    """
    return replace(pattern, base_addr=index * window, addr_span=window)


def table1_pattern_a(transactions: int = 250, seed: int = 11) -> Workload:
    """Burst-heavy suite: three DMA-style movers and one CPU."""
    specs = (
        MasterSpec("cpu0", _window(CPU, 0), transactions),
        MasterSpec("dma0", _window(DMA, 1), transactions),
        MasterSpec("dma1", _window(DMA, 2), transactions),
        MasterSpec("dma2", _window(DMA, 3), transactions),
    )
    return Workload("pattern_a", specs, seed)


def table1_pattern_b(transactions: int = 250, seed: int = 22) -> Workload:
    """Random-heavy suite: poor locality, short transfers."""
    specs = (
        MasterSpec("rand0", _window(RANDOM, 0), transactions),
        MasterSpec("rand1", _window(RANDOM, 1), transactions),
        MasterSpec("cpu0", _window(CPU, 2), transactions),
        MasterSpec("writer0", _window(WRITER, 3), transactions),
    )
    return Workload("pattern_b", specs, seed)


def table1_pattern_c(transactions: int = 250, seed: int = 33) -> Workload:
    """Mixed RT/NRT suite: streaming masters with QoS under interference."""
    specs = (
        MasterSpec(
            "video0",
            _window(VIDEO, 0),
            transactions,
            QosSetting(real_time=True, objective_cycles=180),
        ),
        MasterSpec(
            "audio0",
            _window(AUDIO, 1),
            transactions,
            QosSetting(real_time=True, objective_cycles=160),
        ),
        MasterSpec("cpu0", _window(CPU, 2), transactions),
        MasterSpec("writer0", _window(WRITER, 3), transactions),
    )
    return Workload("pattern_c", specs, seed)


def table1_workloads(transactions: int = 250) -> List[Workload]:
    """The three suites whose rows regenerate Table 1."""
    return [
        table1_pattern_a(transactions),
        table1_pattern_b(transactions),
        table1_pattern_c(transactions),
    ]


def single_master_workload(
    transactions: int = 500, seed: int = 7, pattern: Optional[TrafficPattern] = None
) -> Workload:
    """One CPU master — the paper's 'pure bus performance' speed case."""
    chosen = pattern if pattern is not None else CPU
    return Workload(
        "single_master",
        (MasterSpec("solo", _window(chosen, 0), transactions),),
        seed,
    )


def saturating_workload(
    transactions: int = 300, seed: int = 5, rt_objective: int = 90
) -> Workload:
    """An RT stream fighting three greedy NRT masters (QoS experiment).

    The video master sits at the *highest* master index, i.e. the lowest
    fixed priority: the plain AHB arbiter starves it behind the DMA
    engines, while the AHB+ urgency filter pre-empts on its deadline —
    exactly the paper's motivation ("AMBA2.0 ... cannot guarantee
    master's QoS").
    """
    hungry = replace(DMA, think_range=(0, 0), burst_mix=((16, 1.0),))
    video = replace(
        VIDEO, period=120, deadline_offset=rt_objective, burst_mix=((8, 1.0),)
    )
    # The NRT movers carry several times the RT stream's transaction
    # count so the bus stays saturated for the whole RT window.
    specs = (
        MasterSpec("dma0", _window(hungry, 0), transactions * 5),
        MasterSpec("dma1", _window(hungry, 1), transactions * 5),
        MasterSpec("dma2", _window(hungry, 2), transactions * 5),
        MasterSpec(
            "video0",
            _window(video, 3),
            transactions,
            QosSetting(real_time=True, objective_cycles=rt_objective),
        ),
    )
    return Workload("saturating", specs, seed)


def write_heavy_workload(transactions: int = 300, seed: int = 9) -> Workload:
    """Write-dominated mix (write-buffer experiment)."""
    specs = (
        MasterSpec("writer0", _window(WRITER, 0), transactions),
        MasterSpec("writer1", _window(WRITER, 1), transactions),
        MasterSpec("cpu0", _window(CPU, 2), transactions),
        MasterSpec("dma0", _window(DMA, 3), transactions),
    )
    return Workload("write_heavy", specs, seed)


def bank_striped_workload(
    transactions: int = 300,
    seed: int = 13,
    row_bytes: int = 1 << 12,
    num_banks: int = 4,
    rows: int = 64,
) -> Workload:
    """Masters row-striding inside private banks (interleaving experiment).

    Master *i* owns bank *i* and advances one full DDR row per access,
    so *every* access opens a new row.  Without the Bus Interface each
    row open serialises behind the previous data transfer; with the BI
    the arbiter's next-transaction info lets the DDRC overlap the
    precharge/activate with the in-flight burst — the paper's bank
    interleaving.  (Defaults match the DDR_266 geometry: 4 KiB rows,
    4 banks.)
    """
    row_group = row_bytes * num_banks  # bytes between consecutive rows of a bank

    def striped(index: int) -> TrafficPattern:
        return replace(
            DMA,
            base_addr=index * row_bytes,
            addr_span=(rows - 1) * row_group + row_bytes,
            sequential_fraction=1.0,
            stride_bytes=row_group,
            burst_mix=((16, 1.0),),
            think_range=(0, 0),
            read_fraction=1.0,
        )

    specs = tuple(
        MasterSpec(f"stream{i}", striped(i), transactions)
        for i in range(num_banks)
    )
    return Workload("bank_striped", specs, seed)
