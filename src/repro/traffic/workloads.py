"""Named workload suites, including the Table 1 reproduction set.

A :class:`Workload` binds traffic patterns, per-master transaction
counts and QoS settings into a reproducible multi-master scenario.  The
three Table 1 suites vary the master mix the way the paper varied its
traffic patterns:

* ``pattern_a`` — burst-heavy (DMA-dominated, high locality),
* ``pattern_b`` — random-heavy (poor locality, many row conflicts),
* ``pattern_c`` — mixed RT/NRT (streaming masters with deadlines under
  CPU + writer interference).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ahb.master import TlmMaster
from repro.core.qos import QosSetting
from repro.errors import TrafficError
from repro.traffic.generator import generate_items, stream_items
from repro.traffic.streams import GENERATION_MODES
from repro.traffic.patterns import (
    AUDIO,
    CPU,
    DMA,
    RANDOM,
    VIDEO,
    WRITER,
    TrafficPattern,
)


@dataclass(frozen=True)
class MasterSpec:
    """One master's role inside a workload."""

    name: str
    pattern: TrafficPattern
    transactions: int
    qos: QosSetting = field(default_factory=QosSetting)

    def to_dict(self) -> dict:
        """JSON-ready mapping (patterns/QoS nest their own dicts)."""
        return {
            "name": self.name,
            "pattern": self.pattern.to_dict(),
            "transactions": self.transactions,
            "qos": self.qos.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MasterSpec":
        missing = {"name", "pattern", "transactions"} - set(data)
        if missing:
            raise TrafficError(f"MasterSpec needs fields {sorted(missing)}")
        return cls(
            name=data["name"],
            pattern=TrafficPattern.from_dict(data["pattern"]),
            transactions=int(data["transactions"]),
            qos=QosSetting.from_dict(data.get("qos", {})),
        )


@dataclass(frozen=True)
class Workload:
    """A complete, seeded multi-master scenario.

    ``gen_mode`` selects the traffic generator: ``"compat"`` (default)
    materialises the legacy bit-exact stream eagerly at build time;
    ``"stream"`` feeds masters a lazy batched
    :class:`~repro.traffic.streams.TrafficStream`.
    """

    name: str
    masters: Tuple[MasterSpec, ...]
    seed: int = 1
    gen_mode: str = "compat"

    def __post_init__(self) -> None:
        if not self.masters:
            raise TrafficError("workload needs at least one master")
        if self.gen_mode not in GENERATION_MODES:
            raise TrafficError(
                f"unknown gen_mode {self.gen_mode!r}; "
                f"choose from {GENERATION_MODES}"
            )

    @property
    def num_masters(self) -> int:
        return len(self.masters)

    @property
    def total_transactions(self) -> int:
        return sum(spec.transactions for spec in self.masters)

    def qos_map(self) -> Dict[int, QosSetting]:
        """Master-index → QoS setting map for the platform config."""
        return {
            index: spec.qos
            for index, spec in enumerate(self.masters)
            if spec.qos.real_time
        }

    def build_masters(self) -> List[TlmMaster]:
        """Instantiate fresh traffic agents (one run's worth).

        Compat mode materialises items eagerly (bit-exact legacy
        behaviour: generation cost stays in the untimed build phase);
        stream mode hands each master a lazy batched stream.
        """
        agents: List[TlmMaster] = []
        for index, spec in enumerate(self.masters):
            if self.gen_mode == "compat":
                items = generate_items(
                    spec.pattern, index, spec.transactions, self.seed
                )
            else:
                items = stream_items(
                    spec.pattern,
                    index,
                    spec.transactions,
                    self.seed,
                    mode=self.gen_mode,
                )
            agents.append(TlmMaster(index, spec.name, items))
        return agents

    def scaled(self, factor: float) -> "Workload":
        """Same mix with transaction counts scaled by *factor*."""
        masters = tuple(
            replace(spec, transactions=max(1, int(spec.transactions * factor)))
            for spec in self.masters
        )
        return replace(self, masters=masters)

    def with_seed(self, seed: int) -> "Workload":
        """Same mix under a different seed."""
        return replace(self, seed=seed)

    def to_dict(self) -> dict:
        """JSON-ready mapping of the full scenario description."""
        return {
            "name": self.name,
            "seed": self.seed,
            "gen_mode": self.gen_mode,
            "masters": [spec.to_dict() for spec in self.masters],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Workload":
        """Rebuild a workload; constructors re-validate all the way down."""
        missing = {"name", "masters"} - set(data)
        if missing:
            raise TrafficError(f"Workload needs fields {sorted(missing)}")
        return cls(
            name=data["name"],
            masters=tuple(
                MasterSpec.from_dict(spec) for spec in data["masters"]
            ),
            seed=int(data.get("seed", 1)),
            gen_mode=str(data.get("gen_mode", "compat")),
        )


def _window(pattern: TrafficPattern, index: int, window: int = 1 << 20) -> TrafficPattern:
    """Give each master a disjoint address window.

    Disjoint windows keep the final memory image order-independent, so
    functional equivalence between abstraction levels is a strict check
    even when arbitration orders differ slightly.
    """
    return replace(pattern, base_addr=index * window, addr_span=window)


def table1_pattern_a(transactions: int = 250, seed: int = 11) -> Workload:
    """Burst-heavy suite: three DMA-style movers and one CPU."""
    specs = (
        MasterSpec("cpu0", _window(CPU, 0), transactions),
        MasterSpec("dma0", _window(DMA, 1), transactions),
        MasterSpec("dma1", _window(DMA, 2), transactions),
        MasterSpec("dma2", _window(DMA, 3), transactions),
    )
    return Workload("pattern_a", specs, seed)


def table1_pattern_b(transactions: int = 250, seed: int = 22) -> Workload:
    """Random-heavy suite: poor locality, short transfers."""
    specs = (
        MasterSpec("rand0", _window(RANDOM, 0), transactions),
        MasterSpec("rand1", _window(RANDOM, 1), transactions),
        MasterSpec("cpu0", _window(CPU, 2), transactions),
        MasterSpec("writer0", _window(WRITER, 3), transactions),
    )
    return Workload("pattern_b", specs, seed)


def table1_pattern_c(transactions: int = 250, seed: int = 33) -> Workload:
    """Mixed RT/NRT suite: streaming masters with QoS under interference."""
    specs = (
        MasterSpec(
            "video0",
            _window(VIDEO, 0),
            transactions,
            QosSetting(real_time=True, objective_cycles=180),
        ),
        MasterSpec(
            "audio0",
            _window(AUDIO, 1),
            transactions,
            QosSetting(real_time=True, objective_cycles=160),
        ),
        MasterSpec("cpu0", _window(CPU, 2), transactions),
        MasterSpec("writer0", _window(WRITER, 3), transactions),
    )
    return Workload("pattern_c", specs, seed)


def table1_workloads(transactions: int = 250) -> List[Workload]:
    """The three suites whose rows regenerate Table 1."""
    return [
        table1_pattern_a(transactions),
        table1_pattern_b(transactions),
        table1_pattern_c(transactions),
    ]


def single_master_workload(
    transactions: int = 500, seed: int = 7, pattern: Optional[TrafficPattern] = None
) -> Workload:
    """One CPU master — the paper's 'pure bus performance' speed case."""
    chosen = pattern if pattern is not None else CPU
    return Workload(
        "single_master",
        (MasterSpec("solo", _window(chosen, 0), transactions),),
        seed,
    )


def saturating_workload(
    transactions: int = 300, seed: int = 5, rt_objective: int = 90
) -> Workload:
    """An RT stream fighting three greedy NRT masters (QoS experiment).

    The video master sits at the *highest* master index, i.e. the lowest
    fixed priority: the plain AHB arbiter starves it behind the DMA
    engines, while the AHB+ urgency filter pre-empts on its deadline —
    exactly the paper's motivation ("AMBA2.0 ... cannot guarantee
    master's QoS").
    """
    hungry = replace(DMA, think_range=(0, 0), burst_mix=((16, 1.0),))
    video = replace(
        VIDEO, period=120, deadline_offset=rt_objective, burst_mix=((8, 1.0),)
    )
    # The NRT movers carry several times the RT stream's transaction
    # count so the bus stays saturated for the whole RT window.
    specs = (
        MasterSpec("dma0", _window(hungry, 0), transactions * 5),
        MasterSpec("dma1", _window(hungry, 1), transactions * 5),
        MasterSpec("dma2", _window(hungry, 2), transactions * 5),
        MasterSpec(
            "video0",
            _window(video, 3),
            transactions,
            QosSetting(real_time=True, objective_cycles=rt_objective),
        ),
    )
    return Workload("saturating", specs, seed)


def write_heavy_workload(transactions: int = 300, seed: int = 9) -> Workload:
    """Write-dominated mix (write-buffer experiment)."""
    specs = (
        MasterSpec("writer0", _window(WRITER, 0), transactions),
        MasterSpec("writer1", _window(WRITER, 1), transactions),
        MasterSpec("cpu0", _window(CPU, 2), transactions),
        MasterSpec("dma0", _window(DMA, 3), transactions),
    )
    return Workload("write_heavy", specs, seed)


def bank_striped_workload(
    transactions: int = 300,
    seed: int = 13,
    row_bytes: int = 1 << 12,
    num_banks: int = 4,
    rows: int = 64,
) -> Workload:
    """Masters row-striding inside private banks (interleaving experiment).

    Master *i* owns bank *i* and advances one full DDR row per access,
    so *every* access opens a new row.  Without the Bus Interface each
    row open serialises behind the previous data transfer; with the BI
    the arbiter's next-transaction info lets the DDRC overlap the
    precharge/activate with the in-flight burst — the paper's bank
    interleaving.  (Defaults match the DDR_266 geometry: 4 KiB rows,
    4 banks.)
    """
    row_group = row_bytes * num_banks  # bytes between consecutive rows of a bank

    def striped(index: int) -> TrafficPattern:
        return replace(
            DMA,
            base_addr=index * row_bytes,
            addr_span=(rows - 1) * row_group + row_bytes,
            sequential_fraction=1.0,
            stride_bytes=row_group,
            burst_mix=((16, 1.0),),
            think_range=(0, 0),
            read_fraction=1.0,
        )

    specs = tuple(
        MasterSpec(f"stream{i}", striped(i), transactions)
        for i in range(num_banks)
    )
    return Workload("bank_striped", specs, seed)
