"""Transaction trace record / replay.

Recording a run produces a portable trace (plain dicts, JSON-lines
serialisable) that can be replayed as master traffic later — the
workflow used to archive a scenario, to diff two models transaction by
transaction, or to feed a captured stream back into a different
configuration.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, List, Optional, TextIO

from repro.ahb.master import TrafficItem
from repro.ahb.transaction import Transaction
from repro.ahb.types import AccessKind
from repro.errors import TrafficError


@dataclass(frozen=True)
class TraceRecord:
    """One archived transaction."""

    master: int
    kind: str
    addr: int
    beats: int
    size_bytes: int
    wrapping: bool
    data: List[int]
    issued_at: int
    granted_at: int
    started_at: int
    finished_at: int
    via_write_buffer: bool

    @classmethod
    def from_transaction(cls, txn: Transaction) -> "TraceRecord":
        return cls(
            master=txn.master,
            kind=txn.kind.value,
            addr=txn.addr,
            beats=txn.beats,
            size_bytes=txn.size_bytes,
            wrapping=txn.wrapping,
            data=list(txn.data),
            issued_at=txn.issued_at,
            granted_at=txn.granted_at,
            started_at=txn.started_at,
            finished_at=txn.finished_at,
            via_write_buffer=txn.via_write_buffer,
        )


class TraceRecorder:
    """Bus observer that archives every completed transaction."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def __call__(
        self, txn: Transaction, grant: int, start: int, finish: int
    ) -> None:
        """Observer hook matching the bus observer signature."""
        self.records.append(TraceRecord.from_transaction(txn))

    def __len__(self) -> int:
        return len(self.records)

    def by_master(self) -> Dict[int, List[TraceRecord]]:
        """Records grouped by issuing master, in completion order."""
        grouped: Dict[int, List[TraceRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.master, []).append(record)
        return grouped

    def dump(self, stream: TextIO) -> int:
        """Write JSON-lines; returns the record count."""
        for record in self.records:
            stream.write(json.dumps(asdict(record)) + "\n")
        return len(self.records)


def load_trace(stream: TextIO) -> List[TraceRecord]:
    """Read a JSON-lines trace produced by :meth:`TraceRecorder.dump`."""
    records = []
    for line_no, line in enumerate(stream, 1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
            records.append(TraceRecord(**payload))
        except (json.JSONDecodeError, TypeError) as exc:
            raise TrafficError(f"malformed trace line {line_no}: {exc}") from exc
    return records


def replay_items(
    records: Iterable[TraceRecord],
    master: int,
    preserve_issue_times: bool = True,
) -> List[TrafficItem]:
    """Convert archived records of one master back into traffic items.

    With ``preserve_issue_times`` the original issue cycles become
    ``not_before`` constraints (open-loop replay); otherwise the replay
    is back-to-back closed-loop.
    """
    items: List[TrafficItem] = []
    for record in records:
        if record.master != master:
            continue
        txn = Transaction(
            master=master,
            kind=AccessKind(record.kind),
            addr=record.addr,
            beats=record.beats,
            size_bytes=record.size_bytes,
            wrapping=record.wrapping,
            data=list(record.data),
        )
        items.append(
            TrafficItem(
                txn=txn,
                think_cycles=0,
                not_before=record.issued_at if preserve_issue_times else None,
            )
        )
    return items
